//! The `superfe` command-line tool.
//!
//! ```text
//! superfe apps                          # list the built-in Table 3 policies
//! superfe list                          # bundled policy names, one per line
//! superfe show <policy>                 # print a policy's source
//! superfe check <p1> [<p2> ...] [opts]  # static analysis: lints + feasibility;
//!                                       # ≥2 policies adds the SF07xx fusion report
//! superfe explain <p1> [<p2> ...]       # cost model, overflow proofs, rewrites;
//!                                       # ≥2 policies adds the SF07xx fusion report
//! superfe compile <policy>              # show the switch/NIC split + resources
//! superfe run <policy> [options]        # extract features from a synthetic trace
//! superfe serve <p1> [<p2> ...] [opts]  # N tenants on one shared switch/NIC
//!
//! <policy> is a built-in name (kitsune, npod, tf, ...) or a path to a .sfe
//! policy file in the paper's DSL.
//!
//! run options:
//!   --trace mawi|enterprise|campus      workload preset       [enterprise]
//!   --packets N                         trace size            [100000]
//!   --seed S                            RNG seed              [1]
//!   --csv PATH                          write feature vectors as CSV
//!   --limit N                           print at most N vectors [5]
//!
//! check options:
//!   --headroom PCT                      warn above this utilization [90]
//!   --cache-slots N                     switch short-buffer slots [16384]
//!   --groups N                          concurrent groups per level [5000]
//!   --format text|json                  output rendering [text]
//!
//! explain options:
//!   --groups N                          concurrent groups per level [5000]
//!   --group-packets N                   batch bound for overflow proofs [10000]
//!   --format text|json                  output rendering [text]
//! ```
//!
//! `check` exits non-zero when any error-severity diagnostic is found, so it
//! slots into CI pipelines ahead of deployment.
//!
//! The library half exists so the argument parser and command logic are unit
//! testable; `main.rs` is a thin wrapper.

use std::fmt::Write as _;

use superfe_apps::all_apps;
use superfe_core::{analyze, AnalyzeConfig, SuperFe};
use superfe_nic::{
    cycles_from_cost, resources as nic_resources, solve_placement, CycleModel, NfpModel, OptFlags,
};
use superfe_policy::analyze::cost::policy_cost;
use superfe_policy::ir::opt::optimize;
use superfe_policy::{compile, dsl, Policy};
use superfe_switch::{resources as switch_resources, MgpvConfig, TofinoBudget};
use superfe_trafficgen::{Workload, WorkloadPreset};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// List built-in application policies.
    Apps,
    /// Print a policy's DSL source.
    Show {
        /// Built-in name or file path.
        policy: String,
    },
    /// Compile a policy and print the deployment split.
    Compile {
        /// Built-in name or file path.
        policy: String,
    },
    /// Statically analyze one or more policies: lints plus hardware
    /// feasibility; with several policies, also the SF07xx cross-policy
    /// fusion report.
    Check {
        /// Built-in names or file paths (at least one).
        policies: Vec<String>,
        /// Headroom warning threshold in percent.
        headroom: f64,
        /// Switch short-buffer slot count (overrides the §7 default).
        cache_slots: Option<usize>,
        /// Expected concurrent groups per granularity level.
        groups: usize,
        /// Output rendering.
        format: OutputFormat,
    },
    /// Explain one or more policies: typed IR, value-range proofs, static
    /// cost model, optimizer rewrites, and a pre-placement cycle estimate;
    /// with several policies, also the SF07xx cross-policy fusion report.
    Explain {
        /// Built-in names or file paths (at least one).
        policies: Vec<String>,
        /// Expected concurrent groups per granularity level.
        groups: usize,
        /// Per-group packet batch bound for the overflow proofs.
        group_packets: u64,
        /// Output rendering.
        format: OutputFormat,
    },
    /// Run a policy over a synthetic trace.
    Run {
        /// Built-in name or file path.
        policy: String,
        /// Workload preset.
        trace: WorkloadPreset,
        /// Trace size in packets.
        packets: usize,
        /// RNG seed.
        seed: u64,
        /// Optional CSV output path.
        csv: Option<String>,
        /// Max vectors to print.
        limit: usize,
        /// Save the generated trace to this path (SFET format).
        save_trace: Option<String>,
        /// Load the trace from this path instead of generating.
        load_trace: Option<String>,
    },
    /// Measure streaming-pipeline throughput (the `BENCH_pipeline.json`
    /// smoke).
    Bench {
        /// Trace size in packets.
        packets: usize,
        /// Worker counts to sweep.
        workers: Vec<usize>,
        /// Workload RNG seed.
        seed: u64,
        /// Also write the JSON document to this path.
        out: Option<String>,
    },
    /// Train, calibrate, and serve a detector online (the
    /// `BENCH_detect.json` smoke).
    Detect {
        /// The benchmark configuration.
        cfg: superfe_bench::experiments::detect::DetectConfig,
        /// Also write the JSON document to this path.
        out: Option<String>,
    },
    /// List bundled policy names, machine-readable (one per line).
    List,
    /// Serve several policies concurrently on one shared switch/NIC pair.
    Serve {
        /// Built-in names or file paths, one per tenant.
        policies: Vec<String>,
        /// Workload preset.
        trace: WorkloadPreset,
        /// Trace size in packets.
        packets: usize,
        /// RNG seed.
        seed: u64,
        /// NIC shard count.
        workers: usize,
        /// `(tenant index, packet)` pairs: attach late instead of at start.
        attach_at: Vec<(usize, usize)>,
        /// `(tenant index, packet)` pairs: hot-detach mid-stream.
        detach_at: Vec<(usize, usize)>,
        /// `(tenant index, slots)` pairs: per-tenant cache quota (switch
        /// short-buffer slot count) overriding the §7 default.
        cache_slots: Vec<(usize, usize)>,
        /// Re-run every tenant alone and fail unless the shared-plane
        /// output is bitwise identical.
        verify_solo: bool,
        /// Analysis-certified cross-policy fusion (disable with --no-fuse,
        /// which also disables SF08xx prefix sharing).
        fuse: bool,
        /// SF08xx cross-tenant prefix sharing (disable with --no-cse).
        cse: bool,
        /// Write a live plane snapshot to this path mid-stream.
        snapshot: Option<String>,
        /// Packet index at which the snapshot is taken (with `--snapshot`;
        /// defaults to the middle of the trace).
        snapshot_at: Option<usize>,
        /// Restore the plane from a snapshot file and serve the remainder
        /// of the trace (resumes at the saved packet position).
        restore: Option<String>,
        /// Pin group-table eviction to `RandomWay` with this seed so
        /// eviction sequences are reproducible run to run.
        evict_seed: Option<u64>,
    },
    /// Corpus-scale state-management sweep (the `BENCH_scale.json` smoke).
    BenchScale {
        /// Flow counts to sweep.
        flows: Vec<usize>,
        /// Workload RNG seed.
        seed: u64,
        /// `RandomWay` eviction-victim seed (reproducible eviction runs).
        evict_seed: u64,
        /// Warmup runs per cell.
        warmup: usize,
        /// Measured runs per cell.
        runs: usize,
        /// Also write the JSON document to this path.
        out: Option<String>,
    },
    /// Print usage.
    Help,
}

/// Errors surfaced to the user.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError {
    /// The text to print.
    pub message: String,
    /// When set, `message` is machine-readable output (the `--format json`
    /// rendering of a failing report) that belongs on stdout so scripts can
    /// parse it; prose errors go to stderr.
    pub machine: bool,
}

impl CliError {
    /// A prose (stderr) error.
    pub fn text(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            machine: false,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError::text(msg)
}

/// Output format of the analysis commands (`check`, `explain`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable text (the default).
    #[default]
    Text,
    /// A single JSON object for machine consumption.
    Json,
}

fn parse_format(s: &str) -> Result<OutputFormat, CliError> {
    match s {
        "text" => Ok(OutputFormat::Text),
        "json" => Ok(OutputFormat::Json),
        other => Err(err(format!(
            "--format expects 'text' or 'json', got '{other}'"
        ))),
    }
}

/// Parses argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    match cmd {
        "apps" => Ok(Command::Apps),
        "list" => Ok(Command::List),
        "serve" => {
            let rest: Vec<String> = it.cloned().collect();
            let mut policies = Vec::new();
            let mut i = 0;
            while i < rest.len() && !rest[i].starts_with("--") {
                policies.push(rest[i].clone());
                i += 1;
            }
            if policies.is_empty() {
                return Err(err("usage: superfe serve <policy> [<policy>...] [options]"));
            }
            let mut trace = WorkloadPreset::Enterprise;
            let mut packets = 20_000usize;
            let mut seed = 1u64;
            let mut workers = 2usize;
            let mut attach_at = Vec::new();
            let mut detach_at = Vec::new();
            let mut cache_slots = Vec::new();
            let mut verify_solo = false;
            let mut fuse = true;
            let mut cse = true;
            let mut snapshot = None;
            let mut snapshot_at = None;
            let mut restore = None;
            let mut evict_seed = None;
            let parse_epoch = |flag: &str, v: &str| -> Result<(usize, usize), CliError> {
                let bad = || err(format!("{flag} expects TENANT:VALUE, got '{v}'"));
                let (idx, pkt) = v.split_once(':').ok_or_else(bad)?;
                Ok((
                    idx.parse().map_err(|_| bad())?,
                    pkt.parse().map_err(|_| bad())?,
                ))
            };
            while i < rest.len() {
                let flag = rest[i].clone();
                i += 1;
                let mut value = || -> Result<String, CliError> {
                    let v = rest
                        .get(i)
                        .cloned()
                        .ok_or_else(|| err(format!("{flag} needs a value")));
                    i += 1;
                    v
                };
                match flag.as_str() {
                    "--trace" => {
                        trace = match value()?.as_str() {
                            "mawi" => WorkloadPreset::MawiIxp,
                            "enterprise" => WorkloadPreset::Enterprise,
                            "campus" => WorkloadPreset::Campus,
                            other => return Err(err(format!("unknown trace '{other}'"))),
                        }
                    }
                    "--packets" => {
                        packets = value()?
                            .parse()
                            .map_err(|_| err("--packets expects an integer"))?;
                    }
                    "--seed" => {
                        seed = value()?
                            .parse()
                            .map_err(|_| err("--seed expects an integer"))?;
                    }
                    "--workers" => {
                        workers = value()?
                            .parse()
                            .map_err(|_| err("--workers expects an integer"))?;
                        if workers == 0 {
                            return Err(err("--workers expects a positive count"));
                        }
                    }
                    "--attach-at" => attach_at.push(parse_epoch("--attach-at", &value()?)?),
                    "--detach-at" => detach_at.push(parse_epoch("--detach-at", &value()?)?),
                    "--cache-slots" => {
                        let pair = parse_epoch("--cache-slots", &value()?)?;
                        if pair.1 == 0 {
                            return Err(err("--cache-slots expects a positive slot count"));
                        }
                        cache_slots.push(pair);
                    }
                    "--verify-solo" => verify_solo = true,
                    "--no-fuse" => {
                        fuse = false;
                        cse = false;
                    }
                    "--no-cse" => cse = false,
                    "--snapshot" => snapshot = Some(value()?),
                    "--snapshot-at" => {
                        snapshot_at = Some(
                            value()?
                                .parse()
                                .map_err(|_| err("--snapshot-at expects an integer"))?,
                        );
                    }
                    "--restore" => restore = Some(value()?),
                    "--evict-seed" => {
                        evict_seed = Some(
                            value()?
                                .parse()
                                .map_err(|_| err("--evict-seed expects an integer"))?,
                        );
                    }
                    other => return Err(err(format!("unknown option '{other}'"))),
                }
            }
            for &(idx, _) in attach_at.iter().chain(&detach_at).chain(&cache_slots) {
                if idx >= policies.len() {
                    return Err(err(format!(
                        "tenant index {idx} out of range (serving {} policies)",
                        policies.len()
                    )));
                }
            }
            if snapshot_at.is_some() && snapshot.is_none() {
                return Err(err("--snapshot-at needs --snapshot PATH"));
            }
            if restore.is_some() && snapshot.is_some() {
                return Err(err("--restore and --snapshot are mutually exclusive"));
            }
            if restore.is_some() && !(attach_at.is_empty() && detach_at.is_empty()) {
                return Err(err("--restore resumes the snapshotted topology; \
                     --attach-at/--detach-at schedules don't apply"));
            }
            if restore.is_some() && evict_seed.is_some() {
                return Err(err(
                    "--restore resumes the snapshotted eviction state; --evict-seed doesn't apply",
                ));
            }
            Ok(Command::Serve {
                policies,
                trace,
                packets,
                seed,
                workers,
                attach_at,
                detach_at,
                cache_slots,
                verify_solo,
                fuse,
                cse,
                snapshot,
                snapshot_at,
                restore,
                evict_seed,
            })
        }
        "show" | "compile" => {
            let policy = it
                .next()
                .ok_or_else(|| err(format!("usage: superfe {cmd} <policy>")))?
                .clone();
            if cmd == "show" {
                Ok(Command::Show { policy })
            } else {
                Ok(Command::Compile { policy })
            }
        }
        "check" => {
            let rest: Vec<String> = it.cloned().collect();
            let mut policies = Vec::new();
            let mut at = 0;
            while at < rest.len() && !rest[at].starts_with("--") {
                policies.push(rest[at].clone());
                at += 1;
            }
            if policies.is_empty() {
                return Err(err("usage: superfe check <policy> [<policy>...] [options]"));
            }
            let mut it = rest[at..].iter();
            let mut headroom = 90.0f64;
            let mut cache_slots = None;
            let mut groups = 5_000usize;
            let mut format = OutputFormat::Text;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err(format!("{flag} needs a value")))
                };
                match flag.as_str() {
                    "--headroom" => {
                        headroom = value()?
                            .parse()
                            .map_err(|_| err("--headroom expects a percentage"))?;
                    }
                    "--cache-slots" => {
                        cache_slots = Some(
                            value()?
                                .parse()
                                .map_err(|_| err("--cache-slots expects an integer"))?,
                        );
                    }
                    "--groups" => {
                        groups = value()?
                            .parse()
                            .map_err(|_| err("--groups expects an integer"))?;
                    }
                    "--format" => format = parse_format(&value()?)?,
                    other => return Err(err(format!("unknown option '{other}'"))),
                }
            }
            Ok(Command::Check {
                policies,
                headroom,
                cache_slots,
                groups,
                format,
            })
        }
        "explain" => {
            let rest: Vec<String> = it.cloned().collect();
            let mut policies = Vec::new();
            let mut at = 0;
            while at < rest.len() && !rest[at].starts_with("--") {
                policies.push(rest[at].clone());
                at += 1;
            }
            if policies.is_empty() {
                return Err(err(
                    "usage: superfe explain <policy> [<policy>...] [options]",
                ));
            }
            let mut it = rest[at..].iter();
            let mut groups = 5_000usize;
            let mut group_packets = 10_000u64;
            let mut format = OutputFormat::Text;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err(format!("{flag} needs a value")))
                };
                match flag.as_str() {
                    "--groups" => {
                        groups = value()?
                            .parse()
                            .map_err(|_| err("--groups expects an integer"))?;
                    }
                    "--group-packets" => {
                        group_packets = value()?
                            .parse()
                            .map_err(|_| err("--group-packets expects an integer"))?;
                    }
                    "--format" => format = parse_format(&value()?)?,
                    other => return Err(err(format!("unknown option '{other}'"))),
                }
            }
            Ok(Command::Explain {
                policies,
                groups,
                group_packets,
                format,
            })
        }
        "run" => {
            let policy = it
                .next()
                .ok_or_else(|| err("usage: superfe run <policy> [options]"))?
                .clone();
            let mut trace = WorkloadPreset::Enterprise;
            let mut packets = 100_000usize;
            let mut seed = 1u64;
            let mut csv = None;
            let mut limit = 5usize;
            let mut save_trace = None;
            let mut load_trace = None;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err(format!("{flag} needs a value")))
                };
                match flag.as_str() {
                    "--trace" => {
                        trace = match value()?.as_str() {
                            "mawi" => WorkloadPreset::MawiIxp,
                            "enterprise" => WorkloadPreset::Enterprise,
                            "campus" => WorkloadPreset::Campus,
                            other => return Err(err(format!("unknown trace '{other}'"))),
                        }
                    }
                    "--packets" => {
                        packets = value()?
                            .parse()
                            .map_err(|_| err("--packets expects an integer"))?;
                    }
                    "--seed" => {
                        seed = value()?
                            .parse()
                            .map_err(|_| err("--seed expects an integer"))?;
                    }
                    "--csv" => csv = Some(value()?),
                    "--save-trace" => save_trace = Some(value()?),
                    "--load-trace" => load_trace = Some(value()?),
                    "--limit" => {
                        limit = value()?
                            .parse()
                            .map_err(|_| err("--limit expects an integer"))?;
                    }
                    other => return Err(err(format!("unknown option '{other}'"))),
                }
            }
            Ok(Command::Run {
                policy,
                trace,
                packets,
                seed,
                csv,
                limit,
                save_trace,
                load_trace,
            })
        }
        "bench" => {
            let rest: Vec<String> = it.clone().cloned().collect();
            if rest.first().map(String::as_str) == Some("scale") {
                let mut flows = vec![10_000usize, 50_000];
                let mut seed = superfe_bench::experiments::scale::DEFAULT_SEED;
                let mut evict_seed = superfe_bench::experiments::scale::DEFAULT_EVICT_SEED;
                let mut warmup = 0usize;
                let mut runs = 1usize;
                let mut out = None;
                let mut it = rest[1..].iter();
                while let Some(flag) = it.next() {
                    let mut value = || {
                        it.next()
                            .cloned()
                            .ok_or_else(|| err(format!("{flag} needs a value")))
                    };
                    match flag.as_str() {
                        "--flows" => {
                            flows = value()?
                                .split(',')
                                .map(|f| f.trim().parse::<usize>())
                                .collect::<Result<_, _>>()
                                .map_err(|_| err("--flows expects comma-separated integers"))?;
                            if flows.is_empty() {
                                return Err(err("--flows expects at least one count"));
                            }
                        }
                        "--seed" => {
                            seed = value()?
                                .parse()
                                .map_err(|_| err("--seed expects an integer"))?;
                        }
                        "--evict-seed" => {
                            evict_seed = value()?
                                .parse()
                                .map_err(|_| err("--evict-seed expects an integer"))?;
                        }
                        "--warmup" => {
                            warmup = value()?
                                .parse()
                                .map_err(|_| err("--warmup expects an integer"))?;
                        }
                        "--runs" => {
                            runs = value()?
                                .parse()
                                .map_err(|_| err("--runs expects an integer"))?;
                            if runs == 0 {
                                return Err(err("--runs expects a positive count"));
                            }
                        }
                        "--out" => out = Some(value()?),
                        other => return Err(err(format!("unknown option '{other}'"))),
                    }
                }
                return Ok(Command::BenchScale {
                    flows,
                    seed,
                    evict_seed,
                    warmup,
                    runs,
                    out,
                });
            }
            let mut packets = 10_000usize;
            let mut workers = vec![1usize, 2];
            let mut seed = superfe_bench::experiments::throughput::DEFAULT_SEED;
            let mut out = None;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err(format!("{flag} needs a value")))
                };
                match flag.as_str() {
                    "--packets" => {
                        packets = value()?
                            .parse()
                            .map_err(|_| err("--packets expects an integer"))?;
                    }
                    "--workers" => {
                        workers = value()?
                            .split(',')
                            .map(|w| w.trim().parse::<usize>())
                            .collect::<Result<_, _>>()
                            .map_err(|_| err("--workers expects comma-separated integers"))?;
                        if workers.is_empty() {
                            return Err(err("--workers expects at least one count"));
                        }
                    }
                    "--seed" => {
                        seed = value()?
                            .parse()
                            .map_err(|_| err("--seed expects an integer"))?;
                    }
                    "--out" => out = Some(value()?),
                    other => return Err(err(format!("unknown option '{other}'"))),
                }
            }
            Ok(Command::Bench {
                packets,
                workers,
                seed,
                out,
            })
        }
        "detect" => {
            use superfe_bench::experiments::detect::{parse_scenario, DetectConfig};
            let mut cfg = DetectConfig::default();
            let mut out = None;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err(format!("{flag} needs a value")))
                };
                match flag.as_str() {
                    "--scenario" => {
                        let v = value()?;
                        cfg.scenario = parse_scenario(&v).ok_or_else(|| {
                            err(format!(
                                "--scenario expects one of os_scan, ssdp_flood, syn_dos, \
                                 fuzzing, mirai; got '{v}'"
                            ))
                        })?;
                    }
                    "--detector" => {
                        let v = value()?;
                        cfg.detector =
                            superfe_detect::DetectorKind::parse(&v).ok_or_else(|| {
                                err(format!(
                                "--detector expects one of kitnet, knn, cart, centroid; got '{v}'"
                            ))
                            })?;
                    }
                    "--benign" => {
                        cfg.benign_packets = value()?
                            .parse()
                            .map_err(|_| err("--benign expects an integer"))?;
                    }
                    "--serve-benign" => {
                        cfg.serve_benign = value()?
                            .parse()
                            .map_err(|_| err("--serve-benign expects an integer"))?;
                    }
                    "--attack" => {
                        cfg.attack_packets = value()?
                            .parse()
                            .map_err(|_| err("--attack expects an integer"))?;
                    }
                    "--seed" => {
                        cfg.seed = value()?
                            .parse()
                            .map_err(|_| err("--seed expects an integer"))?;
                    }
                    "--workers" => {
                        cfg.workers = value()?
                            .parse()
                            .map_err(|_| err("--workers expects an integer"))?;
                        if cfg.workers == 0 {
                            return Err(err("--workers expects a positive count"));
                        }
                    }
                    "--quantile" => {
                        cfg.quantile = value()?
                            .parse()
                            .map_err(|_| err("--quantile expects a number"))?;
                        if !(0.0..=1.0).contains(&cfg.quantile) {
                            return Err(err("--quantile expects a value in [0, 1]"));
                        }
                    }
                    "--margin" => {
                        cfg.margin = value()?
                            .parse()
                            .map_err(|_| err("--margin expects a number"))?;
                        if cfg.margin <= 0.0 {
                            return Err(err("--margin expects a positive value"));
                        }
                    }
                    "--in-pipeline" => cfg.in_pipeline = true,
                    "--out" => out = Some(value()?),
                    other => return Err(err(format!("unknown option '{other}'"))),
                }
            }
            Ok(Command::Detect { cfg, out })
        }
        other => Err(err(format!(
            "unknown command '{other}' (try 'superfe help')"
        ))),
    }
}

/// Resolves a policy argument: built-in app name first, then file path.
pub fn resolve_policy(name: &str) -> Result<(String, Policy), CliError> {
    for app in all_apps() {
        if app.name.eq_ignore_ascii_case(name) {
            return Ok((app.dsl.to_string(), app.policy()));
        }
    }
    let src = std::fs::read_to_string(name).map_err(|e| {
        err(format!(
            "'{name}' is not a built-in policy and reading it as a file failed: {e}"
        ))
    })?;
    let policy = dsl::parse(&src).map_err(|e| err(format!("{name}: {e}")))?;
    Ok((src, policy))
}

/// Like [`resolve_policy`], but skips validation so the static analyzer can
/// report *every* structural problem with its `SF01xx` code, not just the
/// first one as a parse error.
fn resolve_policy_unchecked(name: &str) -> Result<Policy, CliError> {
    for app in all_apps() {
        if app.name.eq_ignore_ascii_case(name) {
            return Ok(app.policy());
        }
    }
    let src = std::fs::read_to_string(name).map_err(|e| {
        err(format!(
            "'{name}' is not a built-in policy and reading it as a file failed: {e}"
        ))
    })?;
    dsl::parse_unchecked(&src).map_err(|e| err(format!("{name}: {e}")))
}

/// The help text.
pub fn usage() -> String {
    "superfe — scalable & flexible feature extraction (EuroSys '25 reproduction)\n\
     \n\
     usage:\n\
     \x20 superfe apps                       list built-in Table 3 policies\n\
     \x20 superfe list                       bundled policy names, one per line\n\
     \x20 superfe show <policy>              print a policy's DSL source\n\
     \x20 superfe check <p1> [<p2> ...]      static analysis: lints + feasibility;\n\
     \x20                                    two or more policies add the SF07xx\n\
     \x20                                    fusion and SF08xx prefix-sharing\n\
     \x20                                    reports\n\
     \x20 superfe explain <p1> [<p2> ...]    typed IR, cost model, overflow proofs,\n\
     \x20                                    optimizer rewrites, cycle estimate\n\
     \x20 superfe compile <policy>           show the switch/NIC split + resources\n\
     \x20 superfe run <policy> [options]     extract features from a synthetic trace\n\
     \x20 superfe serve <p1> [<p2> ...]      serve N policies concurrently on one\n\
     \x20                                    shared switch/NIC (multi-tenant)\n\
     \x20 superfe bench [options]            streaming-pipeline throughput smoke\n\
     \x20 superfe bench scale [options]      corpus-scale state-management sweep\n\
     \x20                                    (flows x eviction policy)\n\
     \x20 superfe detect [options]           train, calibrate, and serve a detector\n\
     \x20                                    online over a labelled intrusion trace\n\
     \n\
     <policy>: built-in name (kitsune, npod, tf, cumul, ...) or a DSL file path\n\
     \n\
     check options:\n\
     \x20 --headroom PCT                     warn above this utilization [90]\n\
     \x20 --cache-slots N                    switch short-buffer slots [16384]\n\
     \x20 --groups N                         concurrent groups per level [5000]\n\
     \x20 --format text|json                 output rendering [text]\n\
     \n\
     explain options:\n\
     \x20 --groups N                         concurrent groups per level [5000]\n\
     \x20 --group-packets N                  per-group batch bound for overflow\n\
     \x20                                    proofs [10000]\n\
     \x20 --format text|json                 output rendering [text]\n\
     \n\
     run options:\n\
     \x20 --trace mawi|enterprise|campus     workload preset       [enterprise]\n\
     \x20 --packets N                        trace size            [100000]\n\
     \x20 --seed S                           RNG seed              [1]\n\
     \x20 --csv PATH                         write feature vectors as CSV\n\
     \x20 --limit N                          vectors to print      [5]\n\
     \x20 --save-trace PATH                  save the generated trace (SFET)\n\
     \x20 --load-trace PATH                  replay a saved trace instead\n\
     \n\
     serve options:\n\
     \x20 --trace mawi|enterprise|campus     workload preset       [enterprise]\n\
     \x20 --packets N                        trace size            [20000]\n\
     \x20 --seed S                           RNG seed              [1]\n\
     \x20 --workers N                        NIC shards            [2]\n\
     \x20 --attach-at T:P                    attach tenant T at packet P (hot add)\n\
     \x20 --detach-at T:P                    detach tenant T at packet P (hot remove)\n\
     \x20 --cache-slots T:N                  cache quota for tenant T: N switch\n\
     \x20                                    short-buffer slots   [16384]\n\
     \x20 --no-fuse                          disable all cross-tenant sharing:\n\
     \x20                                    SF07xx fusion and SF08xx prefix\n\
     \x20                                    sharing (default: both enabled)\n\
     \x20 --no-cse                           disable only SF08xx prefix sharing\n\
     \x20                                    (equivalent tenants still fuse)\n\
     \x20 --verify-solo                      fail unless every tenant's output is\n\
     \x20                                    bitwise identical to a solo run\n\
     \x20 --snapshot PATH                    write a live plane snapshot mid-stream\n\
     \x20 --snapshot-at N                    packet to snapshot at [packets/2]\n\
     \x20 --restore PATH                     resume from a snapshot: topology,\n\
     \x20                                    workers, and packet position come from\n\
     \x20                                    the file; per-tenant digests match the\n\
     \x20                                    uninterrupted run bitwise\n\
     \x20 --evict-seed S                     pin group-table eviction to seeded\n\
     \x20                                    RandomWay for reproducible runs\n\
     \n\
     bench options:\n\
     \x20 --packets N                        trace size            [10000]\n\
     \x20 --workers A,B,...                  worker counts to sweep [1,2]\n\
     \x20 --seed S                           workload RNG seed     [4]\n\
     \x20 --out PATH                         also write the JSON document\n\
     \n\
     bench scale options:\n\
     \x20 --flows A,B,...                    flow counts to sweep  [10000,50000]\n\
     \x20 --seed S                           workload RNG seed     [11]\n\
     \x20 --evict-seed S                     random_way victim seed [7]\n\
     \x20 --warmup N                         warmup runs per cell  [0]\n\
     \x20 --runs N                           measured runs per cell [1]\n\
     \x20 --out PATH                         also write the JSON document\n\
     \n\
     detect options:\n\
     \x20 --scenario NAME                    os_scan|ssdp_flood|syn_dos|fuzzing|\n\
     \x20                                    mirai                 [mirai]\n\
     \x20 --detector NAME                    kitnet|knn|cart|centroid [kitnet]\n\
     \x20 --benign N                         training-trace benign packets [6000]\n\
     \x20 --serve-benign N                   served-trace benign packets   [3000]\n\
     \x20 --attack N                         served-trace attack packets   [1500]\n\
     \x20 --seed S                           RNG seed              [1]\n\
     \x20 --workers N                        NIC shards = inference workers [2]\n\
     \x20 --quantile Q                       calibration quantile  [1.0]\n\
     \x20 --margin M                         calibration margin    [1.1]\n\
     \x20 --in-pipeline                      also run the SF09xx-certified\n\
     \x20                                    fixed-point model inside the NIC\n\
     \x20                                    shards and report its cost\n\
     \x20 --out PATH                         also write the JSON document\n"
        .to_string()
}

/// Escapes a string for embedding in a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the SF07xx cross-policy equivalence analysis and renders the
/// human-readable fusion section: the plan classes (who shares whose
/// hardware) and every SF0701/SF0702 finding.
fn fusion_section_text(named: &[(String, Policy)], vc: &superfe_policy::ValueConfig) -> String {
    let refs: Vec<(&str, &Policy)> = named.iter().map(|(n, p)| (n.as_str(), p)).collect();
    let analysis = superfe_policy::analyze::equiv::analyze_fusion(&refs, vc);
    let mut out = String::new();
    writeln!(
        out,
        "cross-policy fusion (SF07xx): {} policies need {} execution plan(s); \
         fusion saves {} duplicate plan(s)",
        named.len(),
        analysis.classes.len(),
        analysis.plans_saved()
    )
    .expect("write");
    for (ci, class) in analysis.classes.iter().enumerate() {
        let members: Vec<&str> = class.members.iter().map(|&m| refs[m].0).collect();
        writeln!(
            out,
            "  plan {}: {}{}",
            ci + 1,
            members.join(", "),
            if class.members.len() > 1 {
                " (fused)"
            } else {
                ""
            }
        )
        .expect("write");
    }
    for d in analysis.report.diagnostics() {
        writeln!(out, "  {d}").expect("write");
    }
    out
}

/// The machine rendering of the SF07xx analysis: plan classes with member
/// names and the finding report, as one JSON object.
fn fusion_section_json(named: &[(String, Policy)], vc: &superfe_policy::ValueConfig) -> String {
    let refs: Vec<(&str, &Policy)> = named.iter().map(|(n, p)| (n.as_str(), p)).collect();
    let analysis = superfe_policy::analyze::equiv::analyze_fusion(&refs, vc);
    let classes: Vec<String> = analysis
        .classes
        .iter()
        .map(|c| {
            let members: Vec<String> = c
                .members
                .iter()
                .map(|&m| format!("\"{}\"", json_str(refs[m].0)))
                .collect();
            format!(
                "{{\"hash\":\"{:016x}\",\"members\":[{}]}}",
                c.hash,
                members.join(",")
            )
        })
        .collect();
    let near: Vec<String> = analysis
        .near_misses
        .iter()
        .map(|m| {
            format!(
                "{{\"a\":\"{}\",\"b\":\"{}\",\"reason\":\"{}\",\"divergence\":{}}}",
                json_str(refs[m.a].0),
                json_str(refs[m.b].0),
                json_str(&m.reason),
                m.divergence
                    .as_ref()
                    .map(divergence_json)
                    .unwrap_or_else(|| "null".into())
            )
        })
        .collect();
    format!(
        "{{\"policy_count\":{},\"plan_count\":{},\"plans_saved\":{},\"classes\":[{}],\
         \"near_misses\":[{}],\"report\":{}}}",
        named.len(),
        analysis.classes.len(),
        analysis.plans_saved(),
        classes.join(","),
        near.join(","),
        analysis.report.render_json()
    )
}

/// The machine rendering of one SF0702/SF0802 first-divergence diff.
fn divergence_json(d: &superfe_policy::analyze::share::Divergence) -> String {
    format!(
        "{{\"stage\":\"{}\",\"op\":{},\"culprit\":\"{}\"}}",
        json_str(d.stage.label()),
        d.op_index,
        json_str(&d.culprit)
    )
}

/// Runs the SF08xx shared-prefix analysis and renders the human-readable
/// sharing section: the prefix groups (whose switch partitions merge) and
/// every SF0801/SF0802/SF0803 finding.
fn sharing_section_text(named: &[(String, Policy)], vc: &superfe_policy::ValueConfig) -> String {
    let refs: Vec<(&str, &Policy)> = named.iter().map(|(n, p)| (n.as_str(), p)).collect();
    let plan = superfe_policy::ir::opt::share::share(&refs, vc);
    let mut out = String::new();
    writeln!(
        out,
        "cross-tenant prefix sharing (SF08xx): {}",
        plan.summary()
    )
    .expect("write");
    for (gi, group) in plan.groups.iter().enumerate() {
        let members: Vec<&str> = group.members.iter().map(|&m| refs[m].0).collect();
        writeln!(
            out,
            "  partition {}: {}{}",
            gi + 1,
            members.join(", "),
            if group.members.len() > 1 {
                format!(" (shared prefix {:#018x})", group.prefix)
            } else {
                String::new()
            }
        )
        .expect("write");
    }
    for d in plan.analysis.report.diagnostics() {
        writeln!(out, "  {d}").expect("write");
    }
    out
}

/// The machine rendering of the SF08xx analysis: prefix groups with member
/// names, structured near-misses, and the finding report, as one JSON
/// object.
fn sharing_section_json(named: &[(String, Policy)], vc: &superfe_policy::ValueConfig) -> String {
    let refs: Vec<(&str, &Policy)> = named.iter().map(|(n, p)| (n.as_str(), p)).collect();
    let plan = superfe_policy::ir::opt::share::share(&refs, vc);
    let groups: Vec<String> = plan
        .groups
        .iter()
        .map(|g| {
            let members: Vec<String> = g
                .members
                .iter()
                .map(|&m| format!("\"{}\"", json_str(refs[m].0)))
                .collect();
            format!(
                "{{\"prefix\":\"{:016x}\",\"members\":[{}],\"ops\":[{}]}}",
                g.prefix,
                members.join(","),
                g.ops
                    .iter()
                    .map(|o| format!("\"{}\"", json_str(o)))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    let near: Vec<String> = plan
        .analysis
        .near_misses
        .iter()
        .map(|m| {
            format!(
                "{{\"a\":\"{}\",\"b\":\"{}\",\"divergence\":{}}}",
                json_str(refs[m.a].0),
                json_str(refs[m.b].0),
                divergence_json(&m.divergence)
            )
        })
        .collect();
    format!(
        "{{\"policy_count\":{},\"partition_count\":{},\"partitions_saved\":{},\"groups\":[{}],\
         \"near_misses\":[{}],\"report\":{}}}",
        named.len(),
        plan.groups.len(),
        plan.partitions_saved(),
        groups.join(","),
        near.join(","),
        plan.analysis.report.render_json()
    )
}

/// The `superfe explain` command: static cost model, value-range proofs,
/// optimizer rewrites, and a pre-placement cycle estimate for one policy.
fn explain(
    policy: &str,
    groups: usize,
    group_packets: u64,
    format: OutputFormat,
) -> Result<String, CliError> {
    let (_, p) = resolve_policy(policy)?;
    let cfg = AnalyzeConfig {
        groups,
        group_packets,
        ..AnalyzeConfig::default()
    };
    let vc = cfg.value_config();
    let report = analyze(&p, &cfg);
    let cost = policy_cost(&p);
    let optimized = optimize(&p, &vc);
    let est = cycles_from_cost(&cost, &cfg.nfp, OptFlags::all_on());
    let gbps = est.gbps(120, &cfg.nfp, 1246.0);

    if format == OutputFormat::Json {
        let rewrites: Vec<String> = optimized
            .rewrites
            .iter()
            .map(|r| format!("\"{}\"", json_str(&r.to_string())))
            .collect();
        return Ok(format!(
            "{{\"policy\":\"{}\",\"feature_dimension\":{},\"cost\":{{\
             \"filter_entries\":{},\"total_alu_ops\":{},\"total_divisions\":{},\
             \"total_touched_bytes\":{},\"total_resident_bytes\":{},\"level_count\":{}}},\
             \"value_config\":{{\"group_packets\":{},\"aging_t_ns\":{},\"acc_bits\":{}}},\
             \"report\":{},\"rewrites\":[{}],\"ops_before\":{},\"ops_after\":{},\
             \"cycles_per_record\":{:.1},\"gbps_at_120_cores\":{:.2}}}\n",
            json_str(policy),
            cost.feature_dimension(),
            cost.filter_entries,
            cost.total_alu_ops(),
            cost.total_divisions(),
            cost.total_touched_bytes(),
            cost.total_resident_bytes(),
            cost.levels.len(),
            vc.group_packets,
            vc.aging_t_ns,
            vc.acc_bits,
            report.render_json(),
            rewrites.join(","),
            p.ops.len(),
            optimized.policy.ops.len(),
            est.cycles_per_record,
            gbps,
        ));
    }

    let mut out = String::new();
    writeln!(out, "explaining {policy}").expect("write");
    out.push_str(&cost.render());
    writeln!(
        out,
        "value analysis: batches of {} pkt/group, {} ms aging, {}-bit sALU accumulators",
        vc.group_packets,
        vc.aging_t_ns / 1_000_000,
        vc.acc_bits
    )
    .expect("write");
    let findings: Vec<&superfe_policy::Diagnostic> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code.starts_with("SF05") || d.code.starts_with("SF06"))
        .collect();
    if findings.is_empty() {
        writeln!(
            out,
            "  all accumulators proven in range; no value or cost findings"
        )
        .expect("write");
    } else {
        for d in findings {
            writeln!(out, "  {d}").expect("write");
        }
    }
    writeln!(out, "optimizer rewrites:").expect("write");
    if optimized.rewrites.is_empty() {
        writeln!(out, "  none applicable").expect("write");
    } else {
        for r in &optimized.rewrites {
            writeln!(out, "  - {r}").expect("write");
        }
        writeln!(
            out,
            "  {} op(s) before, {} after",
            p.ops.len(),
            optimized.policy.ops.len()
        )
        .expect("write");
    }
    writeln!(
        out,
        "cycle estimate (pre-placement, CTM-resident): {:.0} cycles/record \
         → {:.1} Gbps at 120 cores (1246 B packets)",
        est.cycles_per_record, gbps
    )
    .expect("write");
    Ok(out)
}

/// FNV-1a digest over a tenant's complete output (group then packet
/// vectors: key bytes, then value bits) — the fingerprint `--snapshot` /
/// `--restore` smokes diff to certify bitwise-identical output.
fn output_digest(out: &superfe_nic::StreamOutput) -> u64 {
    use superfe_net::GroupKey;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for v in out.group_vectors.iter().chain(&out.packet_vectors) {
        let mut buf = [0u8; GroupKey::MAX_KEY_BYTES];
        let len = v.key.write_bytes(&mut buf);
        fold(&buf[..len]);
        for x in v.values.as_slice() {
            fold(&x.to_bits().to_le_bytes());
        }
    }
    h
}

/// Renders one tenant's live state occupancy as a report line.
fn occupancy_line(occ: &superfe_ctrl::TenantOccupancy) -> String {
    let mut line = format!("tenant {} {} state:", occ.tenant, occ.name);
    for (g, n) in &occ.groups_per_level {
        write!(line, " {}={n}", format!("{g:?}").to_lowercase()).expect("write");
    }
    write!(
        line,
        " evicted_groups={} overflow_drops={}",
        occ.evicted_groups, occ.overflow_drops
    )
    .expect("write");
    line
}

/// The `superfe serve` command: N tenants on one shared switch/NIC with
/// admission control and epoch-based hot attach/detach.
#[allow(clippy::too_many_arguments)]
fn serve(
    policies: &[String],
    trace: WorkloadPreset,
    packets: usize,
    seed: u64,
    workers: usize,
    attach_at: &[(usize, usize)],
    detach_at: &[(usize, usize)],
    cache_slots: &[(usize, usize)],
    verify_solo: bool,
    fuse: bool,
    cse: bool,
    snapshot: Option<(&str, usize)>,
    restore: Option<&str>,
    evict_seed: Option<u64>,
) -> Result<String, CliError> {
    use superfe_core::{StreamingPipeline, SuperFeConfig};
    use superfe_ctrl::{CtrlPlane, TenantSpec};
    use superfe_nic::StreamOutput;
    use superfe_switch::TenantId;

    let mut specs = Vec::new();
    for name in policies {
        let (_, policy) = resolve_policy(name)?;
        let label = std::path::Path::new(name)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(name)
            .to_lowercase();
        specs.push(TenantSpec {
            name: label,
            policy,
            cfg: SuperFeConfig::default(),
        });
    }
    // Per-tenant cache quotas; tenants with different quotas never fuse
    // (the legality rule requires identical deployment configuration).
    for &(ti, slots) in cache_slots {
        specs[ti].cfg.cache.short_count = slots;
    }
    // Per-tenant epoch schedule: the last flag for a tenant wins.
    let attach_pkt: Vec<usize> = (0..specs.len())
        .map(|i| {
            attach_at
                .iter()
                .rev()
                .find(|(t, _)| *t == i)
                .map_or(0, |&(_, p)| p)
        })
        .collect();
    let detach_pkt: Vec<Option<usize>> = (0..specs.len())
        .map(|i| {
            detach_at
                .iter()
                .rev()
                .find(|(t, _)| *t == i)
                .map(|&(_, p)| p)
        })
        .collect();
    for i in 0..specs.len() {
        if attach_pkt[i] >= packets.max(1) {
            return Err(err(format!(
                "tenant {i}: --attach-at {} is past the end of the trace",
                attach_pkt[i]
            )));
        }
        if let Some(d) = detach_pkt[i] {
            if d <= attach_pkt[i] || d > packets {
                return Err(err(format!(
                    "tenant {i}: --detach-at {d} must fall after its attach and within the trace"
                )));
            }
        }
    }

    let t = Workload::preset(trace)
        .packets(packets)
        .seed(seed)
        .generate();

    if let Some(path) = restore {
        // Resume from a snapshot: topology, worker count, and resume
        // position all come from the file; the trace is regenerated
        // deterministically and replayed from the saved packet position.
        let bytes =
            std::fs::read(path).map_err(|e| err(format!("reading snapshot {path}: {e}")))?;
        let mut plane = CtrlPlane::restore(AnalyzeConfig::default(), &specs, &bytes, |_| None)
            .map_err(|e| err(e.to_string()))?;
        let resume = usize::try_from(plane.pushed()).unwrap_or(usize::MAX);
        if resume > t.records.len() {
            return Err(err(format!(
                "snapshot was taken at packet {resume}, past this trace's {} packets \
                 (regenerate with the original --trace/--packets/--seed)",
                t.records.len()
            )));
        }
        let mut text = String::new();
        writeln!(
            text,
            "restored {} tenants from {path} at packet {resume} ({} workers, epoch {})",
            plane.tenants().len(),
            plane.workers(),
            plane.epoch()
        )
        .expect("write");
        for rec in &t.records[resume..] {
            plane.push(rec).map_err(|e| err(e.to_string()))?;
        }
        for occ in plane.state_occupancy().map_err(|e| err(e.to_string()))? {
            writeln!(text, "{}", occupancy_line(&occ)).expect("write");
        }
        for run in plane.finish().map_err(|e| err(e.to_string()))? {
            writeln!(
                text,
                "tenant {} {}: group_vectors={} packet_vectors={} records={} digest={:016x}",
                run.id,
                run.name,
                run.output.group_vectors.len(),
                run.output.packet_vectors.len(),
                run.output.stats.records,
                output_digest(&run.output)
            )
            .expect("write");
        }
        return Ok(text);
    }

    let snapshot = snapshot.map(|(path, at)| (path, at.min(t.records.len())));
    let mut plane = match (fuse, cse) {
        (true, true) => CtrlPlane::new(workers, AnalyzeConfig::default()),
        (true, false) => CtrlPlane::without_cse(workers, AnalyzeConfig::default()),
        (false, _) => CtrlPlane::without_fusion(workers, AnalyzeConfig::default()),
    };
    // An explicit eviction seed pins every tenant attached below to the
    // seeded `RandomWay` policy, making eviction sequences reproducible
    // from the CLI. Restores keep the snapshotted state instead (rejected
    // at parse time).
    if let Some(seed) = evict_seed {
        plane.set_table_budget(superfe_nic::TableBudget {
            policy: superfe_nic::EvictionPolicy::RandomWay { seed },
            ..superfe_nic::TableBudget::default()
        });
    }
    let mut ids: Vec<Option<TenantId>> = vec![None; specs.len()];
    let mut outputs: Vec<Option<StreamOutput>> = (0..specs.len()).map(|_| None).collect();
    let mut text = String::new();
    let take_snapshot = |plane: &mut CtrlPlane, text: &mut String| -> Result<(), CliError> {
        let Some((path, _)) = snapshot else {
            return Ok(());
        };
        let bytes = plane.snapshot().map_err(|e| err(e.to_string()))?;
        std::fs::write(path, &bytes).map_err(|e| err(format!("writing snapshot {path}: {e}")))?;
        writeln!(
            text,
            "snapshot: wrote {} bytes to {path} at packet {} (epoch {})",
            bytes.len(),
            plane.pushed(),
            plane.epoch()
        )
        .expect("write");
        Ok(())
    };

    for (i, rec) in t.records.iter().enumerate() {
        if snapshot.map(|(_, at)| at) == Some(i) {
            take_snapshot(&mut plane, &mut text)?;
        }
        for ti in 0..specs.len() {
            if attach_pkt[ti] == i {
                let units_before = plane.units().len();
                let groups_before = plane.groups().len();
                let id = plane
                    .attach(&specs[ti], None)
                    .map_err(|e| err(e.to_string()))?;
                ids[ti] = Some(id);
                let fused = plane.units().len() == units_before;
                let shared = !fused && plane.groups().len() == groups_before;
                writeln!(
                    text,
                    "epoch {}: attached {id} ({}) at packet {i}{}",
                    plane.epoch(),
                    specs[ti].name,
                    if fused {
                        " — fused into a shared execution unit"
                    } else if shared {
                        " — sharing a switch partition (SF08xx prefix)"
                    } else {
                        ""
                    }
                )
                .expect("write");
            }
            if detach_pkt[ti] == Some(i) {
                let id = ids[ti].expect("detach is validated to follow attach");
                outputs[ti] = Some(plane.detach(id).map_err(|e| err(e.to_string()))?);
                writeln!(
                    text,
                    "epoch {}: detached {id} ({}) at packet {i}",
                    plane.epoch(),
                    specs[ti].name
                )
                .expect("write");
            }
        }
        plane.push(rec).map_err(|e| err(e.to_string()))?;
    }
    if snapshot.map(|(_, at)| at) == Some(t.records.len()) {
        take_snapshot(&mut plane, &mut text)?;
    }
    let epochs = plane.epoch();
    let live_units = plane.units().len();
    let live_groups = plane.groups().len();
    let occupancy = plane.state_occupancy().map_err(|e| err(e.to_string()))?;
    for run in plane.finish().map_err(|e| err(e.to_string()))? {
        let ti = ids
            .iter()
            .position(|id| *id == Some(run.id))
            .expect("finish returns only attached tenants");
        outputs[ti] = Some(run.output);
    }

    writeln!(
        text,
        "served {} tenants over {} packets ({} epochs, {} workers)",
        specs.len(),
        t.records.len(),
        epochs,
        workers
    )
    .expect("write");
    writeln!(
        text,
        "execution units at shutdown: {live_units} (cross-policy fusion {})",
        if fuse { "enabled" } else { "disabled" }
    )
    .expect("write");
    writeln!(
        text,
        "shared switch partitions at shutdown: {live_groups} (cross-tenant CSE {})",
        if cse { "enabled" } else { "disabled" }
    )
    .expect("write");
    for occ in &occupancy {
        writeln!(text, "{}", occupancy_line(occ)).expect("write");
    }
    for (ti, spec) in specs.iter().enumerate() {
        let out = outputs[ti].as_ref().expect("every tenant ran");
        writeln!(
            text,
            "tenant {} {}: group_vectors={} packet_vectors={} records={} digest={:016x}",
            ids[ti].expect("attached"),
            spec.name,
            out.group_vectors.len(),
            out.packet_vectors.len(),
            out.stats.records,
            output_digest(out)
        )
        .expect("write");
    }

    if verify_solo {
        for (ti, spec) in specs.iter().enumerate() {
            let window = &t.records[attach_pkt[ti]..detach_pkt[ti].unwrap_or(t.records.len())];
            let mut fe = StreamingPipeline::with_config(&spec.policy, spec.cfg, workers)
                .map_err(|e| err(e.to_string()))?;
            for rec in window {
                fe.push(rec).map_err(|e| err(e.to_string()))?;
            }
            let solo = fe.finish().map_err(|e| err(e.to_string()))?;
            let out = outputs[ti].as_ref().expect("every tenant ran");
            if solo.group_vectors != out.group_vectors || solo.packet_vectors != out.packet_vectors
            {
                return Err(err(format!(
                    "isolation violated: tenant {ti} ({}) diverged from its solo run \
                     (solo {}+{} vectors, shared {}+{})",
                    spec.name,
                    solo.group_vectors.len(),
                    solo.packet_vectors.len(),
                    out.group_vectors.len(),
                    out.packet_vectors.len()
                )));
            }
            writeln!(
                text,
                "verified tenant {} {}: bitwise identical to solo run",
                ids[ti].expect("attached"),
                spec.name
            )
            .expect("write");
        }
    }
    Ok(text)
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(usage()),
        Command::Apps => {
            let mut out = String::new();
            writeln!(
                out,
                "{:<10} {:<26} {:>4}  {:>4}",
                "NAME", "OBJECTIVE", "DIM", "LOC"
            )
            .expect("write to string");
            for app in all_apps() {
                writeln!(
                    out,
                    "{:<10} {:<26} {:>4}  {:>4}",
                    app.name.to_lowercase(),
                    app.objective,
                    app.dim(),
                    app.loc()
                )
                .expect("write to string");
            }
            Ok(out)
        }
        Command::List => {
            let mut out = String::new();
            for app in all_apps() {
                writeln!(out, "{}", app.name.to_lowercase()).expect("write to string");
            }
            Ok(out)
        }
        Command::Serve {
            policies,
            trace,
            packets,
            seed,
            workers,
            attach_at,
            detach_at,
            cache_slots,
            verify_solo,
            fuse,
            cse,
            snapshot,
            snapshot_at,
            restore,
            evict_seed,
        } => serve(
            &policies,
            trace,
            packets,
            seed,
            workers,
            &attach_at,
            &detach_at,
            &cache_slots,
            verify_solo,
            fuse,
            cse,
            snapshot
                .as_deref()
                .map(|p| (p, snapshot_at.unwrap_or(packets / 2))),
            restore.as_deref(),
            evict_seed,
        ),
        Command::Show { policy } => {
            let (src, _) = resolve_policy(&policy)?;
            Ok(src)
        }
        Command::Check {
            policies,
            headroom,
            cache_slots,
            groups,
            format,
        } => {
            let mut cfg = AnalyzeConfig {
                headroom_pct: headroom,
                groups,
                ..AnalyzeConfig::default()
            };
            if let Some(slots) = cache_slots {
                cfg.cache.short_count = slots;
            }
            let mut named = Vec::new();
            for name in &policies {
                named.push((name.clone(), resolve_policy_unchecked(name)?));
            }
            let reports: Vec<_> = named.iter().map(|(_, p)| analyze(p, &cfg)).collect();
            let failed = reports
                .iter()
                .any(superfe_policy::AnalysisReport::has_errors);
            let text = if named.len() == 1 {
                match format {
                    OutputFormat::Text => {
                        format!("checking {}\n{}", policies[0], reports[0].render())
                    }
                    OutputFormat::Json => format!("{}\n", reports[0].render_json()),
                }
            } else {
                // Several policies: per-policy reports plus the SF07xx
                // cross-policy fusion report over the whole set.
                match format {
                    OutputFormat::Text => {
                        let mut out = String::new();
                        for ((name, _), report) in named.iter().zip(&reports) {
                            write!(out, "checking {name}\n{}", report.render()).expect("write");
                        }
                        out.push_str(&fusion_section_text(&named, &cfg.value_config()));
                        out.push_str(&sharing_section_text(&named, &cfg.value_config()));
                        out
                    }
                    OutputFormat::Json => {
                        let per: Vec<String> = named
                            .iter()
                            .zip(&reports)
                            .map(|((name, _), r)| {
                                format!(
                                    "{{\"policy\":\"{}\",\"report\":{}}}",
                                    json_str(name),
                                    r.render_json()
                                )
                            })
                            .collect();
                        format!(
                            "{{\"policies\":[{}],\"fusion\":{},\"sharing\":{}}}\n",
                            per.join(","),
                            fusion_section_json(&named, &cfg.value_config()),
                            sharing_section_json(&named, &cfg.value_config())
                        )
                    }
                }
            };
            if failed {
                // Non-zero exit: main prints machine output to stdout and
                // prose to stderr, failing either way.
                Err(CliError {
                    message: text,
                    machine: format == OutputFormat::Json,
                })
            } else {
                Ok(text)
            }
        }
        Command::Explain {
            policies,
            groups,
            group_packets,
            format,
        } => {
            if policies.len() == 1 {
                return explain(&policies[0], groups, group_packets, format);
            }
            let mut named = Vec::new();
            for name in &policies {
                let (_, p) = resolve_policy(name)?;
                named.push((name.clone(), p));
            }
            let cfg = AnalyzeConfig {
                groups,
                group_packets,
                ..AnalyzeConfig::default()
            };
            match format {
                OutputFormat::Text => {
                    let mut out = String::new();
                    for name in &policies {
                        out.push_str(&explain(name, groups, group_packets, format)?);
                    }
                    out.push_str(&fusion_section_text(&named, &cfg.value_config()));
                    out.push_str(&sharing_section_text(&named, &cfg.value_config()));
                    Ok(out)
                }
                OutputFormat::Json => {
                    let mut per = Vec::new();
                    for name in &policies {
                        per.push(
                            explain(name, groups, group_packets, format)?
                                .trim_end()
                                .to_string(),
                        );
                    }
                    Ok(format!(
                        "{{\"policies\":[{}],\"fusion\":{},\"sharing\":{}}}\n",
                        per.join(","),
                        fusion_section_json(&named, &cfg.value_config()),
                        sharing_section_json(&named, &cfg.value_config())
                    ))
                }
            }
        }
        Command::Compile { policy } => {
            let (_, p) = resolve_policy(&policy)?;
            let compiled = compile(&p).map_err(|e| err(e.to_string()))?;
            let mut out = String::new();
            writeln!(out, "== FE-Switch program ==").expect("write");
            writeln!(
                out,
                "filter: {}",
                compiled
                    .switch
                    .filter
                    .as_ref()
                    .map(|f| format!("{f:?}"))
                    .unwrap_or_else(|| "none".into())
            )
            .expect("write");
            let levels: Vec<&str> = compiled.switch.levels.iter().map(|g| g.name()).collect();
            writeln!(
                out,
                "granularity chain (fine → coarse): {}",
                levels.join(" → ")
            )
            .expect("write");
            writeln!(
                out,
                "metadata layout: {:?} ({} B/record), FG table: {}",
                compiled.switch.metadata,
                compiled.switch.record_bytes(),
                if compiled.switch.needs_fg_table() {
                    "yes"
                } else {
                    "no"
                }
            )
            .expect("write");
            let res = switch_resources::model(&compiled.switch, &MgpvConfig::default());
            let (t, s, m) = res.utilization(&TofinoBudget::default());
            writeln!(
                out,
                "switch resources: tables {t:.1}%, sALUs {s:.1}%, SRAM {m:.1}%"
            )
            .expect("write");

            writeln!(out, "\n== FE-NIC program ==").expect("write");
            writeln!(
                out,
                "feature dimension: {}",
                compiled.nic.feature_dimension()
            )
            .expect("write");
            let nfp = NfpModel::nfp4000();
            let states = compiled.nic.states();
            let placement =
                solve_placement(&states, &nfp, 1).ok_or_else(|| err("placement failed"))?;
            for (name, mem) in &placement.assignment {
                writeln!(out, "  {name:<40} → {}", mem.name()).expect("write");
            }
            let model = CycleModel::new(&compiled.nic, &placement, nfp.clone());
            let e = model.estimate(OptFlags::all_on());
            writeln!(
                out,
                "cycle model: {:.0} cycles/record → {:.1} Gbps at 120 cores (1246 B packets)",
                e.cycles_per_record,
                e.gbps(120, &nfp, 1246.0)
            )
            .expect("write");
            let nic_res = nic_resources::model(
                &compiled.nic,
                &vec![10_000; compiled.nic.levels.len()],
                &nfp,
            );
            writeln!(
                out,
                "NIC memory at 10k groups/level: {:.1}% on-chip",
                nic_res.utilization_pct()
            )
            .expect("write");
            Ok(out)
        }
        Command::Run {
            policy,
            trace,
            packets,
            seed,
            csv,
            limit,
            save_trace,
            load_trace,
        } => {
            let (_, p) = resolve_policy(&policy)?;
            let mut fe = SuperFe::new(&p).map_err(|e| err(e.to_string()))?;
            let t = match &load_trace {
                Some(path) => superfe_trafficgen::io::load(path)
                    .map_err(|e| err(format!("loading {path}: {e}")))?,
                None => Workload::preset(trace)
                    .packets(packets)
                    .seed(seed)
                    .generate(),
            };
            if let Some(path) = &save_trace {
                superfe_trafficgen::io::save(&t, path)
                    .map_err(|e| err(format!("saving {path}: {e}")))?;
            }
            let stats = t.stats();
            for rec in &t.records {
                fe.push(rec);
            }
            let out = fe.finish();
            let mut text = String::new();
            writeln!(
                text,
                "trace: {} ({} packets, {} flows, {:.0} B avg)",
                trace.name(),
                stats.packets,
                stats.flows,
                stats.avg_pkt_size
            )
            .expect("write");
            writeln!(
                text,
                "switch: {} msgs out, rate ratio {:.2}%, byte ratio {:.2}%",
                out.switch_stats.msgs_out,
                100.0 * out.switch_stats.rate_aggregation_ratio(),
                100.0 * out.switch_stats.byte_aggregation_ratio()
            )
            .expect("write");
            let vectors = if out.group_vectors.is_empty() {
                &out.packet_vectors
            } else {
                &out.group_vectors
            };
            writeln!(text, "feature vectors: {}", vectors.len()).expect("write");
            for v in vectors.iter().take(limit) {
                let head: Vec<String> =
                    v.values.iter().take(8).map(|x| format!("{x:.2}")).collect();
                let ellipsis = if v.values.len() > 8 { ", ..." } else { "" };
                writeln!(text, "  {:?} -> [{}{}]", v.key, head.join(", "), ellipsis)
                    .expect("write");
            }
            if let Some(path) = csv {
                let mut file = String::new();
                for v in vectors {
                    let row: Vec<String> = v.values.iter().map(f64::to_string).collect();
                    file.push_str(&format!("{:?},{}\n", v.key, row.join(",")));
                }
                std::fs::write(&path, file).map_err(|e| err(format!("writing {path}: {e}")))?;
                writeln!(text, "wrote {} vectors to {path}", vectors.len()).expect("write");
            }
            Ok(text)
        }
        Command::Bench {
            packets,
            workers,
            seed,
            out,
        } => {
            let bench = superfe_bench::experiments::throughput::measure(packets, &workers, seed);
            let json = bench.to_json();
            if let Some(path) = out {
                std::fs::write(&path, &json).map_err(|e| err(format!("writing {path}: {e}")))?;
            }
            Ok(json)
        }
        Command::BenchScale {
            flows,
            seed,
            evict_seed,
            warmup,
            runs,
            out,
        } => {
            let bench = superfe_bench::experiments::scale::measure_with(
                &flows,
                seed,
                evict_seed,
                &superfe_bench::harness::HarnessConfig { warmup, runs },
            );
            let json = bench.to_json();
            if let Some(path) = out {
                std::fs::write(&path, &json).map_err(|e| err(format!("writing {path}: {e}")))?;
            }
            Ok(json)
        }
        Command::Detect { cfg, out } => {
            let bench = superfe_bench::experiments::detect::measure(&cfg).map_err(err)?;
            let json = bench.to_json();
            if let Some(path) = out {
                std::fs::write(&path, &json).map_err(|e| err(format!("writing {path}: {e}")))?;
            }
            let d = &bench.detection;
            let t = &bench.throughput;
            let mut text = json;
            text.push_str(&format!(
                "\ndetector={} scenario={} threshold={:.6e}\n\
                 alerts_on_attack={} alerts_on_benign={} f1={:.4} auc={:.4}\n\
                 throughput: extract {:.0} pkts/s, with inference {:.0} pkts/s ({:+.1}% overhead)\n",
                bench.cfg.detector.name(),
                bench.cfg.scenario.name(),
                d.threshold,
                d.alerts_on_attack,
                d.alerts_on_benign,
                d.f1,
                d.auc,
                t.extract_pkts_per_sec,
                t.detect_pkts_per_sec,
                t.inference_overhead_pct,
            ));
            use superfe_bench::experiments::detect::InPipelineSummary;
            match &bench.in_pipeline {
                Some(InPipelineSummary::Measured {
                    section,
                    pkts_per_sec,
                    vs_extract_ratio,
                    alerts_on_attack,
                    alerts_on_benign,
                    ..
                }) => {
                    text.push_str(&format!(
                        "in-pipeline ({}): {:.0} pkts/s ({:.2}x extract), {} alerts \
                         (attack={}, benign={}), |float-quant| max {:.3e}{}\n",
                        section.format,
                        pkts_per_sec,
                        vs_extract_ratio,
                        section.alerts,
                        alerts_on_attack,
                        alerts_on_benign,
                        section.score_delta_max,
                        if section.certified {
                            format!(" <= SF0901 bound {:.3e}", section.bound)
                        } else {
                            " (uncertified: SF0902)".to_string()
                        },
                    ));
                }
                Some(InPipelineSummary::Unsupported { reason }) => {
                    text.push_str(&format!(
                        "in-pipeline: detector has no fixed-point lowering ({reason})\n"
                    ));
                }
                None => {}
            }
            Ok(text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_help_variants() {
        for a in ["", "help", "--help", "-h"] {
            assert_eq!(parse_args(&args(a)), Ok(Command::Help));
        }
    }

    #[test]
    fn parses_run_options() {
        let c = parse_args(&args(
            "run kitsune --trace mawi --packets 5000 --seed 9 --limit 2",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Run {
                policy: "kitsune".into(),
                trace: WorkloadPreset::MawiIxp,
                packets: 5000,
                seed: 9,
                csv: None,
                limit: 2,
                save_trace: None,
                load_trace: None,
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("run")).is_err());
        assert!(parse_args(&args("run x --trace nope")).is_err());
        assert!(parse_args(&args("run x --packets abc")).is_err());
        assert!(parse_args(&args("run x --unknown 1")).is_err());
        assert!(parse_args(&args("compile")).is_err());
        assert!(parse_args(&args("bench --workers x,y")).is_err());
        assert!(parse_args(&args("bench --packets")).is_err());
    }

    #[test]
    fn parses_bench_options() {
        assert_eq!(
            parse_args(&args(
                "bench --packets 500 --workers 1,4 --seed 7 --out b.json"
            )),
            Ok(Command::Bench {
                packets: 500,
                workers: vec![1, 4],
                seed: 7,
                out: Some("b.json".into()),
            })
        );
        assert_eq!(
            parse_args(&args("bench")),
            Ok(Command::Bench {
                packets: 10_000,
                workers: vec![1, 2],
                seed: superfe_bench::experiments::throughput::DEFAULT_SEED,
                out: None,
            })
        );
    }

    #[test]
    fn parses_detect_options() {
        use superfe_bench::experiments::detect::DetectConfig;
        use superfe_trafficgen::intrusion::Scenario;

        let c = parse_args(&args(
            "detect --scenario syn_dos --detector centroid --benign 900 \
             --serve-benign 400 --attack 200 --seed 5 --workers 4 \
             --quantile 0.99 --margin 1.2 --in-pipeline --out d.json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Detect {
                cfg: DetectConfig {
                    scenario: Scenario::SynDos,
                    detector: superfe_detect::DetectorKind::Centroid,
                    benign_packets: 900,
                    serve_benign: 400,
                    attack_packets: 200,
                    seed: 5,
                    workers: 4,
                    quantile: 0.99,
                    margin: 1.2,
                    in_pipeline: true,
                },
                out: Some("d.json".into()),
            }
        );
        assert_eq!(
            parse_args(&args("detect")),
            Ok(Command::Detect {
                cfg: DetectConfig::default(),
                out: None,
            })
        );
    }

    #[test]
    fn rejects_bad_detect_input() {
        assert!(parse_args(&args("detect --scenario nope")).is_err());
        assert!(parse_args(&args("detect --detector nope")).is_err());
        assert!(parse_args(&args("detect --workers 0")).is_err());
        assert!(parse_args(&args("detect --quantile 1.5")).is_err());
        assert!(parse_args(&args("detect --margin -1")).is_err());
        assert!(parse_args(&args("detect --seed")).is_err());
    }

    #[test]
    fn detect_command_emits_schema() {
        use superfe_bench::experiments::detect::DetectConfig;
        let out = execute(Command::Detect {
            cfg: DetectConfig {
                detector: superfe_detect::DetectorKind::Centroid,
                benign_packets: 1_200,
                serve_benign: 600,
                attack_packets: 300,
                in_pipeline: true,
                ..DetectConfig::default()
            },
            out: None,
        })
        .unwrap();
        for key in [
            "\"experiment\": \"online_detection\"",
            "\"detection\"",
            "\"alerts_on_attack\"",
            "\"alerts_on_benign\"",
            "\"throughput\"",
            "\"in_pipeline\"",
            "\"score_delta_max\"",
            "alerts_on_attack=",
            "in-pipeline (Q",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }

    #[test]
    fn bench_command_emits_schema() {
        let out = execute(Command::Bench {
            packets: 1_000,
            workers: vec![1, 2],
            seed: 4,
            out: None,
        })
        .unwrap();
        for key in [
            "\"experiment\": \"streaming_pipeline_throughput\"",
            "\"host_parallelism\"",
            "\"baseline\"",
            "\"workers\": 2",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }

    #[test]
    fn list_is_machine_readable() {
        let out = execute(Command::List).unwrap();
        let names: Vec<&str> = out.lines().collect();
        assert_eq!(names.len(), all_apps().len());
        for n in &names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "name '{n}' is not machine-friendly"
            );
        }
        assert!(names.contains(&"kitsune"));
    }

    #[test]
    fn parses_serve_options() {
        let c = parse_args(&args(
            "serve cumul kitsune --packets 5000 --workers 4 --attach-at 1:100 \
             --detach-at 1:900 --cache-slots 0:4096 --no-fuse --verify-solo",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                policies: vec!["cumul".into(), "kitsune".into()],
                trace: WorkloadPreset::Enterprise,
                packets: 5000,
                seed: 1,
                workers: 4,
                attach_at: vec![(1, 100)],
                detach_at: vec![(1, 900)],
                cache_slots: vec![(0, 4096)],
                verify_solo: true,
                fuse: false,
                cse: false,
                snapshot: None,
                snapshot_at: None,
                restore: None,
                evict_seed: None,
            }
        );
        // --no-cse disables only prefix sharing; --no-fuse disables both.
        match parse_args(&args("serve cumul kitsune --no-cse")).unwrap() {
            Command::Serve { fuse, cse, .. } => {
                assert!(fuse);
                assert!(!cse);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        assert!(parse_args(&args("serve")).is_err());
        assert!(parse_args(&args("serve cumul --attach-at nope")).is_err());
        assert!(parse_args(&args("serve cumul --attach-at 7:0")).is_err());
        assert!(parse_args(&args("serve cumul --workers 0")).is_err());
        assert!(parse_args(&args("serve cumul --cache-slots 0:0")).is_err());
        assert!(parse_args(&args("serve cumul --cache-slots 5:100")).is_err());
        match parse_args(&args("serve cumul --evict-seed 5")).unwrap() {
            Command::Serve { evict_seed, .. } => assert_eq!(evict_seed, Some(5)),
            other => panic!("expected Serve, got {other:?}"),
        }
        assert!(parse_args(&args("serve cumul --evict-seed nope")).is_err());
    }

    #[test]
    fn parses_serve_snapshot_and_restore_flags() {
        match parse_args(&args("serve cumul --snapshot /tmp/s.bin --snapshot-at 42")).unwrap() {
            Command::Serve {
                snapshot,
                snapshot_at,
                restore,
                ..
            } => {
                assert_eq!(snapshot.as_deref(), Some("/tmp/s.bin"));
                assert_eq!(snapshot_at, Some(42));
                assert!(restore.is_none());
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // --snapshot-at is meaningless without a snapshot path; a restore
        // already carries its own topology and schedule.
        assert!(parse_args(&args("serve cumul --snapshot-at 42")).is_err());
        assert!(parse_args(&args("serve cumul --restore a --snapshot b")).is_err());
        assert!(parse_args(&args("serve cumul --restore a --attach-at 0:10")).is_err());
        assert!(parse_args(&args("serve cumul --restore a --detach-at 0:10")).is_err());
        // A restore resumes the snapshotted eviction state wholesale.
        assert!(parse_args(&args("serve cumul --restore a --evict-seed 1")).is_err());
    }

    #[test]
    fn parses_bench_scale_options() {
        match parse_args(&args(
            "bench scale --flows 1000,2000 --seed 9 --evict-seed 3 --runs 2 --out b.json",
        ))
        .unwrap()
        {
            Command::BenchScale {
                flows,
                seed,
                evict_seed,
                warmup,
                runs,
                out,
            } => {
                assert_eq!(flows, vec![1_000, 2_000]);
                assert_eq!(seed, 9);
                assert_eq!(evict_seed, 3);
                assert_eq!(warmup, 0);
                assert_eq!(runs, 2);
                assert_eq!(out.as_deref(), Some("b.json"));
            }
            other => panic!("expected BenchScale, got {other:?}"),
        }
        assert!(parse_args(&args("bench scale --runs 0")).is_err());
        assert!(parse_args(&args("bench scale --evict-seed nope")).is_err());
        assert!(parse_args(&args("bench scale --flows nope")).is_err());
    }

    #[test]
    fn serve_snapshot_then_restore_replays_bitwise() {
        let dir = std::env::temp_dir().join("superfe_cli_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("plane.sfsn").to_str().unwrap().to_string();
        let serve = |snapshot: Option<String>, restore: Option<String>| {
            execute(Command::Serve {
                policies: vec!["cumul".into(), "npod".into()],
                trace: WorkloadPreset::Campus,
                packets: 2_000,
                seed: 9,
                workers: 2,
                attach_at: vec![],
                detach_at: vec![],
                cache_slots: vec![],
                verify_solo: false,
                fuse: true,
                cse: true,
                snapshot_at: snapshot.is_some().then_some(1_000),
                snapshot,
                restore,
                evict_seed: None,
            })
            .unwrap()
        };
        let digests = |out: &str| -> Vec<String> {
            out.lines()
                .filter_map(|l| l.split("digest=").nth(1).map(str::to_string))
                .collect()
        };
        let full = serve(Some(snap.clone()), None);
        assert!(full.contains("snapshot: wrote"), "{full}");
        let restored = serve(None, Some(snap));
        assert!(restored.contains("restored 2 tenants"), "{restored}");
        // The restored run resumes mid-trace yet finishes with per-tenant
        // output digests bitwise-equal to the uninterrupted run.
        let (a, b) = (digests(&full), digests(&restored));
        assert_eq!(a.len(), 2, "{full}");
        assert_eq!(a, b, "full:\n{full}\nrestored:\n{restored}");
    }

    #[test]
    fn serve_runs_tenants_solo_identical() {
        let out = execute(Command::Serve {
            policies: vec!["cumul".into(), "npod".into()],
            trace: WorkloadPreset::Campus,
            packets: 4_000,
            seed: 3,
            workers: 2,
            attach_at: vec![],
            detach_at: vec![(1, 2_000)],
            cache_slots: vec![],
            verify_solo: true,
            fuse: true,
            cse: true,
            snapshot: None,
            snapshot_at: None,
            restore: None,
            evict_seed: None,
        })
        .unwrap();
        assert!(out.contains("served 2 tenants"), "{out}");
        assert!(out.contains("tenant t0 cumul: group_vectors="), "{out}");
        assert!(out.contains("detached t1 (npod) at packet 2000"), "{out}");
        assert!(
            out.contains("verified tenant t1 npod: bitwise identical"),
            "{out}"
        );
    }

    #[test]
    fn serve_rejects_overcommitted_tenant_set() {
        // Enough Kitsune-class tenants to exhaust the Tofino: admission must
        // refuse the set with the binding resource, and the command must
        // exit non-zero. Fusion stays off: twelve identical policies would
        // otherwise share one execution plan and admit trivially.
        let e = execute(Command::Serve {
            policies: vec!["kitsune".into(); 12],
            trace: WorkloadPreset::Campus,
            packets: 100,
            seed: 1,
            workers: 1,
            attach_at: vec![],
            detach_at: vec![],
            cache_slots: vec![],
            verify_solo: false,
            fuse: false,
            cse: false,
            snapshot: None,
            snapshot_at: None,
            restore: None,
            evict_seed: None,
        })
        .unwrap_err();
        assert!(e.message.contains("admission rejected"), "{e}");
        assert!(e.message.contains("exhausted"), "{e}");
    }

    #[test]
    fn serve_validates_epoch_schedule() {
        let base = |attach_at: Vec<(usize, usize)>, detach_at: Vec<(usize, usize)>| {
            execute(Command::Serve {
                policies: vec!["cumul".into()],
                trace: WorkloadPreset::Campus,
                packets: 100,
                seed: 1,
                workers: 1,
                attach_at,
                detach_at,
                cache_slots: vec![],
                verify_solo: false,
                fuse: true,
                cse: true,
                snapshot: None,
                snapshot_at: None,
                restore: None,
                evict_seed: None,
            })
        };
        assert!(
            base(vec![(0, 100)], vec![]).is_err(),
            "attach past trace end"
        );
        assert!(
            base(vec![(0, 50)], vec![(0, 50)]).is_err(),
            "detach at attach"
        );
        assert!(
            base(vec![], vec![(0, 500)]).is_err(),
            "detach past trace end"
        );
    }

    #[test]
    fn resolves_builtin_policies() {
        for name in ["kitsune", "NPOD", "tf", "cumul"] {
            let (src, p) = resolve_policy(name).unwrap();
            assert!(!src.is_empty());
            assert!(!p.ops.is_empty());
        }
        assert!(resolve_policy("/no/such/file.sfe").is_err());
    }

    #[test]
    fn apps_command_lists_everything() {
        let out = execute(Command::Apps).unwrap();
        for app in ["kitsune", "cumul", "peershark"] {
            assert!(out.contains(app), "{out}");
        }
    }

    #[test]
    fn compile_command_reports_split() {
        let out = execute(Command::Compile {
            policy: "kitsune".into(),
        })
        .unwrap();
        assert!(out.contains("FE-Switch"));
        assert!(out.contains("FE-NIC"));
        assert!(out.contains("socket → channel → host"));
        assert!(out.contains("feature dimension: 115"));
    }

    #[test]
    fn run_command_small_trace() {
        let out = execute(Command::Run {
            policy: "npod".into(),
            trace: WorkloadPreset::Campus,
            packets: 3_000,
            seed: 2,
            csv: None,
            limit: 1,
            save_trace: None,
            load_trace: None,
        })
        .unwrap();
        assert!(out.contains("feature vectors:"), "{out}");
        assert!(out.contains("rate ratio"));
    }

    #[test]
    fn parses_check_options() {
        let c = parse_args(&args(
            "check kitsune --headroom 75 --cache-slots 99 --groups 500",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Check {
                policies: vec!["kitsune".into()],
                headroom: 75.0,
                cache_slots: Some(99),
                groups: 500,
                format: OutputFormat::Text,
            }
        );
        // Multiple positional policies collect in order.
        let c = parse_args(&args("check npod cumul --format json")).unwrap();
        assert_eq!(
            c,
            Command::Check {
                policies: vec!["npod".into(), "cumul".into()],
                headroom: 90.0,
                cache_slots: None,
                groups: 5_000,
                format: OutputFormat::Json,
            }
        );
        assert!(parse_args(&args("check")).is_err());
        assert!(parse_args(&args("check x --headroom abc")).is_err());
        assert!(parse_args(&args("check x --frob 1")).is_err());
        assert!(parse_args(&args("check x --format yaml")).is_err());
    }

    #[test]
    fn parses_explain_options() {
        let c = parse_args(&args(
            "explain kitsune --groups 100 --group-packets 50000 --format json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Explain {
                policies: vec!["kitsune".into()],
                groups: 100,
                group_packets: 50_000,
                format: OutputFormat::Json,
            }
        );
        assert!(parse_args(&args("explain")).is_err());
        assert!(parse_args(&args("explain x --group-packets abc")).is_err());
    }

    fn check(policy: &str) -> Command {
        Command::Check {
            policies: vec![policy.into()],
            headroom: 90.0,
            cache_slots: None,
            groups: 5_000,
            format: OutputFormat::Text,
        }
    }

    #[test]
    fn check_passes_builtin_policies() {
        for name in [
            "cumul",
            "awf",
            "df",
            "tf",
            "peershark",
            "n-baiot",
            "mptd",
            "npod",
            "helad",
            "kitsune",
        ] {
            let out = execute(check(name)).unwrap();
            assert!(out.contains("0 error(s), 0 warning(s)"), "{name}: {out}");
        }
    }

    #[test]
    fn check_oversized_cache_fails_with_sram_diagnostic() {
        // The acceptance case: a cache configured past the Tofino SRAM
        // budget exits non-zero with an SF03xx error reporting utilization.
        let cmd = Command::Check {
            policies: vec!["kitsune".into()],
            headroom: 90.0,
            cache_slots: Some(4_000_000),
            groups: 10_000,
            format: OutputFormat::Text,
        };
        let e = execute(cmd).unwrap_err();
        assert!(!e.machine);
        assert!(e.message.contains("SF0303"), "{e}");
        assert!(e.message.contains("% utilization"), "{e}");
    }

    #[test]
    fn check_reports_dataflow_warnings_without_failing() {
        let dir = std::env::temp_dir().join("superfe_cli_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dead_map.sfe");
        std::fs::write(
            &path,
            "pktstream\n.groupby(flow)\n.map(ipt, tstamp, f_ipt)\n\
             .reduce(size, [f_sum])\n.collect(flow)",
        )
        .unwrap();
        let out = execute(check(path.to_str().unwrap())).unwrap();
        assert!(out.contains("SF0201"), "{out}");
        assert!(out.contains("1 warning(s)"), "{out}");
    }

    #[test]
    fn check_reports_structural_errors_as_diagnostics() {
        // A structurally broken file goes through the analyzer (every SF01xx
        // finding with its code), not the parse-time one-line error.
        let dir = std::env::temp_dir().join("superfe_cli_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("no_collect.sfe");
        std::fs::write(&path, "pktstream\n.groupby(flow)\n.reduce(size, [f_mean])").unwrap();
        let e = execute(check(path.to_str().unwrap())).unwrap_err();
        assert!(e.message.contains("SF0103"), "{e}");
        assert!(e.message.contains("SF0104"), "{e}");
    }

    #[test]
    fn check_json_format_emits_machine_output() {
        let cmd = Command::Check {
            policies: vec!["kitsune".into()],
            headroom: 90.0,
            cache_slots: None,
            groups: 5_000,
            format: OutputFormat::Json,
        };
        let out = execute(cmd).unwrap();
        assert!(out.starts_with("{\"errors\":0"), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
        // A failing check in JSON mode keeps the JSON on stdout.
        let cmd = Command::Check {
            policies: vec!["kitsune".into()],
            headroom: 90.0,
            cache_slots: Some(4_000_000),
            groups: 10_000,
            format: OutputFormat::Json,
        };
        let e = execute(cmd).unwrap_err();
        assert!(e.machine);
        assert!(e.message.contains("\"code\":\"SF0303\""), "{e}");
    }

    #[test]
    fn check_rejects_overflowing_policy_with_sf05_error() {
        // The acceptance case for the value analysis: a policy that provably
        // overflows a 32-bit sALU sum accumulator within one batch must be
        // rejected, and the diagnostic must name the reducer and the width.
        let dir = std::env::temp_dir().join("superfe_cli_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("overflow.sfe");
        // tstamp is µs-scaled 32-bit metadata on the switch: summing it over
        // a 10k-packet batch can reach ~4.29e9 µs × 10_000 ≫ 2^32.
        std::fs::write(
            &path,
            "pktstream\n.groupby(flow)\n.reduce(tstamp, [f_sum])\n.collect(flow)",
        )
        .unwrap();
        let e = execute(check(path.to_str().unwrap())).unwrap_err();
        assert!(!e.machine);
        assert!(e.message.contains("SF0501"), "{e}");
        assert!(e.message.contains("f_sum"), "{e}");
        assert!(e.message.contains("32-bit"), "{e}");
    }

    #[test]
    fn explain_renders_cost_and_rewrites() {
        let out = execute(Command::Explain {
            policies: vec!["kitsune".into()],
            groups: 5_000,
            group_packets: 10_000,
            format: OutputFormat::Text,
        })
        .unwrap();
        assert!(out.contains("cost model (per packet):"), "{out}");
        assert!(out.contains("value analysis:"), "{out}");
        assert!(out.contains("optimizer rewrites:"), "{out}");
        assert!(out.contains("cycles/record"), "{out}");
    }

    #[test]
    fn explain_json_is_an_object() {
        let out = execute(Command::Explain {
            policies: vec!["tf".into()],
            groups: 5_000,
            group_packets: 10_000,
            format: OutputFormat::Json,
        })
        .unwrap();
        assert!(out.starts_with("{\"policy\":\"tf\""), "{out}");
        assert!(out.contains("\"cycles_per_record\":"), "{out}");
        assert!(out.contains("\"report\":{\"errors\":0"), "{out}");
        assert!(out.trim_end().ends_with('}'), "{out}");
    }

    #[test]
    fn show_prints_source() {
        let out = execute(Command::Show {
            policy: "tf".into(),
        })
        .unwrap();
        assert!(out.contains("pktstream"));
        assert!(out.contains("f_array{5000}"));
    }

    #[test]
    fn check_multi_policy_emits_fusion_report() {
        // Two names that resolve to the same text must land in one class.
        let cmd = Command::Check {
            policies: vec!["df".into(), "awf".into(), "npod".into()],
            headroom: 90.0,
            cache_slots: None,
            groups: 5_000,
            format: OutputFormat::Text,
        };
        let out = execute(cmd).unwrap();
        assert!(out.contains("checking df"), "{out}");
        assert!(out.contains("checking npod"), "{out}");
        assert!(out.contains("cross-policy fusion (SF07xx):"), "{out}");
        assert!(out.contains("3 policies need 2 execution plan(s)"), "{out}");
        assert!(out.contains("fusion saves 1 duplicate plan(s)"), "{out}");
        assert!(out.contains("df, awf (fused)"), "{out}");
        assert!(out.contains("SF0701"), "{out}");
    }

    fn write_prefix_pair(dir: &std::path::Path) -> (String, String) {
        std::fs::create_dir_all(dir).unwrap();
        let a = dir.join("flow_sum.sfe");
        let b = dir.join("flow_max.sfe");
        std::fs::write(
            &a,
            "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_sum])\n\
             .collect(flow)",
        )
        .unwrap();
        std::fs::write(
            &b,
            "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_max])\n\
             .collect(flow)",
        )
        .unwrap();
        (
            a.to_str().unwrap().to_string(),
            b.to_str().unwrap().to_string(),
        )
    }

    #[test]
    fn check_pair_emits_sharing_report() {
        let dir = std::env::temp_dir().join("superfe_cli_share_test");
        let (a, b) = write_prefix_pair(&dir);
        let check = |format| Command::Check {
            policies: vec![a.clone(), b.clone()],
            headroom: 90.0,
            cache_slots: None,
            groups: 5_000,
            format,
        };
        let out = execute(check(OutputFormat::Text)).unwrap();
        assert!(
            out.contains("cross-tenant prefix sharing (SF08xx):"),
            "{out}"
        );
        assert!(
            out.contains("2 policies → 1 switch partition (1 saved)"),
            "{out}"
        );
        assert!(out.contains("(shared prefix 0x"), "{out}");
        assert!(out.contains("SF0801"), "{out}");
        assert!(out.contains("SF0803"), "{out}");
        let out = execute(check(OutputFormat::Json)).unwrap();
        assert!(out.contains("\"sharing\":{"), "{out}");
        assert!(out.contains("\"partition_count\":1"), "{out}");
        assert!(out.contains("\"partitions_saved\":1"), "{out}");
        assert!(out.contains("\"code\":\"SF0801\""), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
    }

    #[test]
    fn check_near_miss_reports_first_divergence() {
        // Same groupby key, filter constants apart by one knob: the SF0802
        // near-miss must carry the structured first-divergence diff in
        // both renderings.
        let dir = std::env::temp_dir().join("superfe_cli_share_nearmiss_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("small.sfe");
        let b = dir.join("large.sfe");
        std::fs::write(
            &a,
            "pktstream\n.filter(size > 100)\n.groupby(flow)\n.reduce(size, [f_sum])\n\
             .collect(flow)",
        )
        .unwrap();
        std::fs::write(
            &b,
            "pktstream\n.filter(size > 200)\n.groupby(flow)\n.reduce(size, [f_sum])\n\
             .collect(flow)",
        )
        .unwrap();
        let check = |format| Command::Check {
            policies: vec![
                a.to_str().unwrap().to_string(),
                b.to_str().unwrap().to_string(),
            ],
            headroom: 90.0,
            cache_slots: None,
            groups: 5_000,
            format,
        };
        let out = execute(check(OutputFormat::Text)).unwrap();
        assert!(out.contains("SF0802"), "{out}");
        assert!(out.contains("first divergence at"), "{out}");
        assert!(out.contains("100") && out.contains("200"), "{out}");
        let out = execute(check(OutputFormat::Json)).unwrap();
        assert!(
            out.contains("\"divergence\":{\"stage\":\"filter set\""),
            "{out}"
        );
        assert!(out.contains("\"culprit\":"), "{out}");
    }

    #[test]
    fn serve_prefix_sharing_shares_partitions_bitwise() {
        let dir = std::env::temp_dir().join("superfe_cli_serve_share_test");
        let (a, b) = write_prefix_pair(&dir);
        let run = |cse| {
            execute(Command::Serve {
                policies: vec![a.clone(), b.clone()],
                trace: WorkloadPreset::Campus,
                packets: 4_000,
                seed: 7,
                workers: 2,
                attach_at: vec![],
                detach_at: vec![],
                cache_slots: vec![],
                verify_solo: true,
                fuse: true,
                cse,
                snapshot: None,
                snapshot_at: None,
                restore: None,
                evict_seed: None,
            })
            .unwrap()
        };
        let out = run(true);
        assert!(
            out.contains("sharing a switch partition (SF08xx prefix)"),
            "{out}"
        );
        assert!(
            out.contains("shared switch partitions at shutdown: 1 (cross-tenant CSE enabled)"),
            "{out}"
        );
        assert!(out.contains("execution units at shutdown: 2"), "{out}");
        assert!(
            out.contains("verified tenant t1 flow_max: bitwise identical"),
            "{out}"
        );
        let out = run(false);
        assert!(
            out.contains("shared switch partitions at shutdown: 2 (cross-tenant CSE disabled)"),
            "{out}"
        );
    }

    #[test]
    fn check_multi_policy_json_reports_classes() {
        let cmd = Command::Check {
            policies: vec!["df".into(), "awf".into()],
            headroom: 90.0,
            cache_slots: None,
            groups: 5_000,
            format: OutputFormat::Json,
        };
        let out = execute(cmd).unwrap();
        assert!(out.starts_with("{\"policies\":["), "{out}");
        assert!(out.contains("\"policy\":\"df\""), "{out}");
        assert!(out.contains("\"fusion\":{"), "{out}");
        assert!(out.contains("\"policy_count\":2"), "{out}");
        assert!(out.contains("\"plan_count\":1"), "{out}");
        assert!(out.contains("\"plans_saved\":1"), "{out}");
        assert!(out.contains("\"members\":[\"df\",\"awf\"]"), "{out}");
        assert!(out.contains("\"code\":\"SF0701\""), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
        // An infeasible member still fails the whole check in JSON mode.
        let cmd = Command::Check {
            policies: vec!["df".into(), "kitsune".into()],
            headroom: 90.0,
            cache_slots: Some(4_000_000),
            groups: 10_000,
            format: OutputFormat::Json,
        };
        let e = execute(cmd).unwrap_err();
        assert!(e.machine);
        assert!(e.message.contains("\"code\":\"SF0303\""), "{e}");
        assert!(e.message.contains("\"fusion\":{"), "{e}");
    }

    #[test]
    fn explain_multi_policy_appends_fusion_section() {
        let out = execute(Command::Explain {
            policies: vec!["df".into(), "awf".into()],
            groups: 5_000,
            group_packets: 10_000,
            format: OutputFormat::Text,
        })
        .unwrap();
        assert!(out.contains("explaining df"), "{out}");
        assert!(out.contains("explaining awf"), "{out}");
        assert!(out.contains("cross-policy fusion (SF07xx):"), "{out}");
        assert!(out.contains("fusion saves 1 duplicate plan(s)"), "{out}");
        let json = execute(Command::Explain {
            policies: vec!["df".into(), "awf".into()],
            groups: 5_000,
            group_packets: 10_000,
            format: OutputFormat::Json,
        })
        .unwrap();
        assert!(
            json.starts_with("{\"policies\":[{\"policy\":\"df\""),
            "{json}"
        );
        assert!(json.contains("\"fusion\":{"), "{json}");
        assert!(json.contains("\"plans_saved\":1"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn serve_fuses_equivalent_tenants_and_verifies_solo() {
        // Two tenants running the same policy share one execution unit, and
        // the demuxed outputs still verify bitwise against solo runs.
        let out = execute(Command::Serve {
            policies: vec!["npod".into(), "npod".into()],
            trace: WorkloadPreset::Campus,
            packets: 3_000,
            seed: 5,
            workers: 2,
            attach_at: vec![],
            detach_at: vec![],
            cache_slots: vec![],
            verify_solo: true,
            fuse: true,
            cse: true,
            snapshot: None,
            snapshot_at: None,
            restore: None,
            evict_seed: None,
        })
        .unwrap();
        assert!(out.contains("fused into a shared execution unit"), "{out}");
        assert!(
            out.contains("execution units at shutdown: 1 (cross-policy fusion enabled)"),
            "{out}"
        );
        assert!(
            out.contains("verified tenant t0 npod: bitwise identical"),
            "{out}"
        );
        assert!(
            out.contains("verified tenant t1 npod: bitwise identical"),
            "{out}"
        );
    }

    #[test]
    fn serve_overcommitted_set_admits_under_fusion() {
        // The same twelve-Kitsune set that admission rejects unfused
        // collapses to one plan when fusion is on, and serves fine.
        let out = execute(Command::Serve {
            policies: vec!["kitsune".into(); 12],
            trace: WorkloadPreset::Campus,
            packets: 500,
            seed: 1,
            workers: 1,
            attach_at: vec![],
            detach_at: vec![],
            cache_slots: vec![],
            verify_solo: false,
            fuse: true,
            cse: true,
            snapshot: None,
            snapshot_at: None,
            restore: None,
            evict_seed: None,
        })
        .unwrap();
        assert!(out.contains("served 12 tenants"), "{out}");
        assert!(
            out.contains("execution units at shutdown: 1 (cross-policy fusion enabled)"),
            "{out}"
        );
    }

    #[test]
    fn serve_cache_slots_override_applies_per_tenant() {
        // An oversized per-tenant cache quota must fail that tenant's
        // deployment gate (SF0303), proving the override reaches the config.
        let e = execute(Command::Serve {
            policies: vec!["cumul".into(), "npod".into()],
            trace: WorkloadPreset::Campus,
            packets: 200,
            seed: 1,
            workers: 1,
            attach_at: vec![],
            detach_at: vec![],
            cache_slots: vec![(1, 4_000_000)],
            verify_solo: false,
            fuse: true,
            cse: true,
            snapshot: None,
            snapshot_at: None,
            restore: None,
            evict_seed: None,
        })
        .unwrap_err();
        assert!(e.message.contains("SF0303"), "{e}");
    }

    #[test]
    fn file_policies_load() {
        let dir = std::env::temp_dir().join("superfe_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.sfe");
        std::fs::write(
            &path,
            "pktstream\n.groupby(flow)\n.reduce(size, [f_sum])\n.collect(flow)",
        )
        .unwrap();
        let (_, p) = resolve_policy(path.to_str().unwrap()).unwrap();
        assert_eq!(p.feature_dimension(), 1);
    }
}
