//! Entry point of the `superfe` CLI; all logic lives in the library half.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match superfe_cli::parse_args(&args).and_then(superfe_cli::execute) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            if e.machine {
                // Machine-readable output (--format json) stays on stdout so
                // scripts can parse the failing report; the exit code alone
                // signals failure.
                print!("{}", e.message);
            } else {
                eprintln!("superfe: {e}");
            }
            ExitCode::FAILURE
        }
    }
}
