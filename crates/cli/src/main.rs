//! Entry point of the `superfe` CLI; all logic lives in the library half.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match superfe_cli::parse_args(&args).and_then(superfe_cli::execute) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("superfe: {e}");
            ExitCode::FAILURE
        }
    }
}
