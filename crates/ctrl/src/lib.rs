//! Multi-tenant control plane: N policies on one shared switch/NIC.
//!
//! SuperFE's data path (`superfe-switch` + `superfe-nic`) extracts features
//! for **one** policy. Real deployments run many traffic-analysis
//! applications on the same Tofino + SmartNIC pair; this crate adds the
//! control plane that makes that safe:
//!
//! - **Admission control** ([`admission`]): before a policy touches
//!   hardware, its demand is composed with the already-admitted set through
//!   the repo's existing resource models (`superfe_switch::resources`,
//!   `superfe_nic::resources`) and checked by the same `SF03xx`/`SF04xx`
//!   diagnostic passes `superfe check` runs. Over-budget combinations are
//!   refused with a typed [`AdmissionError`] naming the binding resource.
//! - **Shared data path** ([`plane`]): admitted tenants get their own
//!   filter-table entry, an SRAM cache partition sized by their quota, and
//!   per-tenant NIC engines keyed by `(tenant, cg_key)` — so each tenant's
//!   output is bitwise identical to running alone.
//! - **Epoch-based hot reconfiguration**: [`CtrlPlane::attach`] /
//!   [`CtrlPlane::detach`] take effect at batch-boundary epochs with a
//!   drain-and-flush handshake; tenants that are not touched lose and
//!   duplicate zero vectors.

pub mod admission;
pub mod error;
pub mod plane;
pub mod snapshot;

pub use admission::{
    admit, admit_composed, admit_composed_observed, AdmissionReport, StatePressure, TenantDemand,
};
pub use error::{AdmissionError, CtrlError, Resource};
pub use plane::{CtrlPlane, TenantOccupancy, TenantRun, TenantSpec};
pub use snapshot::SNAPSHOT_VERSION;
