//! Errors of the multi-tenant control plane.

use superfe_nic::NicError;
use superfe_policy::PolicyError;
use superfe_switch::tenant::TenantId;

/// The hardware resource that made an admission decision bind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resource {
    /// Tofino logical match tables.
    SwitchTables,
    /// Tofino stateful ALUs.
    SwitchSalus,
    /// Tofino SRAM.
    SwitchSram,
    /// SmartNIC aggregate state capacity (on-chip hierarchy plus DRAM).
    NicCapacity,
}

impl Resource {
    /// Human-readable name of the resource.
    pub fn name(self) -> &'static str {
        match self {
            Resource::SwitchTables => "switch match tables",
            Resource::SwitchSalus => "switch stateful ALUs",
            Resource::SwitchSram => "switch SRAM",
            Resource::NicCapacity => "NIC state capacity",
        }
    }
}

/// Why a tenant set was refused admission.
#[derive(Debug)]
pub enum AdmissionError {
    /// One policy failed its own deployment gate (compile error or an
    /// error-severity static-analysis finding) before composition was even
    /// attempted.
    Policy {
        /// Name of the offending tenant policy.
        tenant: String,
        /// The underlying policy/analysis failure.
        source: PolicyError,
    },
    /// The composed demand of the tenant set exceeds a hardware budget.
    /// `resource` names the binding resource.
    Budget {
        /// The resource the set ran out of.
        resource: Resource,
        /// Composed demand of the whole tenant set, in the resource's unit
        /// (tables, sALUs, or bytes).
        demand: u64,
        /// The hardware budget in the same unit.
        limit: u64,
        /// The rendered diagnostic behind the decision (SF03xx/SF04xx).
        detail: String,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Policy { tenant, source } => {
                write!(f, "policy '{tenant}' rejected: {source}")
            }
            AdmissionError::Budget {
                resource,
                demand,
                limit,
                ..
            } => write!(
                f,
                "admission rejected: {} exhausted (composed demand {demand} exceeds budget \
                 {limit})",
                resource.name()
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a control-plane operation failed.
#[derive(Debug)]
pub enum CtrlError {
    /// Admission refused the tenant set.
    Admission(AdmissionError),
    /// The shared NIC executor failed (a worker died).
    Nic(NicError),
    /// The tenant id is not attached.
    UnknownTenant(TenantId),
    /// The shared switch refused the data-path attach (degenerate cache
    /// configuration slipping past analysis).
    Switch(String),
    /// A plane snapshot could not be taken or restored (corrupt or
    /// version-mismatched bytes, or specs that do not match the saved
    /// topology).
    Snapshot(String),
}

impl std::fmt::Display for CtrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlError::Admission(e) => write!(f, "{e}"),
            CtrlError::Nic(e) => write!(f, "shared NIC error: {e}"),
            CtrlError::UnknownTenant(t) => write!(f, "tenant {t} is not attached"),
            CtrlError::Switch(msg) => write!(f, "shared switch error: {msg}"),
            CtrlError::Snapshot(msg) => write!(f, "plane snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for CtrlError {}

impl From<AdmissionError> for CtrlError {
    fn from(e: AdmissionError) -> Self {
        CtrlError::Admission(e)
    }
}

impl From<NicError> for CtrlError {
    fn from(e: NicError) -> Self {
        CtrlError::Nic(e)
    }
}
