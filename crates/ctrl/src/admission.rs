//! The admission controller: composed feasibility for a tenant set.
//!
//! Admission reuses the repo's existing resource models end to end — it
//! introduces **no second model**:
//!
//! - Per tenant, switch demand comes from `superfe_switch::resources::model`
//!   (the Table 4 component model) evaluated with that tenant's own cache
//!   quota; the set composes via `superfe_switch::resources::compose`,
//!   which counts the shared pipeline skeleton once.
//! - NIC demand comes from `superfe_nic::resources::model_many`, the same
//!   greedy fastest-memory-first allocation as the solo model with every
//!   tenant drawing from one shared capacity pool.
//! - The verdict comes from the same `SF03xx`/`SF04xx` diagnostic passes
//!   `superfe check` runs (`check_switch_resources`, `check_capacity`);
//!   error findings are mapped onto a typed [`AdmissionError`] naming the
//!   binding [`Resource`](crate::error::Resource).

use superfe_core::analyze::AnalyzeConfig;
use superfe_nic::resources::{model_many, NicResources};
use superfe_nic::{cycles_from_cost, MemLevel, NfpModel, OptFlags};
use superfe_policy::analyze::cost::{LevelCost, PolicyCost};
use superfe_policy::analyze::{codes, Diagnostic, Severity};
use superfe_policy::CompiledPolicy;
use superfe_switch::resources::{compose, model, SwitchResources};
use superfe_switch::{check_switch_resources, MgpvConfig};

use crate::error::{AdmissionError, Resource};

/// One tenant's modeled hardware demand, cached at admission time.
#[derive(Clone, Debug)]
pub struct TenantDemand {
    /// The compiled policy (switch and NIC halves).
    pub compiled: CompiledPolicy,
    /// The tenant's cache quota (sizes its SRAM partition).
    pub cache: MgpvConfig,
    /// Modeled switch usage under that quota.
    pub switch: SwitchResources,
    /// In-pipeline quantized-inference demand declared by the tenant, if
    /// any. Admission prices it into NIC cycles as an `SF0903` note.
    pub inference: Option<InferenceDemand>,
}

impl TenantDemand {
    /// Models `compiled` deployed with cache quota `cache`.
    pub fn new(compiled: CompiledPolicy, cache: MgpvConfig) -> Self {
        let switch = model(&compiled.switch, &cache);
        TenantDemand {
            compiled,
            cache,
            switch,
            inference: None,
        }
    }

    /// Declares an in-pipeline quantized model for this tenant (from an
    /// SF09xx `QuantCertificate`).
    pub fn with_inference(mut self, inference: InferenceDemand) -> Self {
        self.inference = Some(inference);
        self
    }
}

/// The in-pipeline inference load a tenant declares at admission time —
/// the admission-facing digest of an SF09xx
/// [`QuantCertificate`](superfe_policy::analyze::quant::QuantCertificate).
#[derive(Clone, Debug)]
pub struct InferenceDemand {
    /// Detector model name (e.g. `"kitnet"`).
    pub detector: String,
    /// Fixed-point format of the lowering (e.g. `"Q39.24"`).
    pub format: String,
    /// Integer ALU ops the quantized model executes per emitted feature
    /// vector.
    pub alu_ops: u64,
    /// Whether the SF0901 error-bound certification held for this
    /// policy × detector pair.
    pub certified: bool,
}

/// Prices a quantized model's per-vector ALU work through the same
/// `cycles_from_cost` lower-bound model `superfe explain` uses for
/// extraction: one synthetic level carrying the model's integer ops and a
/// single state access (the finalized vector read), no divisions.
fn inference_cycles(alu_ops: u64, nfp: &NfpModel) -> f64 {
    let cost = PolicyCost {
        filter_entries: 0,
        levels: vec![LevelCost {
            granularity: superfe_net::Granularity::Flow,
            maps: 0,
            reduce_funcs: 1,
            alu_ops: alu_ops as usize,
            divisions: 0,
            touched_bytes: 0,
            resident_bytes: 0,
            feature_dim: 0,
        }],
    };
    cycles_from_cost(&cost, nfp, OptFlags::all_on()).cycles_per_record
}

/// Live per-unit group populations observed on the NIC data path, fed back
/// into admission in place of the static `cfg.groups` estimate.
///
/// `per_unit[i]` holds the observed per-level group count for the `i`-th
/// NIC program offered to [`admit_composed_observed`]; a missing or empty
/// entry — or a level observed at zero population — falls back to the
/// static estimate, so a freshly attached (or not-yet-loaded) tenant is
/// still sized for its worst case. The control plane builds this from
/// [`SharedStreamingNic::state_pressure`](superfe_nic::SharedStreamingNic::state_pressure).
#[derive(Clone, Debug, Default)]
pub struct StatePressure {
    /// Observed per-level group populations, aligned with the NIC program
    /// slice under admission.
    pub per_unit: Vec<Vec<usize>>,
}

impl StatePressure {
    /// The effective population estimate for level `level` of NIC program
    /// `unit`: the live observation when one exists and is non-zero, the
    /// static `fallback` otherwise.
    pub fn effective(&self, unit: usize, level: usize, fallback: usize) -> usize {
        match self.per_unit.get(unit).and_then(|u| u.get(level)).copied() {
            Some(observed) if observed > 0 => observed,
            _ => fallback,
        }
    }
}

/// What admission concluded about an (accepted) tenant set.
#[derive(Clone, Debug)]
pub struct AdmissionReport {
    /// Composed switch usage (shared skeleton counted once).
    pub switch: SwitchResources,
    /// Joint NIC usage (one shared capacity pool).
    pub nic: NicResources,
    /// Non-fatal findings (headroom warnings, DRAM-spill notes).
    pub warnings: Vec<Diagnostic>,
}

/// Decides whether the tenant set in `tenants` fits the hardware described
/// by `cfg` — callers include the candidate alongside the already-admitted
/// tenants. Accepts with an [`AdmissionReport`]; rejects with a typed
/// [`AdmissionError::Budget`] naming the binding resource.
pub fn admit(
    cfg: &AnalyzeConfig,
    tenants: &[&TenantDemand],
) -> Result<AdmissionReport, AdmissionError> {
    let usages: Vec<SwitchResources> = tenants.iter().map(|t| t.switch).collect();
    let nics: Vec<&superfe_policy::NicProgram> = tenants.iter().map(|t| &t.compiled.nic).collect();
    let mut report = admit_composed(cfg, &usages, &nics)?;
    // Price declared in-pipeline inference into NIC cycles (SF0903). The
    // load is per emitted *vector*, not per packet, so it rides as a note
    // alongside the capacity verdict rather than inside it.
    for (i, t) in tenants.iter().enumerate() {
        if let Some(inf) = &t.inference {
            let cycles = inference_cycles(inf.alu_ops, &cfg.nfp);
            let certainty = if inf.certified {
                "SF0901-certified"
            } else {
                "UNCERTIFIED (SF0902)"
            };
            report.warnings.push(Diagnostic::note(
                codes::QUANT_CYCLE_COST,
                format!(
                    "tenant {i}: in-pipeline {} inference ({}) adds {} integer ALU ops \
                     ≈ {:.0} NIC cycles per emitted feature vector [{certainty}]",
                    inf.detector, inf.format, inf.alu_ops, cycles
                ),
            ));
        }
    }
    Ok(report)
}

/// The composed admission core: `switch` holds one usage entry per *switch
/// partition* and `nics` one program per *execution unit*. [`admit`] feeds
/// it one of each per tenant; a sharing control plane passes fewer switch
/// entries than NIC programs, so that a prefix-shared partition's demand is
/// counted once no matter how many tenants consume its event stream.
pub fn admit_composed(
    cfg: &AnalyzeConfig,
    switch: &[SwitchResources],
    nics: &[&superfe_policy::NicProgram],
) -> Result<AdmissionReport, AdmissionError> {
    admit_composed_observed(cfg, switch, nics, &StatePressure::default())
}

/// [`admit_composed`] with live population feedback: where the data path
/// has observed a unit's actual per-level group population, NIC capacity is
/// modeled against that observation instead of the static `cfg.groups`
/// estimate. Units the pressure summary does not cover (notably the
/// candidate itself) keep the static worst-case estimate.
pub fn admit_composed_observed(
    cfg: &AnalyzeConfig,
    switch: &[SwitchResources],
    nics: &[&superfe_policy::NicProgram],
    pressure: &StatePressure,
) -> Result<AdmissionReport, AdmissionError> {
    let mut warnings = Vec::new();

    // Switch: compose per-partition component models, then run the same
    // SF03xx pass the solo gate runs.
    let composed = compose(switch);
    for d in check_switch_resources(&composed, &cfg.budget, cfg.headroom_pct) {
        if d.severity != Severity::Error {
            warnings.push(d);
            continue;
        }
        let (resource, demand, limit) = match d.code {
            codes::SWITCH_TABLES_EXCEEDED => (
                Resource::SwitchTables,
                composed.tables as u64,
                cfg.budget.tables as u64,
            ),
            codes::SWITCH_SALUS_EXCEEDED => (
                Resource::SwitchSalus,
                composed.salus as u64,
                cfg.budget.salus as u64,
            ),
            _ => (
                Resource::SwitchSram,
                composed.sram_bytes as u64,
                cfg.budget.sram_bytes as u64,
            ),
        };
        return Err(AdmissionError::Budget {
            resource,
            demand,
            limit,
            detail: d.message,
        });
    }

    // NIC: joint greedy allocation over one shared pool, then the same
    // SF04xx capacity pass.
    let groups: Vec<Vec<usize>> = nics
        .iter()
        .enumerate()
        .map(|(unit, n)| {
            (0..n.levels.len())
                .map(|level| pressure.effective(unit, level, cfg.groups))
                .collect()
        })
        .collect();
    let inputs: Vec<(&superfe_policy::NicProgram, &[usize])> = nics
        .iter()
        .zip(&groups)
        .map(|(n, g)| (*n, g.as_slice()))
        .collect();
    let nic = model_many(&inputs, &cfg.nfp);
    let dram_cap = cfg
        .nfp
        .memory(MemLevel::Dram)
        .map(|m| m.capacity_bytes)
        .unwrap_or(0);
    for d in superfe_nic::check_capacity(&nic, &cfg.nfp, cfg.headroom_pct) {
        if d.severity != Severity::Error {
            warnings.push(d);
            continue;
        }
        return Err(AdmissionError::Budget {
            resource: Resource::NicCapacity,
            demand: nic.dram_bytes as u64,
            limit: dram_cap as u64,
            detail: d.message,
        });
    }

    Ok(AdmissionReport {
        switch: composed,
        nic,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_nic::NfpModel;
    use superfe_policy::compile;
    use superfe_policy::dsl::parse;
    use superfe_switch::TofinoBudget;

    fn demand(src: &str) -> TenantDemand {
        TenantDemand::new(
            compile(&parse(src).unwrap()).unwrap(),
            MgpvConfig::default(),
        )
    }

    fn host_sum() -> TenantDemand {
        demand("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)")
    }

    fn kitsune_like() -> TenantDemand {
        demand(
            "pktstream\n.groupby(socket)\n.map(ipt, tstamp, f_ipt)\n\
             .reduce(size, [f_mean, f_var])\n.collect(socket)\n\
             .groupby(channel)\n.reduce(size, [f_mag, f_pcc])\n.collect(channel)\n\
             .groupby(host)\n.reduce(size, [f_mean])\n.collect(host)",
        )
    }

    fn big_array() -> TenantDemand {
        demand(
            "pktstream\n.groupby(flow)\n.map(one, _, f_one)\n.map(d, one, f_direction)\n\
             .reduce(d, [f_array{5000}])\n.collect(flow)",
        )
    }

    #[test]
    fn defaults_admit_a_modest_pair() {
        let (a, b) = (host_sum(), kitsune_like());
        let report = admit(&AnalyzeConfig::default(), &[&a, &b]).unwrap();
        assert!(report.switch.salus > a.switch.salus);
        assert!(report.nic.used_bytes > 0);
    }

    #[test]
    fn declared_inference_is_priced_as_an_sf0903_note() {
        let a = host_sum();
        let b = kitsune_like().with_inference(InferenceDemand {
            detector: "kitnet".into(),
            format: "Q39.24".into(),
            alu_ops: 120_000,
            certified: true,
        });
        let cfg = AnalyzeConfig::default();
        let baseline = admit(&cfg, &[&a]).unwrap();
        let report = admit(&cfg, &[&a, &b]).unwrap();
        let notes: Vec<_> = report
            .warnings
            .iter()
            .filter(|d| d.code == codes::QUANT_CYCLE_COST)
            .collect();
        assert!(baseline
            .warnings
            .iter()
            .all(|d| d.code != codes::QUANT_CYCLE_COST));
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].severity, Severity::Note);
        assert!(notes[0].message.contains("tenant 1"));
        assert!(notes[0].message.contains("Q39.24"));
        assert!(notes[0].message.contains("SF0901-certified"));
        // The priced cycle figure includes the ALU ops themselves, so it
        // must exceed them.
        assert!(inference_cycles(120_000, &cfg.nfp) > 120_000.0);
        // An uncertified lowering is priced but flagged.
        let c = host_sum().with_inference(InferenceDemand {
            detector: "centroid".into(),
            format: "Q39.24".into(),
            alu_ops: 64,
            certified: false,
        });
        let report = admit(&cfg, &[&c]).unwrap();
        assert!(report.warnings.iter().any(
            |d| d.code == codes::QUANT_CYCLE_COST && d.message.contains("UNCERTIFIED (SF0902)")
        ));
    }

    /// The off-by-one boundary matrix: for each switch resource, a budget
    /// exactly at the composed demand admits; one unit below rejects with
    /// the binding resource named.
    #[test]
    fn switch_budget_boundaries_are_exact() {
        let (a, b) = (host_sum(), kitsune_like());
        let composed = compose(&[a.switch, b.switch]);
        // Generous baseline so only the probed axis binds.
        let roomy = TofinoBudget {
            tables: composed.tables * 2,
            salus: composed.salus * 2,
            sram_bytes: composed.sram_bytes * 2,
        };
        struct Case {
            name: &'static str,
            at: TofinoBudget,
            below: TofinoBudget,
            binds: Resource,
        }
        let cases = [
            Case {
                name: "tables",
                at: TofinoBudget {
                    tables: composed.tables,
                    ..roomy
                },
                below: TofinoBudget {
                    tables: composed.tables - 1,
                    ..roomy
                },
                binds: Resource::SwitchTables,
            },
            Case {
                name: "salus",
                at: TofinoBudget {
                    salus: composed.salus,
                    ..roomy
                },
                below: TofinoBudget {
                    salus: composed.salus - 1,
                    ..roomy
                },
                binds: Resource::SwitchSalus,
            },
            Case {
                name: "sram",
                at: TofinoBudget {
                    sram_bytes: composed.sram_bytes,
                    ..roomy
                },
                below: TofinoBudget {
                    sram_bytes: composed.sram_bytes - 1,
                    ..roomy
                },
                binds: Resource::SwitchSram,
            },
        ];
        for case in cases {
            let accept = AnalyzeConfig {
                budget: case.at,
                ..AnalyzeConfig::default()
            };
            let report = admit(&accept, &[&a, &b])
                .unwrap_or_else(|e| panic!("{}: budget at demand must admit, got {e}", case.name));
            // At 100% utilization the headroom warning fires — warn, not
            // reject.
            assert!(
                report
                    .warnings
                    .iter()
                    .any(|d| d.code == codes::SWITCH_HEADROOM),
                "{}: expected headroom warning at the boundary",
                case.name
            );
            let reject = AnalyzeConfig {
                budget: case.below,
                ..AnalyzeConfig::default()
            };
            match admit(&reject, &[&a, &b]) {
                Err(AdmissionError::Budget {
                    resource,
                    demand,
                    limit,
                    ..
                }) => {
                    assert_eq!(resource, case.binds, "{}", case.name);
                    assert_eq!(demand, limit + 1, "{}: off by exactly one", case.name);
                }
                other => panic!("{}: expected Budget rejection, got {other:?}", case.name),
            }
        }
    }

    /// NIC boundary: shrink DRAM so the composed spill exactly fits, then
    /// remove one byte — the joint model must reject with NicCapacity.
    #[test]
    fn nic_capacity_boundary_is_exact() {
        let (a, b) = (big_array(), big_array());
        let cfg = AnalyzeConfig {
            groups: 50_000,
            ..AnalyzeConfig::default()
        };
        let report = admit(&cfg, &[&a, &b]).unwrap();
        let spill = report.nic.dram_bytes;
        assert!(spill > 0, "big-array pair must spill to DRAM");
        let with_dram = |bytes: usize| {
            let mut nfp = NfpModel::nfp4000();
            for m in &mut nfp.memories {
                if m.level == MemLevel::Dram {
                    m.capacity_bytes = bytes;
                }
            }
            AnalyzeConfig {
                groups: cfg.groups,
                nfp,
                ..AnalyzeConfig::default()
            }
        };
        admit(&with_dram(spill), &[&a, &b]).expect("spill exactly at DRAM capacity admits");
        match admit(&with_dram(spill - 1), &[&a, &b]) {
            Err(AdmissionError::Budget {
                resource,
                demand,
                limit,
                ..
            }) => {
                assert_eq!(resource, Resource::NicCapacity);
                assert_eq!(demand as usize, spill);
                assert_eq!(limit as usize, spill - 1);
            }
            other => panic!("expected NicCapacity rejection, got {other:?}"),
        }
    }

    /// Population feedback: a big-array pair that spills to DRAM under the
    /// static 50k-group estimate fits on-chip once the data path reports
    /// the real (tiny) population; zero/missing observations fall back to
    /// the static estimate bit-for-bit.
    #[test]
    fn observed_population_replaces_static_estimate() {
        let (a, b) = (big_array(), big_array());
        let cfg = AnalyzeConfig {
            groups: 50_000,
            ..AnalyzeConfig::default()
        };
        let usages = [a.switch, b.switch];
        let nics = [&a.compiled.nic, &b.compiled.nic];
        let static_rep = admit_composed(&cfg, &usages, &nics).unwrap();
        assert!(static_rep.nic.dram_bytes > 0, "static estimate must spill");
        let live = admit_composed_observed(
            &cfg,
            &usages,
            &nics,
            &StatePressure {
                per_unit: vec![vec![10], vec![10]],
            },
        )
        .unwrap();
        assert!(live.nic.used_bytes < static_rep.nic.used_bytes);
        assert_eq!(live.nic.dram_bytes, 0, "10 observed groups fit on-chip");
        let fallback = admit_composed_observed(
            &cfg,
            &usages,
            &nics,
            &StatePressure {
                per_unit: vec![vec![0], Vec::new()],
            },
        )
        .unwrap();
        assert_eq!(fallback.nic.used_bytes, static_rep.nic.used_bytes);
        assert_eq!(fallback.nic.dram_bytes, static_rep.nic.dram_bytes);
    }

    #[test]
    fn composed_admission_counts_a_shared_partition_once() {
        // Two tenants on one prefix-shared switch partition: the composed
        // switch demand equals the solo demand, while a second NIC program
        // still adds NIC bytes.
        let cfg = AnalyzeConfig::default();
        let (a, b) = (host_sum(), host_sum());
        let shared =
            admit_composed(&cfg, &[a.switch], &[&a.compiled.nic, &b.compiled.nic]).unwrap();
        let solo = admit(&cfg, &[&a]).unwrap();
        let unshared = admit(&cfg, &[&a, &b]).unwrap();
        assert_eq!(shared.switch.salus, solo.switch.salus);
        assert_eq!(shared.switch.tables, solo.switch.tables);
        assert!(unshared.switch.salus > shared.switch.salus);
        assert!(shared.nic.used_bytes > solo.nic.used_bytes);
    }

    #[test]
    fn adding_tenants_is_monotone_until_rejection() {
        // Keep admitting Kitsune-class tenants against the real Tofino
        // budget: the composed sALUs grow monotonically and eventually the
        // controller rejects, naming a switch resource.
        let cfg = AnalyzeConfig::default();
        let tenant = kitsune_like();
        let mut set: Vec<&TenantDemand> = Vec::new();
        let mut last_salus = 0;
        let mut rejected = None;
        for _ in 0..16 {
            set.push(&tenant);
            match admit(&cfg, &set) {
                Ok(report) => {
                    assert!(report.switch.salus > last_salus);
                    last_salus = report.switch.salus;
                }
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        match rejected.expect("16 Kitsune tenants cannot fit a Tofino") {
            AdmissionError::Budget { resource, .. } => {
                assert!(
                    matches!(
                        resource,
                        Resource::SwitchSalus | Resource::SwitchTables | Resource::SwitchSram
                    ),
                    "{resource:?}"
                );
            }
            other => panic!("expected Budget, got {other:?}"),
        }
    }
}
