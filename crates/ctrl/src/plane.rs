//! The control plane: N admitted policies live on one shared data path.
//!
//! [`CtrlPlane`] owns the shared switch
//! ([`SharedSwitch`](superfe_switch::tenant::SharedSwitch)) and the shared
//! streaming NIC ([`SharedStreamingNic`](superfe_nic::SharedStreamingNic)),
//! and sequences reconfiguration in **epochs**:
//!
//! 1. [`CtrlPlane::attach`] gates the candidate policy (optimize → compile
//!    → static analysis, the same `superfe_core::deploy::gate` every solo
//!    path uses), composes its demand with the already-admitted set through
//!    the admission controller, and only then installs the tenant's filter
//!    entry, cache partition, and NIC engines — all at a batch boundary, so
//!    the new tenant sees exactly the packets pushed after the call.
//! 2. [`CtrlPlane::detach`] drains the departing tenant's switch partition
//!    into the event stream, hands its NIC engines a drain-and-flush
//!    handshake, and blocks until every shard acked — returning the
//!    tenant's complete, isolated output.
//!
//! Untouched tenants lose or duplicate zero vectors across either
//! operation: their partitions, engines, and channels are never touched,
//! and the epoch markers travel in-band so they cannot reorder against
//! event frames.

use superfe_core::pipeline::SuperFeConfig;
use superfe_net::PacketRecord;
use superfe_nic::{SharedStreamingNic, StreamOutput, VectorSink};
use superfe_policy::Policy;
use superfe_switch::tenant::{SharedSwitch, SharedSwitchStats, TaggedEvent, TenantId};
use superfe_switch::{MgpvStats, SwitchStats};

use crate::admission::{admit, AdmissionReport, TenantDemand};
use crate::error::{AdmissionError, CtrlError};

/// A policy a tenant asks to deploy.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (the bundled-app name or file stem).
    pub name: String,
    /// The policy itself.
    pub policy: Policy,
    /// Deployment configuration; `cfg.cache` is the tenant's cache quota.
    pub cfg: SuperFeConfig,
}

/// One live tenant.
struct Slot {
    id: TenantId,
    name: String,
    demand: TenantDemand,
}

/// One tenant's final output at plane shutdown.
#[derive(Debug)]
pub struct TenantRun {
    /// The tenant id.
    pub id: TenantId,
    /// The tenant's display name.
    pub name: String,
    /// Its isolated extraction output.
    pub output: StreamOutput,
}

/// The multi-tenant control plane over one shared switch + NIC.
pub struct CtrlPlane {
    analyze: superfe_core::analyze::AnalyzeConfig,
    switch: SharedSwitch,
    nic: SharedStreamingNic,
    slots: Vec<Slot>,
    next_id: u16,
    frame: Vec<TaggedEvent>,
    epoch: u64,
}

impl CtrlPlane {
    /// A plane with `workers` NIC shards and the given hardware model for
    /// admission (budget, NFP, expected group population, headroom).
    pub fn new(workers: usize, analyze: superfe_core::analyze::AnalyzeConfig) -> Self {
        CtrlPlane {
            analyze,
            switch: SharedSwitch::new(),
            nic: SharedStreamingNic::new(workers),
            slots: Vec::new(),
            next_id: 0,
            frame: Vec::new(),
            epoch: 0,
        }
    }

    /// Number of NIC shards.
    pub fn workers(&self) -> usize {
        self.nic.workers()
    }

    /// Completed reconfiguration epochs (each attach/detach is one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live tenants in attach order.
    pub fn tenants(&self) -> Vec<(TenantId, &str)> {
        self.slots.iter().map(|s| (s.id, s.name.as_str())).collect()
    }

    /// Link-level counters of the shared switch.
    pub fn switch_stats(&self) -> &SharedSwitchStats {
        self.switch.stats()
    }

    /// Per-tenant switch link counters.
    pub fn tenant_switch_stats(&self, tenant: TenantId) -> Option<&SwitchStats> {
        self.switch.tenant_stats(tenant)
    }

    /// Per-tenant cache counters.
    pub fn tenant_cache_stats(&self, tenant: TenantId) -> Option<MgpvStats> {
        self.switch.tenant_cache_stats(tenant)
    }

    /// Dry-runs admission for `spec` against the currently-admitted set
    /// without deploying anything.
    pub fn admission_check(&self, spec: &TenantSpec) -> Result<AdmissionReport, AdmissionError> {
        let demand = self.gate(spec)?;
        let mut set: Vec<&TenantDemand> = self.slots.iter().map(|s| &s.demand).collect();
        set.push(&demand);
        admit(&self.analyze, &set)
    }

    /// Admits and deploys `spec` at the current epoch. `sinks`, when given,
    /// must hold one [`VectorSink`] per NIC shard (the tenant's private
    /// egress — e.g. its detector's serving sinks).
    ///
    /// Packets pushed before this call never reach the new tenant; packets
    /// pushed after all do. Other tenants are unaffected.
    pub fn attach(
        &mut self,
        spec: &TenantSpec,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<TenantId, CtrlError> {
        let demand = self.gate(spec)?;
        let mut set: Vec<&TenantDemand> = self.slots.iter().map(|s| &s.demand).collect();
        set.push(&demand);
        admit(&self.analyze, &set)?;
        let id = TenantId(self.next_id);
        self.next_id = self.next_id.checked_add(1).expect("tenant id space");
        if !self.switch.attach(
            id,
            demand.compiled.switch.clone(),
            spec.cfg.cache,
            spec.cfg.mode,
        ) {
            return Err(CtrlError::Switch(
                "degenerate cache configuration for tenant partition".into(),
            ));
        }
        if let Err(e) = self
            .nic
            .attach(id, &demand.compiled, spec.cfg.cache.fg_table_size, sinks)
        {
            // Roll the switch half back so the plane stays consistent.
            let mut discard = Vec::new();
            self.switch.detach_into(id, &mut discard);
            return Err(CtrlError::Nic(e));
        }
        self.slots.push(Slot {
            id,
            name: spec.name.clone(),
            demand,
        });
        self.epoch += 1;
        Ok(id)
    }

    /// Detaches `tenant` at the current epoch with the drain-and-flush
    /// handshake, returning its complete isolated output. Blocks until
    /// every NIC shard acked the epoch.
    pub fn detach(&mut self, tenant: TenantId) -> Result<StreamOutput, CtrlError> {
        let Some(pos) = self.slots.iter().position(|s| s.id == tenant) else {
            return Err(CtrlError::UnknownTenant(tenant));
        };
        // Drain the switch partition so in-flight batched records reach the
        // NIC ahead of the detach marker.
        self.frame.clear();
        self.switch.detach_into(tenant, &mut self.frame);
        self.nic.push_all(self.frame.drain(..))?;
        let out = self.nic.detach(tenant)?;
        self.slots.remove(pos);
        self.epoch += 1;
        Ok(out)
    }

    /// Feeds one packet through the shared filter table into every
    /// matching tenant's partition and on to the NIC shards.
    pub fn push(&mut self, p: &PacketRecord) -> Result<(), CtrlError> {
        self.frame.clear();
        self.switch.process_into(p, &mut self.frame);
        self.nic
            .push_all(self.frame.drain(..))
            .map_err(CtrlError::Nic)
    }

    /// Flushes every tenant partition, drains the shards, and returns each
    /// remaining tenant's isolated output in attach order.
    pub fn finish(mut self) -> Result<Vec<TenantRun>, CtrlError> {
        self.frame.clear();
        self.switch.flush_into(&mut self.frame);
        self.nic.push_all(self.frame.drain(..))?;
        let outs = self.nic.finish()?;
        Ok(outs
            .into_iter()
            .map(|(id, output)| {
                let name = self
                    .slots
                    .iter()
                    .find(|s| s.id == id)
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|| id.to_string());
                TenantRun { id, name, output }
            })
            .collect())
    }

    /// Runs the per-policy deployment gate and models the demand.
    fn gate(&self, spec: &TenantSpec) -> Result<TenantDemand, AdmissionError> {
        let compiled = superfe_core::deploy::gate(&spec.policy, &spec.cfg).map_err(|e| {
            AdmissionError::Policy {
                tenant: spec.name.clone(),
                source: e,
            }
        })?;
        Ok(TenantDemand::new(compiled, spec.cfg.cache))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_core::analyze::AnalyzeConfig;
    use superfe_core::StreamingPipeline;
    use superfe_policy::dsl::parse;

    fn spec(name: &str, src: &str) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            policy: parse(src).unwrap(),
            cfg: SuperFeConfig::default(),
        }
    }

    fn host_sum() -> TenantSpec {
        spec(
            "host-sum",
            "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        )
    }

    fn flow_stats() -> TenantSpec {
        spec(
            "flow-stats",
            "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n\
             .reduce(size, [f_mean, f_max])\n.collect(flow)",
        )
    }

    fn packets(n: u64) -> impl Iterator<Item = PacketRecord> {
        (0..n).map(|i| {
            if i % 5 == 0 {
                PacketRecord::udp(i * 700, 90, (i % 11 + 1) as u32, 53, 4, 53)
            } else {
                PacketRecord::tcp(i * 700, 400, (i % 11 + 1) as u32, 1500, 4, 443)
            }
        })
    }

    fn solo(ts: &TenantSpec, n: u64, workers: usize) -> superfe_core::Extraction {
        let mut fe = StreamingPipeline::with_config(&ts.policy, ts.cfg, workers).unwrap();
        for p in packets(n) {
            fe.push(&p).unwrap();
        }
        fe.finish().unwrap()
    }

    #[test]
    fn plane_runs_two_tenants_isolated() {
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&flow_stats(), None).unwrap();
        assert_ne!(a, b);
        assert_eq!(plane.epoch(), 2);
        for p in packets(900) {
            plane.push(&p).unwrap();
        }
        assert!(plane.tenant_switch_stats(a).unwrap().pkts_in == 900);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].name, "host-sum");
        let solo_a = solo(&host_sum(), 900, 2);
        let solo_b = solo(&flow_stats(), 900, 2);
        assert_eq!(runs[0].output.group_vectors, solo_a.group_vectors);
        assert_eq!(runs[1].output.group_vectors, solo_b.group_vectors);
    }

    #[test]
    fn detach_returns_isolated_output_mid_stream() {
        let mut plane = CtrlPlane::new(4, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&flow_stats(), None).unwrap();
        let mut detached = None;
        for (i, p) in packets(1200).enumerate() {
            if i == 600 {
                detached = Some(plane.detach(b).unwrap());
                assert_eq!(plane.tenants().len(), 1);
            }
            plane.push(&p).unwrap();
        }
        assert!(plane.detach(b).is_err(), "double detach is refused");
        let gone = detached.unwrap();
        assert!(gone.stats.records > 0);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].id, a);
        // Survivor unaffected by the mid-stream epoch.
        let solo_a = solo(&host_sum(), 1200, 4);
        assert_eq!(runs[0].output.group_vectors, solo_a.group_vectors);
    }

    #[test]
    fn infeasible_policy_is_rejected_at_the_gate() {
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        let mut bad = host_sum();
        bad.cfg.cache.short_count = 4_000_000;
        match plane.attach(&bad, None) {
            Err(CtrlError::Admission(AdmissionError::Policy { tenant, .. })) => {
                assert_eq!(tenant, "host-sum");
            }
            other => panic!("expected Policy rejection, got {other:?}"),
        }
        assert_eq!(plane.epoch(), 0);
        plane.finish().unwrap();
    }

    #[test]
    fn composed_overload_is_rejected_with_binding_resource() {
        // Individually feasible tenants whose composition blows the sALU
        // budget: keep attaching until the controller says no.
        let kitsune = spec(
            "kitsune-like",
            "pktstream\n.groupby(socket)\n.map(ipt, tstamp, f_ipt)\n\
             .reduce(size, [f_mean, f_var])\n.collect(socket)\n\
             .groupby(channel)\n.reduce(size, [f_mag, f_pcc])\n.collect(channel)\n\
             .groupby(host)\n.reduce(size, [f_mean])\n.collect(host)",
        );
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        let mut rejected = None;
        for _ in 0..16 {
            match plane.attach(&kitsune, None) {
                Ok(_) => {}
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        match rejected.expect("a Tofino cannot host 16 Kitsune tenants") {
            CtrlError::Admission(AdmissionError::Budget { resource, .. }) => {
                // The plane keeps running for the admitted tenants.
                assert!(!resource.name().is_empty());
            }
            other => panic!("expected Budget rejection, got {other:?}"),
        }
        assert!(!plane.tenants().is_empty());
        for p in packets(100) {
            plane.push(&p).unwrap();
        }
        plane.finish().unwrap();
    }
}
