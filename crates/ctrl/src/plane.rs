//! The control plane: N admitted policies live on one shared data path.
//!
//! [`CtrlPlane`] owns the shared switch
//! ([`SharedSwitch`](superfe_switch::tenant::SharedSwitch)) and the shared
//! streaming NIC ([`SharedStreamingNic`](superfe_nic::SharedStreamingNic)),
//! and sequences reconfiguration in **epochs**:
//!
//! 1. [`CtrlPlane::attach`] gates the candidate policy (optimize → compile
//!    → static analysis, the same `superfe_core::deploy::gate` every solo
//!    path uses), then consults the SF07xx cross-policy equivalence
//!    analysis (`superfe_policy::analyze::equiv`): if the candidate is
//!    provably equivalent to an already-deployed policy — same canonical
//!    hash, same deployment config, proven value-range match, and the
//!    shared plan still at stream position zero — it **fuses**, joining
//!    the existing execution unit's demux fan-out with zero marginal
//!    hardware demand. Otherwise its demand composes with the admitted
//!    set through the admission controller before the plane installs a
//!    new filter entry, cache partition, and NIC engine set.
//! 2. [`CtrlPlane::detach`] picks the handshake by unit population: a
//!    unit's sole member drains its switch partition into the event
//!    stream and finalizes destructively; a member of a fused unit gets a
//!    **snapshot** detach — the partition is cloned and flushed
//!    non-destructively and the NIC finalizes a clone of the unit engine,
//!    so the departing member's output is bitwise what a solo detach
//!    would return while the surviving members' state is never touched.
//!
//! Untouched tenants lose or duplicate zero vectors across either
//! operation: their partitions, engines, and channels are never touched,
//! and the epoch markers travel in-band so they cannot reorder against
//! event frames. Fusion preserves the same contract through the demux
//! fan-out: every fused member receives its own copy of every vector
//! under its own egress numbering.

use superfe_core::pipeline::SuperFeConfig;
use superfe_net::PacketRecord;
use superfe_nic::{SharedStreamingNic, StreamOutput, VectorSink};
use superfe_policy::analyze::{codes, equiv, Diagnostic};
use superfe_policy::Policy;
use superfe_switch::resources::{compose, SwitchResources};
use superfe_switch::tenant::{SharedSwitch, SharedSwitchStats, TaggedEvent, TenantId};
use superfe_switch::{MgpvStats, SwitchStats};

use crate::admission::{admit, AdmissionReport, TenantDemand};
use crate::error::{AdmissionError, CtrlError};

/// A policy a tenant asks to deploy.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (the bundled-app name or file stem).
    pub name: String,
    /// The policy itself.
    pub policy: Policy,
    /// Deployment configuration; `cfg.cache` is the tenant's cache quota.
    pub cfg: SuperFeConfig,
}

/// One live tenant and the execution unit serving it.
struct Slot {
    id: TenantId,
    name: String,
    unit: TenantId,
}

/// One deployed execution unit: a switch partition + NIC engine set that
/// one or more SF07xx-equivalent tenants share.
struct Unit {
    id: TenantId,
    hash: u64,
    policy: Policy,
    cfg: SuperFeConfig,
    demand: TenantDemand,
    members: Vec<TenantId>,
    /// Stream position (packets pushed) when the unit attached; a
    /// candidate may only fuse while the plane is still at this position,
    /// otherwise the shared plan would owe the late member history.
    attach_pos: u64,
}

/// One tenant's final output at plane shutdown.
#[derive(Debug)]
pub struct TenantRun {
    /// The tenant id.
    pub id: TenantId,
    /// The tenant's display name.
    pub name: String,
    /// Its isolated extraction output.
    pub output: StreamOutput,
}

/// The multi-tenant control plane over one shared switch + NIC.
pub struct CtrlPlane {
    analyze: superfe_core::analyze::AnalyzeConfig,
    switch: SharedSwitch,
    nic: SharedStreamingNic,
    slots: Vec<Slot>,
    units: Vec<Unit>,
    fusion: bool,
    next_id: u16,
    frame: Vec<TaggedEvent>,
    epoch: u64,
    pushed: u64,
}

impl CtrlPlane {
    /// A plane with `workers` NIC shards and the given hardware model for
    /// admission (budget, NFP, expected group population, headroom), with
    /// analysis-certified cross-policy fusion enabled.
    pub fn new(workers: usize, analyze: superfe_core::analyze::AnalyzeConfig) -> Self {
        Self::build(workers, analyze, true)
    }

    /// Like [`CtrlPlane::new`] but with fusion disabled: every tenant gets
    /// its own partition and engines even when provably equivalent (the
    /// baseline the fusion benchmarks compare against).
    pub fn without_fusion(workers: usize, analyze: superfe_core::analyze::AnalyzeConfig) -> Self {
        Self::build(workers, analyze, false)
    }

    fn build(workers: usize, analyze: superfe_core::analyze::AnalyzeConfig, fusion: bool) -> Self {
        CtrlPlane {
            analyze,
            switch: SharedSwitch::new(),
            nic: SharedStreamingNic::new(workers),
            slots: Vec::new(),
            units: Vec::new(),
            fusion,
            next_id: 0,
            frame: Vec::new(),
            epoch: 0,
            pushed: 0,
        }
    }

    /// Number of NIC shards.
    pub fn workers(&self) -> usize {
        self.nic.workers()
    }

    /// Whether analysis-certified cross-policy fusion is enabled.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion
    }

    /// Completed reconfiguration epochs (each attach/detach is one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live tenants in attach order.
    pub fn tenants(&self) -> Vec<(TenantId, &str)> {
        self.slots.iter().map(|s| (s.id, s.name.as_str())).collect()
    }

    /// Live execution units in creation order, each with its member count
    /// (fused units serve more than one tenant).
    pub fn units(&self) -> Vec<(TenantId, usize)> {
        self.units.iter().map(|u| (u.id, u.members.len())).collect()
    }

    /// Link-level counters of the shared switch.
    pub fn switch_stats(&self) -> &SharedSwitchStats {
        self.switch.stats()
    }

    /// Per-tenant switch link counters. For a fused tenant these are the
    /// shared unit's counters: members of one unit see one stream.
    pub fn tenant_switch_stats(&self, tenant: TenantId) -> Option<&SwitchStats> {
        self.switch.tenant_stats(self.unit_of(tenant)?)
    }

    /// Per-tenant cache counters (the shared unit's, when fused).
    pub fn tenant_cache_stats(&self, tenant: TenantId) -> Option<MgpvStats> {
        self.switch.tenant_cache_stats(self.unit_of(tenant)?)
    }

    /// The execution unit serving `tenant`.
    fn unit_of(&self, tenant: TenantId) -> Option<TenantId> {
        self.slots.iter().find(|s| s.id == tenant).map(|s| s.unit)
    }

    /// The unit index `spec` may fuse into, per the SF07xx legality rule:
    /// equal canonical hash, identical deployment config, the unit still
    /// at the candidate's stream position, and semantic equivalence
    /// (value ranges, units, saturation) proven against the
    /// representative.
    fn fusion_target(&self, spec: &TenantSpec, hash: u64) -> Option<usize> {
        if !self.fusion {
            return None;
        }
        let vc = self.analyze.value_config();
        self.units.iter().position(|u| {
            u.hash == hash
                && u.cfg == spec.cfg
                && u.attach_pos == self.pushed
                && equiv::check_equivalence(&u.policy, &spec.policy, &vc).is_ok()
        })
    }

    /// Dry-runs admission for `spec` against the currently-admitted set
    /// without deploying anything. The verdict's warnings carry an SF0703
    /// note when fusion changes the composed demand — either because the
    /// candidate itself would fuse (zero marginal demand) or because the
    /// admitted set already shares plans.
    pub fn admission_check(&self, spec: &TenantSpec) -> Result<AdmissionReport, AdmissionError> {
        let demand = self.gate(spec)?;
        let hash = equiv::canonical_hash(&spec.policy, &self.analyze.value_config());
        let fused_into = self.fusion_target(spec, hash);
        let mut set: Vec<&TenantDemand> = self.units.iter().map(|u| &u.demand).collect();
        if fused_into.is_none() {
            set.push(&demand);
        }
        let mut report = admit(&self.analyze, &set)?;
        // Surface the fusion headroom: what the same tenant set would cost
        // with one partition + engine set per tenant.
        let mut unfused: Vec<SwitchResources> = self
            .slots
            .iter()
            .filter_map(|s| {
                self.units
                    .iter()
                    .find(|u| u.id == s.unit)
                    .map(|u| u.demand.switch)
            })
            .collect();
        unfused.push(demand.switch);
        if unfused.len() > set.len() {
            let solo = compose(&unfused);
            let mut note = format!(
                "cross-policy fusion serves {} tenants with {} plans: composed switch demand \
                 {} sALUs / {} tables (unfused: {} sALUs / {} tables)",
                unfused.len(),
                set.len(),
                report.switch.salus,
                report.switch.tables,
                solo.salus,
                solo.tables,
            );
            if let Some(pos) = fused_into {
                note.push_str(&format!(
                    "; candidate is SF07xx-equivalent to unit {} and adds zero marginal demand",
                    self.units[pos].id
                ));
            }
            report
                .warnings
                .push(Diagnostic::note(codes::FUSION_HEADROOM, note));
        }
        Ok(report)
    }

    /// Admits and deploys `spec` at the current epoch. `sinks`, when given,
    /// must hold one [`VectorSink`] per NIC shard (the tenant's private
    /// egress — e.g. its detector's serving sinks).
    ///
    /// Packets pushed before this call never reach the new tenant; packets
    /// pushed after all do. Other tenants are unaffected. When the SF07xx
    /// analysis certifies the candidate equivalent to a live unit (see
    /// [`CtrlPlane::admission_check`]), the tenant joins that unit's demux
    /// fan-out instead of consuming new hardware; its observable output is
    /// bitwise identical either way.
    pub fn attach(
        &mut self,
        spec: &TenantSpec,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<TenantId, CtrlError> {
        let demand = self.gate(spec)?;
        let hash = equiv::canonical_hash(&spec.policy, &self.analyze.value_config());
        if let Some(pos) = self.fusion_target(spec, hash) {
            let unit_id = self.units[pos].id;
            let id = TenantId(self.next_id);
            self.nic.join(unit_id, id, sinks)?;
            self.next_id = self.next_id.checked_add(1).expect("tenant id space");
            self.units[pos].members.push(id);
            self.slots.push(Slot {
                id,
                name: spec.name.clone(),
                unit: unit_id,
            });
            self.epoch += 1;
            return Ok(id);
        }
        let mut set: Vec<&TenantDemand> = self.units.iter().map(|u| &u.demand).collect();
        set.push(&demand);
        admit(&self.analyze, &set)?;
        let id = TenantId(self.next_id);
        self.next_id = self.next_id.checked_add(1).expect("tenant id space");
        if !self.switch.attach(
            id,
            demand.compiled.switch.clone(),
            spec.cfg.cache,
            spec.cfg.mode,
        ) {
            return Err(CtrlError::Switch(
                "degenerate cache configuration for tenant partition".into(),
            ));
        }
        if let Err(e) = self
            .nic
            .attach(id, &demand.compiled, spec.cfg.cache.fg_table_size, sinks)
        {
            // Roll the switch half back so the plane stays consistent.
            let mut discard = Vec::new();
            self.switch.detach_into(id, &mut discard);
            return Err(CtrlError::Nic(e));
        }
        self.units.push(Unit {
            id,
            hash,
            policy: spec.policy.clone(),
            cfg: spec.cfg,
            demand,
            members: vec![id],
            attach_pos: self.pushed,
        });
        self.slots.push(Slot {
            id,
            name: spec.name.clone(),
            unit: id,
        });
        self.epoch += 1;
        Ok(id)
    }

    /// Detaches `tenant` at the current epoch, returning its complete
    /// isolated output. Blocks until every NIC shard acked the epoch.
    ///
    /// A unit's sole member drains destructively; a member of a fused unit
    /// is finalized against a snapshot of the shared state, leaving the
    /// surviving members bitwise unaffected.
    pub fn detach(&mut self, tenant: TenantId) -> Result<StreamOutput, CtrlError> {
        let Some(pos) = self.slots.iter().position(|s| s.id == tenant) else {
            return Err(CtrlError::UnknownTenant(tenant));
        };
        let unit_id = self.slots[pos].unit;
        let upos = self
            .units
            .iter()
            .position(|u| u.id == unit_id)
            .expect("slot without unit");
        let out = if self.units[upos].members.len() > 1 {
            // Fused member: snapshot-flush the shared partition (live
            // state untouched) and finalize an engine clone against it.
            self.frame.clear();
            self.switch.snapshot_into(unit_id, &mut self.frame);
            let events: Vec<TaggedEvent> = self.frame.drain(..).collect();
            let out = self.nic.snapshot_detach(tenant, events)?;
            self.units[upos].members.retain(|&m| m != tenant);
            out
        } else {
            // Sole member: drain the switch partition so in-flight batched
            // records reach the NIC ahead of the detach marker.
            self.frame.clear();
            self.switch.detach_into(unit_id, &mut self.frame);
            self.nic.push_all(self.frame.drain(..))?;
            let out = self.nic.detach(tenant)?;
            self.units.remove(upos);
            out
        };
        self.slots.remove(pos);
        self.epoch += 1;
        Ok(out)
    }

    /// Feeds one packet through the shared filter table into every
    /// matching unit's partition and on to the NIC shards.
    pub fn push(&mut self, p: &PacketRecord) -> Result<(), CtrlError> {
        self.pushed += 1;
        self.frame.clear();
        self.switch.process_into(p, &mut self.frame);
        self.nic
            .push_all(self.frame.drain(..))
            .map_err(CtrlError::Nic)
    }

    /// Flushes every unit partition, drains the shards, and returns each
    /// remaining tenant's isolated output in attach order.
    pub fn finish(mut self) -> Result<Vec<TenantRun>, CtrlError> {
        self.frame.clear();
        self.switch.flush_into(&mut self.frame);
        self.nic.push_all(self.frame.drain(..))?;
        let outs = self.nic.finish()?;
        Ok(outs
            .into_iter()
            .map(|(id, output)| {
                let name = self
                    .slots
                    .iter()
                    .find(|s| s.id == id)
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|| id.to_string());
                TenantRun { id, name, output }
            })
            .collect())
    }

    /// Runs the per-policy deployment gate and models the demand.
    fn gate(&self, spec: &TenantSpec) -> Result<TenantDemand, AdmissionError> {
        let compiled = superfe_core::deploy::gate(&spec.policy, &spec.cfg).map_err(|e| {
            AdmissionError::Policy {
                tenant: spec.name.clone(),
                source: e,
            }
        })?;
        Ok(TenantDemand::new(compiled, spec.cfg.cache))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_core::analyze::AnalyzeConfig;
    use superfe_core::StreamingPipeline;
    use superfe_policy::dsl::parse;

    fn spec(name: &str, src: &str) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            policy: parse(src).unwrap(),
            cfg: SuperFeConfig::default(),
        }
    }

    fn host_sum() -> TenantSpec {
        spec(
            "host-sum",
            "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        )
    }

    fn host_sum_renamed() -> TenantSpec {
        spec(
            "host-sum-b",
            "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        )
    }

    fn flow_stats() -> TenantSpec {
        spec(
            "flow-stats",
            "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n\
             .reduce(size, [f_mean, f_max])\n.collect(flow)",
        )
    }

    fn packets(n: u64) -> impl Iterator<Item = PacketRecord> {
        (0..n).map(|i| {
            if i % 5 == 0 {
                PacketRecord::udp(i * 700, 90, (i % 11 + 1) as u32, 53, 4, 53)
            } else {
                PacketRecord::tcp(i * 700, 400, (i % 11 + 1) as u32, 1500, 4, 443)
            }
        })
    }

    fn solo(ts: &TenantSpec, n: u64, workers: usize) -> superfe_core::Extraction {
        let mut fe = StreamingPipeline::with_config(&ts.policy, ts.cfg, workers).unwrap();
        for p in packets(n) {
            fe.push(&p).unwrap();
        }
        fe.finish().unwrap()
    }

    #[test]
    fn plane_runs_two_tenants_isolated() {
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&flow_stats(), None).unwrap();
        assert_ne!(a, b);
        assert_eq!(plane.epoch(), 2);
        assert_eq!(plane.units().len(), 2, "distinct policies never fuse");
        for p in packets(900) {
            plane.push(&p).unwrap();
        }
        assert!(plane.tenant_switch_stats(a).unwrap().pkts_in == 900);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].name, "host-sum");
        let solo_a = solo(&host_sum(), 900, 2);
        let solo_b = solo(&flow_stats(), 900, 2);
        assert_eq!(runs[0].output.group_vectors, solo_a.group_vectors);
        assert_eq!(runs[1].output.group_vectors, solo_b.group_vectors);
    }

    #[test]
    fn detach_returns_isolated_output_mid_stream() {
        let mut plane = CtrlPlane::new(4, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&flow_stats(), None).unwrap();
        let mut detached = None;
        for (i, p) in packets(1200).enumerate() {
            if i == 600 {
                detached = Some(plane.detach(b).unwrap());
                assert_eq!(plane.tenants().len(), 1);
            }
            plane.push(&p).unwrap();
        }
        assert!(plane.detach(b).is_err(), "double detach is refused");
        let gone = detached.unwrap();
        assert!(gone.stats.records > 0);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].id, a);
        // Survivor unaffected by the mid-stream epoch.
        let solo_a = solo(&host_sum(), 1200, 4);
        assert_eq!(runs[0].output.group_vectors, solo_a.group_vectors);
    }

    #[test]
    fn equivalent_tenants_fuse_and_demux_bitwise() {
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        assert!(plane.fusion_enabled());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&host_sum_renamed(), None).unwrap();
        let c = plane.attach(&flow_stats(), None).unwrap();
        assert_eq!(plane.tenants().len(), 3);
        assert_eq!(
            plane.units(),
            vec![(a, 2), (c, 1)],
            "equivalent pair shares one unit"
        );
        for p in packets(900) {
            plane.push(&p).unwrap();
        }
        // Fused members read the shared unit's counters.
        assert_eq!(plane.tenant_switch_stats(b).unwrap().pkts_in, 900);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 3);
        let solo_h = solo(&host_sum(), 900, 2);
        let solo_f = solo(&flow_stats(), 900, 2);
        for run in &runs[..2] {
            assert_eq!(run.output.group_vectors, solo_h.group_vectors);
            assert_eq!(run.output.packet_vectors, solo_h.packet_vectors);
        }
        assert_eq!(runs[2].output.group_vectors, solo_f.group_vectors);
    }

    #[test]
    fn fused_member_detach_is_bitwise_solo_and_spares_survivor() {
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&host_sum_renamed(), None).unwrap();
        assert_eq!(plane.units(), vec![(a, 2)]);
        let mut detached = None;
        for (i, p) in packets(1200).enumerate() {
            if i == 600 {
                // Detach the unit's *owner* — the unit survives under its
                // id with the joined member as sole occupant.
                detached = Some(plane.detach(a).unwrap());
                assert_eq!(plane.units(), vec![(a, 1)]);
            }
            plane.push(&p).unwrap();
        }
        let gone = detached.unwrap();
        let solo_half = solo(&host_sum(), 600, 2);
        assert_eq!(gone.group_vectors, solo_half.group_vectors);
        assert_eq!(gone.packet_vectors, solo_half.packet_vectors);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].id, b);
        let solo_full = solo(&host_sum(), 1200, 2);
        assert_eq!(runs[0].output.group_vectors, solo_full.group_vectors);
    }

    #[test]
    fn late_or_unfused_attach_gets_its_own_unit() {
        // Fusion is position-gated: once the stream has moved past the
        // unit's attach point, an equivalent candidate gets fresh hardware
        // (the shared plan would owe it history it must not see).
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        plane.attach(&host_sum(), None).unwrap();
        for p in packets(100) {
            plane.push(&p).unwrap();
        }
        plane.attach(&host_sum_renamed(), None).unwrap();
        assert_eq!(plane.units().len(), 2);
        plane.finish().unwrap();

        // And with fusion disabled, even position-aligned equivalents
        // stay separate.
        let mut plain = CtrlPlane::without_fusion(1, AnalyzeConfig::default());
        assert!(!plain.fusion_enabled());
        plain.attach(&host_sum(), None).unwrap();
        plain.attach(&host_sum_renamed(), None).unwrap();
        assert_eq!(plain.units().len(), 2);
        plain.finish().unwrap();
    }

    #[test]
    fn admission_check_surfaces_fusion_headroom() {
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        plane.attach(&host_sum(), None).unwrap();
        let report = plane.admission_check(&host_sum_renamed()).unwrap();
        let note = report
            .warnings
            .iter()
            .find(|d| d.code == codes::FUSION_HEADROOM)
            .expect("fusable candidate must surface SF0703 headroom");
        assert!(note.message.contains("zero marginal demand"), "{note:?}");
        // A non-fusable candidate against a non-shared set gets no note.
        let report = plane.admission_check(&flow_stats()).unwrap();
        assert!(!report
            .warnings
            .iter()
            .any(|d| d.code == codes::FUSION_HEADROOM));
        plane.finish().unwrap();
    }

    #[test]
    fn infeasible_policy_is_rejected_at_the_gate() {
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        let mut bad = host_sum();
        bad.cfg.cache.short_count = 4_000_000;
        match plane.attach(&bad, None) {
            Err(CtrlError::Admission(AdmissionError::Policy { tenant, .. })) => {
                assert_eq!(tenant, "host-sum");
            }
            other => panic!("expected Policy rejection, got {other:?}"),
        }
        assert_eq!(plane.epoch(), 0);
        plane.finish().unwrap();
    }

    #[test]
    fn composed_overload_is_rejected_with_binding_resource() {
        // Individually feasible, mutually *distinct* tenants (a filter
        // constant keeps their canonical hashes apart, so fusion cannot
        // deduplicate them) whose composition blows the sALU budget: keep
        // attaching until the controller says no.
        let kitsune = |i: usize| {
            spec(
                &format!("kitsune-{i}"),
                &format!(
                    "pktstream\n.filter(size > {i})\n.groupby(socket)\n\
                     .map(ipt, tstamp, f_ipt)\n\
                     .reduce(size, [f_mean, f_var])\n.collect(socket)\n\
                     .groupby(channel)\n.reduce(size, [f_mag, f_pcc])\n.collect(channel)\n\
                     .groupby(host)\n.reduce(size, [f_mean])\n.collect(host)"
                ),
            )
        };
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        let mut rejected = None;
        for i in 0..16 {
            match plane.attach(&kitsune(i), None) {
                Ok(_) => {}
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            plane.units().len(),
            plane.tenants().len(),
            "distinct filters must not fuse"
        );
        match rejected.expect("a Tofino cannot host 16 Kitsune tenants") {
            CtrlError::Admission(AdmissionError::Budget { resource, .. }) => {
                // The plane keeps running for the admitted tenants.
                assert!(!resource.name().is_empty());
            }
            other => panic!("expected Budget rejection, got {other:?}"),
        }
        assert!(!plane.tenants().is_empty());
        for p in packets(100) {
            plane.push(&p).unwrap();
        }
        plane.finish().unwrap();
    }
}
