//! The control plane: N admitted policies live on one shared data path.
//!
//! [`CtrlPlane`] owns the shared switch
//! ([`SharedSwitch`](superfe_switch::tenant::SharedSwitch)) and the shared
//! streaming NIC ([`SharedStreamingNic`](superfe_nic::SharedStreamingNic)),
//! and sequences reconfiguration in **epochs**:
//!
//! 1. [`CtrlPlane::attach`] gates the candidate policy (optimize → compile
//!    → static analysis, the same `superfe_core::deploy::gate` every solo
//!    path uses), then consults the SF07xx cross-policy equivalence
//!    analysis (`superfe_policy::analyze::equiv`): if the candidate is
//!    provably equivalent to an already-deployed policy — same canonical
//!    hash, same deployment config, proven value-range match, and the
//!    shared plan still at stream position zero — it **fuses**, joining
//!    the existing execution unit's demux fan-out with zero marginal
//!    hardware demand. Otherwise its demand composes with the admitted
//!    set through the admission controller before the plane installs a
//!    new filter entry, cache partition, and NIC engine set.
//! 2. [`CtrlPlane::detach`] picks the handshake by unit population: a
//!    unit's sole member drains its switch partition into the event
//!    stream and finalizes destructively; a member of a fused unit gets a
//!    **snapshot** detach — the partition is cloned and flushed
//!    non-destructively and the NIC finalizes a clone of the unit engine,
//!    so the departing member's output is bitwise what a solo detach
//!    would return while the surviving members' state is never touched.
//!
//! Below whole-plan fusion sits **SF08xx prefix sharing** (cross-tenant
//! CSE): when a candidate is *not* equivalent to any live plan but its
//! switch prefix — parse, groupby chain, filter conjunct set — hashes
//! equal to a live partition's and the SF08xx value certificate holds
//! ([`superfe_policy::analyze::share::certify_prefix`]), the candidate's
//! execution unit subscribes to that partition's event stream instead of
//! installing its own. Units then nest inside **groups**: a group is one
//! switch partition; each of its units is one NIC engine set with its own
//! map/reduce tail; fused tenants share a unit via demux. Prefix joins are
//! position-gated like fusion, and the partition's record layout is
//! widened to the canonical metadata union at join time (lossless: the
//! gate guarantees the partition is empty). Admission composes switch
//! demand once per group and NIC demand once per unit
//! ([`crate::admission::admit_composed`]).
//!
//! Untouched tenants lose or duplicate zero vectors across either
//! operation: their partitions, engines, and channels are never touched,
//! and the epoch markers travel in-band so they cannot reorder against
//! event frames. Fusion preserves the same contract through the demux
//! fan-out: every fused member receives its own copy of every vector
//! under its own egress numbering. Prefix sharing preserves it through
//! the soundness fact the certificate encodes: the MGPV event stream —
//! record content *and* eviction timing — is fully determined by the
//! shared prefix, so every unit observes exactly the stream its solo
//! partition would have produced.

use superfe_core::pipeline::SuperFeConfig;
use superfe_net::{Granularity, PacketRecord};
use superfe_nic::{SharedStreamingNic, StreamOutput, UnitPressure, VectorSink};
use superfe_policy::analyze::{codes, equiv, share as pshare, Diagnostic};
use superfe_policy::{NicProgram, Policy, SwitchProgram};
use superfe_switch::resources::{compose, model, SwitchResources};
use superfe_switch::tenant::{
    union_metadata, SharedSwitch, SharedSwitchStats, TaggedEvent, TenantId,
};
use superfe_switch::{MgpvStats, SwitchStats};

use crate::admission::{
    admit_composed, admit_composed_observed, AdmissionReport, StatePressure, TenantDemand,
};
use crate::error::{AdmissionError, CtrlError};

/// A policy a tenant asks to deploy.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (the bundled-app name or file stem).
    pub name: String,
    /// The policy itself.
    pub policy: Policy,
    /// Deployment configuration; `cfg.cache` is the tenant's cache quota.
    pub cfg: SuperFeConfig,
}

/// One live tenant and the execution unit serving it.
pub(crate) struct Slot {
    pub(crate) id: TenantId,
    pub(crate) name: String,
    pub(crate) unit: TenantId,
}

/// One deployed execution unit: a NIC engine set that one or more
/// SF07xx-equivalent tenants share, fed by the switch partition of the
/// group it belongs to.
pub(crate) struct Unit {
    pub(crate) id: TenantId,
    pub(crate) hash: u64,
    pub(crate) policy: Policy,
    pub(crate) cfg: SuperFeConfig,
    pub(crate) demand: TenantDemand,
    pub(crate) members: Vec<TenantId>,
    /// The prefix group (switch partition) whose event stream feeds this
    /// unit; equals `id` unless the unit joined via an SF08xx prefix
    /// share.
    pub(crate) group: TenantId,
    /// Stream position (packets pushed) when the unit attached; a
    /// candidate may only fuse while the plane is still at this position,
    /// otherwise the shared plan would owe the late member history.
    pub(crate) attach_pos: u64,
}

/// One deployed switch partition and the units subscribed to its event
/// stream. A group with more than one unit is an SF08xx prefix share: one
/// parse → groupby → filter pipeline and one MGPV cache serving several
/// per-tenant map/reduce tails.
pub(crate) struct Group {
    pub(crate) id: TenantId,
    /// The certified switch-prefix hash
    /// ([`pshare::PrefixForm::switch_prefix`]) every member agrees on.
    pub(crate) prefix: u64,
    /// The founding representative's policy — the certification anchor
    /// later candidates are checked against.
    pub(crate) policy: Policy,
    pub(crate) cfg: SuperFeConfig,
    /// Modeled demand of the partition under its current (union) record
    /// layout; recomputed when a join widens the layout.
    pub(crate) switch: SwitchResources,
    /// The granularity chain, compared structurally at join time as a
    /// belt-and-braces check behind the prefix hash.
    pub(crate) levels: Vec<Granularity>,
    /// Stream position when the partition attached; prefix joins are
    /// gated on the plane still being at this position, which also
    /// guarantees the partition is empty when its layout is widened.
    pub(crate) attach_pos: u64,
    pub(crate) units: Vec<TenantId>,
}

/// One tenant's final output at plane shutdown.
#[derive(Debug)]
pub struct TenantRun {
    /// The tenant id.
    pub id: TenantId,
    /// The tenant's display name.
    pub name: String,
    /// Its isolated extraction output.
    pub output: StreamOutput,
}

/// One live tenant's observed NIC state occupancy (see
/// [`CtrlPlane::state_occupancy`]).
#[derive(Clone, Debug)]
pub struct TenantOccupancy {
    /// The tenant id.
    pub tenant: TenantId,
    /// The tenant's display name.
    pub name: String,
    /// Live group population per granularity level of the tenant's
    /// execution unit (summed across NIC shards; fused members report
    /// their shared unit's population).
    pub groups_per_level: Vec<(Granularity, usize)>,
    /// Group inserts refused because the unit's DRAM overflow table was at
    /// its budget.
    pub overflow_drops: u64,
    /// Groups evicted by the unit's table budget policy.
    pub evicted_groups: u64,
}

/// The multi-tenant control plane over one shared switch + NIC.
pub struct CtrlPlane {
    pub(crate) analyze: superfe_core::analyze::AnalyzeConfig,
    pub(crate) switch: SharedSwitch,
    pub(crate) nic: SharedStreamingNic,
    pub(crate) slots: Vec<Slot>,
    pub(crate) units: Vec<Unit>,
    pub(crate) groups: Vec<Group>,
    pub(crate) fusion: bool,
    pub(crate) cse: bool,
    pub(crate) next_id: u16,
    pub(crate) frame: Vec<TaggedEvent>,
    pub(crate) epoch: u64,
    pub(crate) pushed: u64,
}

impl CtrlPlane {
    /// A plane with `workers` NIC shards and the given hardware model for
    /// admission (budget, NFP, expected group population, headroom), with
    /// analysis-certified cross-policy fusion and SF08xx prefix sharing
    /// enabled.
    pub fn new(workers: usize, analyze: superfe_core::analyze::AnalyzeConfig) -> Self {
        Self::build(workers, analyze, true, true)
    }

    /// Like [`CtrlPlane::new`] but with all cross-tenant sharing disabled
    /// — no SF07xx fusion and no SF08xx prefix sharing: every tenant gets
    /// its own partition and engines even when provably equivalent (the
    /// baseline the sharing benchmarks compare against).
    pub fn without_fusion(workers: usize, analyze: superfe_core::analyze::AnalyzeConfig) -> Self {
        Self::build(workers, analyze, false, false)
    }

    /// Like [`CtrlPlane::new`] but with only SF08xx prefix sharing
    /// disabled: provably-equivalent whole plans still fuse, but tenants
    /// that merely share a switch prefix get separate partitions.
    pub fn without_cse(workers: usize, analyze: superfe_core::analyze::AnalyzeConfig) -> Self {
        Self::build(workers, analyze, true, false)
    }

    pub(crate) fn build(
        workers: usize,
        analyze: superfe_core::analyze::AnalyzeConfig,
        fusion: bool,
        cse: bool,
    ) -> Self {
        CtrlPlane {
            analyze,
            switch: SharedSwitch::new(),
            nic: SharedStreamingNic::new(workers),
            slots: Vec::new(),
            units: Vec::new(),
            groups: Vec::new(),
            fusion,
            cse,
            next_id: 0,
            frame: Vec::new(),
            epoch: 0,
            pushed: 0,
        }
    }

    /// Number of NIC shards.
    pub fn workers(&self) -> usize {
        self.nic.workers()
    }

    /// Sets the group-table budget (DRAM cap + eviction policy) applied to
    /// every tenant attached after this call — how the CLI pins
    /// `RandomWay` to an explicit `--evict-seed` so eviction sequences are
    /// reproducible run to run.
    pub fn set_table_budget(&mut self, budget: superfe_nic::TableBudget) {
        self.nic.set_table_budget(budget);
    }

    /// Whether analysis-certified cross-policy fusion is enabled.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion
    }

    /// Whether SF08xx cross-tenant prefix sharing is enabled.
    pub fn cse_enabled(&self) -> bool {
        self.cse
    }

    /// Completed reconfiguration epochs (each attach/detach is one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Packets pushed through the plane so far. A plane restored from a
    /// snapshot resumes at the saved count, so a caller replaying a
    /// deterministic trace knows exactly where to pick up.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Live tenants in attach order.
    pub fn tenants(&self) -> Vec<(TenantId, &str)> {
        self.slots.iter().map(|s| (s.id, s.name.as_str())).collect()
    }

    /// Live execution units in creation order, each with its member count
    /// (fused units serve more than one tenant).
    pub fn units(&self) -> Vec<(TenantId, usize)> {
        self.units.iter().map(|u| (u.id, u.members.len())).collect()
    }

    /// Live switch partitions in creation order, each with its unit count
    /// (SF08xx prefix-shared partitions feed more than one unit).
    pub fn groups(&self) -> Vec<(TenantId, usize)> {
        self.groups.iter().map(|g| (g.id, g.units.len())).collect()
    }

    /// Link-level counters of the shared switch.
    pub fn switch_stats(&self) -> &SharedSwitchStats {
        self.switch.stats()
    }

    /// Per-tenant switch link counters. For a fused or prefix-shared
    /// tenant these are the shared partition's counters: subscribers of
    /// one partition see one stream.
    pub fn tenant_switch_stats(&self, tenant: TenantId) -> Option<&SwitchStats> {
        self.switch.tenant_stats(self.group_of(tenant)?)
    }

    /// Per-tenant cache counters (the shared partition's, when shared).
    pub fn tenant_cache_stats(&self, tenant: TenantId) -> Option<MgpvStats> {
        self.switch.tenant_cache_stats(self.group_of(tenant)?)
    }

    /// The live state-pressure summary for admission: observed per-level
    /// group populations in plane unit order (the order admission sees NIC
    /// programs in). Synchronizes with every shard, so the observation is
    /// not stale.
    fn live_pressure(&mut self) -> Result<StatePressure, CtrlError> {
        let raw = self.nic.state_pressure()?;
        let per_unit = self
            .units
            .iter()
            .map(|u| {
                raw.iter()
                    .find(|p| p.unit == u.id)
                    .map(|p| p.groups_per_level.iter().map(|&(_, n)| n).collect())
                    .unwrap_or_default()
            })
            .collect();
        Ok(StatePressure { per_unit })
    }

    /// Observed NIC state occupancy per live tenant, in attach order.
    /// Fused members report their shared unit's population; the counters
    /// also surface overflow drops and budget evictions so operators can
    /// see when a tenant is running into its memory budget.
    pub fn state_occupancy(&mut self) -> Result<Vec<TenantOccupancy>, CtrlError> {
        let raw: Vec<UnitPressure> = self.nic.state_pressure()?;
        Ok(self
            .slots
            .iter()
            .map(|s| {
                let p = raw.iter().find(|p| p.unit == s.unit);
                TenantOccupancy {
                    tenant: s.id,
                    name: s.name.clone(),
                    groups_per_level: p.map(|p| p.groups_per_level.clone()).unwrap_or_default(),
                    overflow_drops: p.map_or(0, |p| p.overflow_drops),
                    evicted_groups: p.map_or(0, |p| p.evicted_groups),
                }
            })
            .collect())
    }

    /// The execution unit serving `tenant`.
    fn unit_of(&self, tenant: TenantId) -> Option<TenantId> {
        self.slots.iter().find(|s| s.id == tenant).map(|s| s.unit)
    }

    /// The switch partition feeding `tenant`'s unit.
    fn group_of(&self, tenant: TenantId) -> Option<TenantId> {
        let unit = self.unit_of(tenant)?;
        self.units.iter().find(|u| u.id == unit).map(|u| u.group)
    }

    /// The unit index `spec` may fuse into, per the SF07xx legality rule:
    /// equal canonical hash, identical deployment config, the unit still
    /// at the candidate's stream position, and semantic equivalence
    /// (value ranges, units, saturation) proven against the
    /// representative.
    fn fusion_target(&self, spec: &TenantSpec, hash: u64) -> Option<usize> {
        if !self.fusion {
            return None;
        }
        let vc = self.analyze.value_config();
        self.units.iter().position(|u| {
            u.hash == hash
                && u.cfg == spec.cfg
                && u.attach_pos == self.pushed
                && equiv::check_equivalence(&u.policy, &spec.policy, &vc).is_ok()
        })
    }

    /// The group index whose switch partition `spec` may subscribe to,
    /// per the SF08xx legality rule: equal switch-prefix hash, identical
    /// deployment config (the cache quota and mode fully determine MGPV
    /// behavior), structurally equal granularity chain, the partition
    /// still at the candidate's stream position, and the value
    /// certificate ([`pshare::certify_prefix`]) proven against the
    /// group's founding representative.
    fn prefix_target(
        &self,
        spec: &TenantSpec,
        demand: &TenantDemand,
        prefix: u64,
    ) -> Option<usize> {
        if !self.cse {
            return None;
        }
        let vc = self.analyze.value_config();
        self.groups.iter().position(|g| {
            g.prefix == prefix
                && g.cfg == spec.cfg
                && g.attach_pos == self.pushed
                && g.levels == demand.compiled.switch.levels
                && pshare::certify_prefix(&g.policy, &spec.policy, &vc).is_ok()
        })
    }

    /// Models the demand of group `gpos`'s partition after widening its
    /// record layout to the canonical metadata union of every member
    /// program plus the candidate's.
    fn widened_usage(&self, gpos: usize, demand: &TenantDemand) -> SwitchResources {
        let gid = self.groups[gpos].id;
        let mut progs: Vec<&SwitchProgram> = self
            .units
            .iter()
            .filter(|u| u.group == gid)
            .map(|u| &u.demand.compiled.switch)
            .collect();
        progs.push(&demand.compiled.switch);
        let union = SwitchProgram {
            filter: demand.compiled.switch.filter.clone(),
            levels: demand.compiled.switch.levels.clone(),
            metadata: union_metadata(&progs),
        };
        model(&union, &self.groups[gpos].cfg.cache)
    }

    /// Dry-runs admission for `spec` against the currently-admitted set
    /// without deploying anything. The verdict's warnings carry an SF0703
    /// note when fusion changes the composed demand — either because the
    /// candidate itself would fuse (zero marginal demand) or because the
    /// admitted set already shares plans.
    pub fn admission_check(&self, spec: &TenantSpec) -> Result<AdmissionReport, AdmissionError> {
        let demand = self.gate(spec)?;
        let vc = self.analyze.value_config();
        let hash = equiv::canonical_hash(&spec.policy, &vc);
        let fused_into = self.fusion_target(spec, hash);
        let shared_into = if fused_into.is_none() {
            let prefix = pshare::prefix_form(&spec.policy, &vc).switch_prefix;
            self.prefix_target(spec, &demand, prefix)
        } else {
            None
        };
        let mut switch: Vec<SwitchResources> = self.groups.iter().map(|g| g.switch).collect();
        let mut nics: Vec<&NicProgram> =
            self.units.iter().map(|u| &u.demand.compiled.nic).collect();
        if let Some(gpos) = shared_into {
            switch[gpos] = self.widened_usage(gpos, &demand);
            nics.push(&demand.compiled.nic);
        } else if fused_into.is_none() {
            switch.push(demand.switch);
            nics.push(&demand.compiled.nic);
        }
        let mut report = admit_composed(&self.analyze, &switch, &nics)?;
        // Surface the fusion headroom: what the same tenant set would cost
        // with one partition + engine set per tenant.
        let mut unfused: Vec<SwitchResources> = self
            .slots
            .iter()
            .filter_map(|s| {
                self.units
                    .iter()
                    .find(|u| u.id == s.unit)
                    .map(|u| u.demand.switch)
            })
            .collect();
        unfused.push(demand.switch);
        if unfused.len() > nics.len() {
            let solo = compose(&unfused);
            let mut note = format!(
                "cross-policy fusion serves {} tenants with {} plans: composed switch demand \
                 {} sALUs / {} tables (unfused: {} sALUs / {} tables)",
                unfused.len(),
                nics.len(),
                report.switch.salus,
                report.switch.tables,
                solo.salus,
                solo.tables,
            );
            if let Some(pos) = fused_into {
                note.push_str(&format!(
                    "; candidate is SF07xx-equivalent to unit {} and adds zero marginal demand",
                    self.units[pos].id
                ));
            }
            report
                .warnings
                .push(Diagnostic::note(codes::FUSION_HEADROOM, note));
        }
        // Surface the prefix-sharing saving: units vs the partitions that
        // feed them.
        if switch.len() < nics.len() {
            let mut note = format!(
                "prefix sharing serves {} execution units on {} switch partition(s)",
                nics.len(),
                switch.len(),
            );
            if let Some(gpos) = shared_into {
                note.push_str(&format!(
                    "; candidate shares partition {}'s certified switch prefix and its marginal \
                     demand is NIC-only",
                    self.groups[gpos].id
                ));
            }
            report
                .warnings
                .push(Diagnostic::note(codes::SHARE_SAVING, note));
        }
        Ok(report)
    }

    /// Admits and deploys `spec` at the current epoch. `sinks`, when given,
    /// must hold one [`VectorSink`] per NIC shard (the tenant's private
    /// egress — e.g. its detector's serving sinks).
    ///
    /// Packets pushed before this call never reach the new tenant; packets
    /// pushed after all do. Other tenants are unaffected. When the SF07xx
    /// analysis certifies the candidate equivalent to a live unit (see
    /// [`CtrlPlane::admission_check`]), the tenant joins that unit's demux
    /// fan-out instead of consuming new hardware; its observable output is
    /// bitwise identical either way.
    pub fn attach(
        &mut self,
        spec: &TenantSpec,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<TenantId, CtrlError> {
        let demand = self.gate(spec)?;
        let vc = self.analyze.value_config();
        let hash = equiv::canonical_hash(&spec.policy, &vc);
        if let Some(pos) = self.fusion_target(spec, hash) {
            let unit_id = self.units[pos].id;
            let id = TenantId(self.next_id);
            self.nic.join(unit_id, id, sinks)?;
            self.next_id = self.next_id.checked_add(1).expect("tenant id space");
            self.units[pos].members.push(id);
            self.slots.push(Slot {
                id,
                name: spec.name.clone(),
                unit: unit_id,
            });
            self.epoch += 1;
            return Ok(id);
        }
        let prefix = pshare::prefix_form(&spec.policy, &vc).switch_prefix;
        if let Some(gpos) = self.prefix_target(spec, &demand, prefix) {
            return self.attach_to_group(spec, demand, hash, gpos, sinks);
        }
        // Admission with population feedback: already-loaded units are
        // modeled at their observed group population, the candidate at the
        // static worst-case estimate.
        let pressure = self.live_pressure()?;
        let mut switch: Vec<SwitchResources> = self.groups.iter().map(|g| g.switch).collect();
        switch.push(demand.switch);
        let mut nics: Vec<&NicProgram> =
            self.units.iter().map(|u| &u.demand.compiled.nic).collect();
        nics.push(&demand.compiled.nic);
        admit_composed_observed(&self.analyze, &switch, &nics, &pressure)?;
        let id = TenantId(self.next_id);
        self.next_id = self.next_id.checked_add(1).expect("tenant id space");
        if !self.switch.attach(
            id,
            demand.compiled.switch.clone(),
            spec.cfg.cache,
            spec.cfg.mode,
        ) {
            return Err(CtrlError::Switch(
                "degenerate cache configuration for tenant partition".into(),
            ));
        }
        if let Err(e) = self
            .nic
            .attach(id, &demand.compiled, spec.cfg.cache.fg_table_size, sinks)
        {
            // Roll the switch half back so the plane stays consistent.
            let mut discard = Vec::new();
            self.switch.detach_into(id, &mut discard);
            return Err(CtrlError::Nic(e));
        }
        self.groups.push(Group {
            id,
            prefix,
            policy: spec.policy.clone(),
            cfg: spec.cfg,
            switch: demand.switch,
            levels: demand.compiled.switch.levels.clone(),
            attach_pos: self.pushed,
            units: vec![id],
        });
        self.units.push(Unit {
            id,
            hash,
            policy: spec.policy.clone(),
            cfg: spec.cfg,
            demand,
            members: vec![id],
            group: id,
            attach_pos: self.pushed,
        });
        self.slots.push(Slot {
            id,
            name: spec.name.clone(),
            unit: id,
        });
        self.epoch += 1;
        Ok(id)
    }

    /// Subscribes a new execution unit for `spec` to group `gpos`'s
    /// switch partition (the SF08xx prefix-share attach path). The
    /// position gate guarantees the partition is empty, so re-attaching
    /// it with the widened canonical-union record layout is lossless.
    fn attach_to_group(
        &mut self,
        spec: &TenantSpec,
        demand: TenantDemand,
        hash: u64,
        gpos: usize,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<TenantId, CtrlError> {
        let gid = self.groups[gpos].id;
        // Admission: the candidate's marginal demand is its NIC engine
        // set plus whatever the widened record layout costs the shared
        // partition. Existing units are modeled at their observed group
        // population.
        let pressure = self.live_pressure()?;
        let widened = self.widened_usage(gpos, &demand);
        let mut switch: Vec<SwitchResources> = self.groups.iter().map(|g| g.switch).collect();
        switch[gpos] = widened;
        let mut nics: Vec<&NicProgram> =
            self.units.iter().map(|u| &u.demand.compiled.nic).collect();
        nics.push(&demand.compiled.nic);
        admit_composed_observed(&self.analyze, &switch, &nics, &pressure)?;
        let id = TenantId(self.next_id);
        // NIC first — it is the fallible half; the switch re-attach below
        // cannot fail for a configuration the group already validated.
        self.nic.attach_to_group(
            gid,
            id,
            &demand.compiled,
            spec.cfg.cache.fg_table_size,
            sinks,
        )?;
        self.next_id = self.next_id.checked_add(1).expect("tenant id space");
        // Swap the partition in for one with the union record layout. The
        // position gate makes this lossless: nothing has been routed
        // since the group attached, so the partition holds no state.
        self.frame.clear();
        self.switch.detach_into(gid, &mut self.frame);
        debug_assert!(
            self.frame.is_empty(),
            "position-gated partition must be empty at a prefix join"
        );
        self.frame.clear();
        let mut progs: Vec<&SwitchProgram> = self
            .units
            .iter()
            .filter(|u| u.group == gid)
            .map(|u| &u.demand.compiled.switch)
            .collect();
        progs.push(&demand.compiled.switch);
        let ok = self
            .switch
            .attach_shared(gid, &progs, spec.cfg.cache, spec.cfg.mode);
        debug_assert!(ok, "re-attaching a validated partition cannot fail");
        self.groups[gpos].switch = widened;
        self.groups[gpos].units.push(id);
        self.units.push(Unit {
            id,
            hash,
            policy: spec.policy.clone(),
            cfg: spec.cfg,
            demand,
            members: vec![id],
            group: gid,
            attach_pos: self.pushed,
        });
        self.slots.push(Slot {
            id,
            name: spec.name.clone(),
            unit: id,
        });
        self.epoch += 1;
        Ok(id)
    }

    /// Detaches `tenant` at the current epoch, returning its complete
    /// isolated output. Blocks until every NIC shard acked the epoch.
    ///
    /// The handshake is picked by population, innermost shared layer
    /// first: a member of a fused unit is finalized against a snapshot of
    /// the shared engine state; the sole member of a unit whose partition
    /// feeds *other* units finalizes its own engines against a partition
    /// snapshot (the partition survives for the other subscribers); the
    /// sole member of a partition's sole unit drains destructively. In
    /// every case the survivors are bitwise unaffected.
    pub fn detach(&mut self, tenant: TenantId) -> Result<StreamOutput, CtrlError> {
        let Some(pos) = self.slots.iter().position(|s| s.id == tenant) else {
            return Err(CtrlError::UnknownTenant(tenant));
        };
        let unit_id = self.slots[pos].unit;
        let upos = self
            .units
            .iter()
            .position(|u| u.id == unit_id)
            .expect("slot without unit");
        let gid = self.units[upos].group;
        let gpos = self
            .groups
            .iter()
            .position(|g| g.id == gid)
            .expect("unit without group");
        let out = if self.units[upos].members.len() > 1 {
            // Fused member: snapshot-flush the shared partition (live
            // state untouched) and finalize an engine clone against it.
            self.frame.clear();
            self.switch.snapshot_into(gid, &mut self.frame);
            let events: Vec<TaggedEvent> = self.frame.drain(..).collect();
            let out = self.nic.snapshot_detach(tenant, events)?;
            self.units[upos].members.retain(|&m| m != tenant);
            out
        } else if self.groups[gpos].units.len() > 1 {
            // Sole unit member, but the partition feeds other units: the
            // unit finalizes against a partition snapshot and the
            // partition keeps serving the remaining subscribers.
            self.frame.clear();
            self.switch.snapshot_into(gid, &mut self.frame);
            let events: Vec<TaggedEvent> = self.frame.drain(..).collect();
            let out = self.nic.prefix_detach(tenant, events)?;
            self.groups[gpos].units.retain(|&u| u != unit_id);
            self.units.remove(upos);
            out
        } else {
            // Sole member of the partition's sole unit: drain the switch
            // partition so in-flight batched records reach the NIC ahead
            // of the detach marker.
            self.frame.clear();
            self.switch.detach_into(gid, &mut self.frame);
            self.nic.push_all(self.frame.drain(..))?;
            let out = self.nic.detach(tenant)?;
            self.units.remove(upos);
            self.groups.remove(gpos);
            out
        };
        self.slots.remove(pos);
        self.epoch += 1;
        Ok(out)
    }

    /// Feeds one packet through the shared filter table into every
    /// matching unit's partition and on to the NIC shards.
    pub fn push(&mut self, p: &PacketRecord) -> Result<(), CtrlError> {
        self.pushed += 1;
        self.frame.clear();
        self.switch.process_into(p, &mut self.frame);
        self.nic
            .push_all(self.frame.drain(..))
            .map_err(CtrlError::Nic)
    }

    /// Flushes every unit partition, drains the shards, and returns each
    /// remaining tenant's isolated output in attach order.
    pub fn finish(mut self) -> Result<Vec<TenantRun>, CtrlError> {
        self.frame.clear();
        self.switch.flush_into(&mut self.frame);
        self.nic.push_all(self.frame.drain(..))?;
        let outs = self.nic.finish()?;
        Ok(outs
            .into_iter()
            .map(|(id, output)| {
                let name = self
                    .slots
                    .iter()
                    .find(|s| s.id == id)
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|| id.to_string());
                TenantRun { id, name, output }
            })
            .collect())
    }

    /// Runs the per-policy deployment gate and models the demand.
    pub(crate) fn gate(&self, spec: &TenantSpec) -> Result<TenantDemand, AdmissionError> {
        let compiled = superfe_core::deploy::gate(&spec.policy, &spec.cfg).map_err(|e| {
            AdmissionError::Policy {
                tenant: spec.name.clone(),
                source: e,
            }
        })?;
        Ok(TenantDemand::new(compiled, spec.cfg.cache))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_core::analyze::AnalyzeConfig;
    use superfe_core::StreamingPipeline;
    use superfe_policy::dsl::parse;

    fn spec(name: &str, src: &str) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            policy: parse(src).unwrap(),
            cfg: SuperFeConfig::default(),
        }
    }

    fn host_sum() -> TenantSpec {
        spec(
            "host-sum",
            "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        )
    }

    fn host_sum_renamed() -> TenantSpec {
        spec(
            "host-sum-b",
            "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        )
    }

    fn flow_stats() -> TenantSpec {
        spec(
            "flow-stats",
            "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n\
             .reduce(size, [f_mean, f_max])\n.collect(flow)",
        )
    }

    fn packets(n: u64) -> impl Iterator<Item = PacketRecord> {
        (0..n).map(|i| {
            if i % 5 == 0 {
                PacketRecord::udp(i * 700, 90, (i % 11 + 1) as u32, 53, 4, 53)
            } else {
                PacketRecord::tcp(i * 700, 400, (i % 11 + 1) as u32, 1500, 4, 443)
            }
        })
    }

    fn solo(ts: &TenantSpec, n: u64, workers: usize) -> superfe_core::Extraction {
        let mut fe = StreamingPipeline::with_config(&ts.policy, ts.cfg, workers).unwrap();
        for p in packets(n) {
            fe.push(&p).unwrap();
        }
        fe.finish().unwrap()
    }

    #[test]
    fn plane_runs_two_tenants_isolated() {
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&flow_stats(), None).unwrap();
        assert_ne!(a, b);
        assert_eq!(plane.epoch(), 2);
        assert_eq!(plane.units().len(), 2, "distinct policies never fuse");
        for p in packets(900) {
            plane.push(&p).unwrap();
        }
        assert!(plane.tenant_switch_stats(a).unwrap().pkts_in == 900);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].name, "host-sum");
        let solo_a = solo(&host_sum(), 900, 2);
        let solo_b = solo(&flow_stats(), 900, 2);
        assert_eq!(runs[0].output.group_vectors, solo_a.group_vectors);
        assert_eq!(runs[1].output.group_vectors, solo_b.group_vectors);
    }

    #[test]
    fn detach_returns_isolated_output_mid_stream() {
        let mut plane = CtrlPlane::new(4, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&flow_stats(), None).unwrap();
        let mut detached = None;
        for (i, p) in packets(1200).enumerate() {
            if i == 600 {
                detached = Some(plane.detach(b).unwrap());
                assert_eq!(plane.tenants().len(), 1);
            }
            plane.push(&p).unwrap();
        }
        assert!(plane.detach(b).is_err(), "double detach is refused");
        let gone = detached.unwrap();
        assert!(gone.stats.records > 0);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].id, a);
        // Survivor unaffected by the mid-stream epoch.
        let solo_a = solo(&host_sum(), 1200, 4);
        assert_eq!(runs[0].output.group_vectors, solo_a.group_vectors);
    }

    #[test]
    fn equivalent_tenants_fuse_and_demux_bitwise() {
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        assert!(plane.fusion_enabled());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&host_sum_renamed(), None).unwrap();
        let c = plane.attach(&flow_stats(), None).unwrap();
        assert_eq!(plane.tenants().len(), 3);
        assert_eq!(
            plane.units(),
            vec![(a, 2), (c, 1)],
            "equivalent pair shares one unit"
        );
        for p in packets(900) {
            plane.push(&p).unwrap();
        }
        // Fused members read the shared unit's counters.
        assert_eq!(plane.tenant_switch_stats(b).unwrap().pkts_in, 900);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 3);
        let solo_h = solo(&host_sum(), 900, 2);
        let solo_f = solo(&flow_stats(), 900, 2);
        for run in &runs[..2] {
            assert_eq!(run.output.group_vectors, solo_h.group_vectors);
            assert_eq!(run.output.packet_vectors, solo_h.packet_vectors);
        }
        assert_eq!(runs[2].output.group_vectors, solo_f.group_vectors);
    }

    #[test]
    fn fused_member_detach_is_bitwise_solo_and_spares_survivor() {
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&host_sum_renamed(), None).unwrap();
        assert_eq!(plane.units(), vec![(a, 2)]);
        let mut detached = None;
        for (i, p) in packets(1200).enumerate() {
            if i == 600 {
                // Detach the unit's *owner* — the unit survives under its
                // id with the joined member as sole occupant.
                detached = Some(plane.detach(a).unwrap());
                assert_eq!(plane.units(), vec![(a, 1)]);
            }
            plane.push(&p).unwrap();
        }
        let gone = detached.unwrap();
        let solo_half = solo(&host_sum(), 600, 2);
        assert_eq!(gone.group_vectors, solo_half.group_vectors);
        assert_eq!(gone.packet_vectors, solo_half.packet_vectors);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].id, b);
        let solo_full = solo(&host_sum(), 1200, 2);
        assert_eq!(runs[0].output.group_vectors, solo_full.group_vectors);
    }

    fn host_max() -> TenantSpec {
        spec(
            "host-max",
            "pktstream\n.groupby(host)\n.reduce(size, [f_max])\n.collect(host)",
        )
    }

    #[test]
    fn prefix_shared_tenants_run_bitwise_on_one_partition() {
        // host-sum and host-max are NOT SF07xx-equivalent (different
        // reduce tails) but share the parse → groupby(host) switch
        // prefix: one partition, two execution units.
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        assert!(plane.cse_enabled());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&host_max(), None).unwrap();
        let c = plane.attach(&flow_stats(), None).unwrap();
        assert_eq!(plane.units().len(), 3, "distinct tails keep their units");
        assert_eq!(
            plane.groups(),
            vec![(a, 2), (c, 1)],
            "prefix pair shares one partition"
        );
        for p in packets(900) {
            plane.push(&p).unwrap();
        }
        // Prefix-shared tenants read the shared partition's counters.
        assert_eq!(plane.tenant_switch_stats(b).unwrap().pkts_in, 900);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 3);
        let solo_s = solo(&host_sum(), 900, 2);
        let solo_m = solo(&host_max(), 900, 2);
        let solo_f = solo(&flow_stats(), 900, 2);
        assert_eq!(runs[0].output.group_vectors, solo_s.group_vectors);
        assert_eq!(runs[1].output.group_vectors, solo_m.group_vectors);
        assert_eq!(runs[2].output.group_vectors, solo_f.group_vectors);
    }

    #[test]
    fn prefix_member_detach_is_bitwise_and_spares_the_partition() {
        let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
        let a = plane.attach(&host_sum(), None).unwrap();
        let b = plane.attach(&host_max(), None).unwrap();
        assert_eq!(plane.groups(), vec![(a, 2)]);
        let mut detached = None;
        for (i, p) in packets(1200).enumerate() {
            if i == 600 {
                detached = Some(plane.detach(b).unwrap());
                // The partition survives for its remaining subscriber.
                assert_eq!(plane.groups(), vec![(a, 1)]);
                assert_eq!(plane.units().len(), 1);
            }
            plane.push(&p).unwrap();
        }
        let gone = detached.unwrap();
        let solo_half = solo(&host_max(), 600, 2);
        assert_eq!(gone.group_vectors, solo_half.group_vectors);
        assert_eq!(gone.packet_vectors, solo_half.packet_vectors);
        let runs = plane.finish().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].id, a);
        let solo_full = solo(&host_sum(), 1200, 2);
        assert_eq!(runs[0].output.group_vectors, solo_full.group_vectors);
    }

    #[test]
    fn without_cse_separates_partitions_but_still_fuses() {
        let mut plane = CtrlPlane::without_cse(1, AnalyzeConfig::default());
        assert!(plane.fusion_enabled());
        assert!(!plane.cse_enabled());
        let a = plane.attach(&host_sum(), None).unwrap();
        plane.attach(&host_max(), None).unwrap();
        plane.attach(&host_sum_renamed(), None).unwrap();
        // The prefix pair stays on separate partitions, but the
        // SF07xx-equivalent pair still fuses into one unit.
        assert_eq!(plane.groups().len(), 2);
        assert_eq!(plane.units().len(), 2);
        assert_eq!(plane.units()[0], (a, 2));
        plane.finish().unwrap();

        // without_fusion disables both layers of sharing.
        let mut plain = CtrlPlane::without_fusion(1, AnalyzeConfig::default());
        assert!(!plain.cse_enabled());
        plain.attach(&host_sum(), None).unwrap();
        plain.attach(&host_max(), None).unwrap();
        assert_eq!(plain.groups().len(), 2);
        plain.finish().unwrap();
    }

    #[test]
    fn admission_check_surfaces_prefix_saving() {
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        plane.attach(&host_sum(), None).unwrap();
        let report = plane.admission_check(&host_max()).unwrap();
        let note = report
            .warnings
            .iter()
            .find(|d| d.code == codes::SHARE_SAVING)
            .expect("prefix-sharing candidate must surface SF0803 saving");
        assert!(note.message.contains("NIC-only"), "{note:?}");
        assert!(
            !report
                .warnings
                .iter()
                .any(|d| d.code == codes::FUSION_HEADROOM),
            "a prefix share is not a fusion"
        );
        plane.finish().unwrap();
    }

    #[test]
    fn late_or_unfused_attach_gets_its_own_unit() {
        // Fusion is position-gated: once the stream has moved past the
        // unit's attach point, an equivalent candidate gets fresh hardware
        // (the shared plan would owe it history it must not see).
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        plane.attach(&host_sum(), None).unwrap();
        for p in packets(100) {
            plane.push(&p).unwrap();
        }
        plane.attach(&host_sum_renamed(), None).unwrap();
        assert_eq!(plane.units().len(), 2);
        plane.finish().unwrap();

        // And with fusion disabled, even position-aligned equivalents
        // stay separate.
        let mut plain = CtrlPlane::without_fusion(1, AnalyzeConfig::default());
        assert!(!plain.fusion_enabled());
        plain.attach(&host_sum(), None).unwrap();
        plain.attach(&host_sum_renamed(), None).unwrap();
        assert_eq!(plain.units().len(), 2);
        plain.finish().unwrap();
    }

    #[test]
    fn admission_check_surfaces_fusion_headroom() {
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        plane.attach(&host_sum(), None).unwrap();
        let report = plane.admission_check(&host_sum_renamed()).unwrap();
        let note = report
            .warnings
            .iter()
            .find(|d| d.code == codes::FUSION_HEADROOM)
            .expect("fusable candidate must surface SF0703 headroom");
        assert!(note.message.contains("zero marginal demand"), "{note:?}");
        // A non-fusable candidate against a non-shared set gets no note.
        let report = plane.admission_check(&flow_stats()).unwrap();
        assert!(!report
            .warnings
            .iter()
            .any(|d| d.code == codes::FUSION_HEADROOM));
        plane.finish().unwrap();
    }

    #[test]
    fn infeasible_policy_is_rejected_at_the_gate() {
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        let mut bad = host_sum();
        bad.cfg.cache.short_count = 4_000_000;
        match plane.attach(&bad, None) {
            Err(CtrlError::Admission(AdmissionError::Policy { tenant, .. })) => {
                assert_eq!(tenant, "host-sum");
            }
            other => panic!("expected Policy rejection, got {other:?}"),
        }
        assert_eq!(plane.epoch(), 0);
        plane.finish().unwrap();
    }

    #[test]
    fn composed_overload_is_rejected_with_binding_resource() {
        // Individually feasible, mutually *distinct* tenants (a filter
        // constant keeps their canonical hashes apart, so fusion cannot
        // deduplicate them) whose composition blows the sALU budget: keep
        // attaching until the controller says no.
        let kitsune = |i: usize| {
            spec(
                &format!("kitsune-{i}"),
                &format!(
                    "pktstream\n.filter(size > {i})\n.groupby(socket)\n\
                     .map(ipt, tstamp, f_ipt)\n\
                     .reduce(size, [f_mean, f_var])\n.collect(socket)\n\
                     .groupby(channel)\n.reduce(size, [f_mag, f_pcc])\n.collect(channel)\n\
                     .groupby(host)\n.reduce(size, [f_mean])\n.collect(host)"
                ),
            )
        };
        let mut plane = CtrlPlane::new(1, AnalyzeConfig::default());
        let mut rejected = None;
        for i in 0..16 {
            match plane.attach(&kitsune(i), None) {
                Ok(_) => {}
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            plane.units().len(),
            plane.tenants().len(),
            "distinct filters must not fuse"
        );
        match rejected.expect("a Tofino cannot host 16 Kitsune tenants") {
            CtrlError::Admission(AdmissionError::Budget { resource, .. }) => {
                // The plane keeps running for the admitted tenants.
                assert!(!resource.name().is_empty());
            }
            other => panic!("expected Budget rejection, got {other:?}"),
        }
        assert!(!plane.tenants().is_empty());
        for p in packets(100) {
            plane.push(&p).unwrap();
        }
        plane.finish().unwrap();
    }
}
