//! Live state snapshot and restore for the multi-tenant control plane.
//!
//! [`CtrlPlane::snapshot`] serializes everything a restarted plane needs to
//! resume mid-stream with **bitwise-identical** remaining output:
//!
//! - plane metadata (epoch, stream position, id allocator, sharing flags,
//!   worker count),
//! - the tenant topology — slots, execution units with their member
//!   rosters, and prefix groups — as *names and ids*, not policies,
//! - every switch partition's dynamic MGPV state
//!   ([`SharedSwitch::save_tenant_state`](superfe_switch::tenant::SharedSwitch::save_tenant_state)),
//! - every NIC unit's per-shard engine state, member egress sequence
//!   numbers, and accumulated per-packet vectors
//!   ([`SharedStreamingNic::dump_state`](superfe_nic::SharedStreamingNic::dump_state)),
//! - per-group events-routed counters (they gate late fusion/prefix
//!   joins, so they must survive).
//!
//! **Structure is rebuilt, not stored.** Policies are not serializable (and
//! a snapshot must not become an alternative deployment channel that skips
//! the admission gate), so [`CtrlPlane::restore`] is handed the original
//! [`TenantSpec`]s, replays each attach through the same compile/gate path,
//! and then transplants the dynamic state on top. Saved canonical hashes
//! and prefix hashes are checked against the recomputed ones, so feeding
//! the wrong spec file is rejected rather than silently producing drift.
//!
//! One re-seating rule makes replay total: a unit whose *founding* member
//! detached before the snapshot keeps running under the founder's id, but
//! on restore the unit (and, transitively, a group whose founding unit
//! detached) is re-keyed to its first surviving member. Ids are pure
//! internal routing labels — every cross-reference is renamed together and
//! per-member egress numbering is restored verbatim — so the re-seating is
//! not observable in any tenant's output. Slot (tenant) ids are always
//! preserved.

use superfe_core::analyze::AnalyzeConfig;
use superfe_net::snap::{StateReader, StateWriter};
use superfe_nic::{FeNic, FeatureVector, ShardUnitState, VectorSink};
use superfe_policy::analyze::{equiv, share as pshare};
use superfe_policy::SwitchProgram;
use superfe_switch::resources::model;
use superfe_switch::tenant::{union_metadata, TenantId};

use crate::error::CtrlError;
use crate::plane::{CtrlPlane, Group, Slot, TenantSpec, Unit};

/// Format version of plane snapshot bytes. Bumped on any layout change;
/// [`CtrlPlane::restore`] refuses other versions rather than guessing.
pub const SNAPSHOT_VERSION: u16 = 1;

const MAGIC: &[u8] = b"SFSN";

fn snap_err(msg: impl Into<String>) -> CtrlError {
    CtrlError::Snapshot(msg.into())
}

fn need<T>(v: Option<T>, what: &str) -> Result<T, CtrlError> {
    v.ok_or_else(|| snap_err(format!("truncated or corrupt snapshot: {what}")))
}

struct SlotMeta {
    id: u16,
    name: String,
    unit: u16,
}

struct UnitMeta {
    id: u16,
    hash: u64,
    attach_pos: u64,
    members: Vec<u16>,
}

struct GroupMeta {
    id: u16,
    prefix: u64,
    attach_pos: u64,
    units: Vec<u16>,
}

impl CtrlPlane {
    /// Serializes the plane's complete live state into versioned snapshot
    /// bytes. Non-destructive: shards are flushed and synchronized (the
    /// snapshot is a clean stream cut), then the plane keeps serving.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, CtrlError> {
        let dumps = self.nic.dump_state()?;
        let mut w = StateWriter::new();
        w.put_bytes(MAGIC);
        w.put_u16(SNAPSHOT_VERSION);
        // Meta.
        w.put_u32(self.nic.workers() as u32);
        w.put_bool(self.fusion);
        w.put_bool(self.cse);
        w.put_u16(self.next_id);
        w.put_u64(self.epoch);
        w.put_u64(self.pushed);
        // Topology: slots, units, groups — names and ids only.
        w.put_u16(self.slots.len() as u16);
        for s in &self.slots {
            w.put_u16(s.id.0);
            w.put_str(&s.name);
            w.put_u16(s.unit.0);
        }
        w.put_u16(self.units.len() as u16);
        for u in &self.units {
            w.put_u16(u.id.0);
            w.put_u64(u.hash);
            w.put_u16(u.group.0);
            w.put_u64(u.attach_pos);
            w.put_u16(u.members.len() as u16);
            for m in &u.members {
                w.put_u16(m.0);
            }
        }
        w.put_u16(self.groups.len() as u16);
        for g in &self.groups {
            w.put_u16(g.id.0);
            w.put_u64(g.prefix);
            w.put_u64(g.attach_pos);
            w.put_u16(g.units.len() as u16);
            for u in &g.units {
                w.put_u16(u.0);
            }
        }
        // Switch dynamic state: link counters + one section per partition.
        self.switch.save_stats(&mut w);
        for g in &self.groups {
            let mut ok = false;
            w.put_section(|w| ok = self.switch.save_tenant_state(g.id, w));
            if !ok {
                return Err(snap_err(format!(
                    "group {} has no switch partition to serialize",
                    g.id
                )));
            }
        }
        // NIC dynamic state: routed positions + per-unit shard dumps.
        let positions = self.nic.group_positions();
        w.put_u16(positions.len() as u16);
        for (g, routed) in &positions {
            w.put_u16(g.0);
            w.put_u64(*routed);
        }
        w.put_u16(dumps.len() as u16);
        for d in &dumps {
            w.put_u16(d.unit.0);
            w.put_u32(d.shards.len() as u32);
            for s in &d.shards {
                w.put_u32(s.shard as u32);
                w.put_section(|w| s.engine.save_state(w));
                w.put_u16(s.member_seqs.len() as u16);
                for (m, seq) in &s.member_seqs {
                    w.put_u16(m.0);
                    w.put_u64(*seq);
                }
                w.put_u32(s.pkts_accum.len() as u32);
                for v in &s.pkts_accum {
                    v.save_state(&mut w);
                }
            }
        }
        Ok(w.into_bytes())
    }

    /// Rebuilds a plane from snapshot `bytes`, replaying each saved
    /// tenant's attach from `specs` (matched by slot name) and then
    /// transplanting the saved dynamic state, so the restored plane's
    /// remaining output is bitwise what the snapshotted plane would have
    /// produced. `sinks` is consulted once per tenant name and must return
    /// one sink per NIC shard (or `None`) exactly as the original attach
    /// did.
    ///
    /// The worker count is taken from the snapshot — CG-key sharding is
    /// worker-count dependent, so resuming on different parallelism cannot
    /// be bitwise and is refused by construction.
    pub fn restore(
        analyze: AnalyzeConfig,
        specs: &[TenantSpec],
        bytes: &[u8],
        mut sinks: impl FnMut(&str) -> Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<CtrlPlane, CtrlError> {
        let mut r = StateReader::new(bytes);
        if need(r.get_bytes(), "magic")? != MAGIC {
            return Err(snap_err("not a plane snapshot (bad magic)"));
        }
        let version = need(r.get_u16(), "version")?;
        if version != SNAPSHOT_VERSION {
            return Err(snap_err(format!(
                "snapshot version {version} is not the supported version {SNAPSHOT_VERSION}"
            )));
        }
        let workers = need(r.get_u32(), "worker count")? as usize;
        if workers == 0 {
            return Err(snap_err("snapshot records zero workers"));
        }
        let fusion = need(r.get_bool(), "fusion flag")?;
        let cse = need(r.get_bool(), "cse flag")?;
        let next_id = need(r.get_u16(), "id allocator")?;
        let epoch = need(r.get_u64(), "epoch")?;
        let pushed = need(r.get_u64(), "stream position")?;

        let nslots = need(r.get_u16(), "slot count")? as usize;
        let mut slots = Vec::with_capacity(nslots);
        for _ in 0..nslots {
            let id = need(r.get_u16(), "slot id")?;
            let name = need(r.get_str(), "slot name")?.to_string();
            let unit = need(r.get_u16(), "slot unit")?;
            slots.push(SlotMeta { id, name, unit });
        }
        let nunits = need(r.get_u16(), "unit count")? as usize;
        let mut units = Vec::with_capacity(nunits);
        let mut unit_groups = Vec::with_capacity(nunits);
        for _ in 0..nunits {
            let id = need(r.get_u16(), "unit id")?;
            let hash = need(r.get_u64(), "unit hash")?;
            unit_groups.push(need(r.get_u16(), "unit group")?);
            let attach_pos = need(r.get_u64(), "unit attach position")?;
            let nmembers = need(r.get_u16(), "unit member count")? as usize;
            let mut members = Vec::with_capacity(nmembers);
            for _ in 0..nmembers {
                members.push(need(r.get_u16(), "unit member")?);
            }
            units.push(UnitMeta {
                id,
                hash,
                attach_pos,
                members,
            });
        }
        let ngroups = need(r.get_u16(), "group count")? as usize;
        let mut groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let id = need(r.get_u16(), "group id")?;
            let prefix = need(r.get_u64(), "group prefix")?;
            let attach_pos = need(r.get_u64(), "group attach position")?;
            let nunits = need(r.get_u16(), "group unit count")? as usize;
            let mut gunits = Vec::with_capacity(nunits);
            for _ in 0..nunits {
                gunits.push(need(r.get_u16(), "group unit")?);
            }
            groups.push(GroupMeta {
                id,
                prefix,
                attach_pos,
                units: gunits,
            });
        }
        if slots.iter().any(|s| s.id >= next_id) {
            return Err(snap_err("id allocator below a live tenant id"));
        }

        // Re-seat ids: a unit is keyed by its first surviving member, a
        // group by its first surviving unit (see the module docs).
        let name_of = |member: u16| -> Result<&str, CtrlError> {
            slots
                .iter()
                .find(|s| s.id == member)
                .map(|s| s.name.as_str())
                .ok_or_else(|| snap_err(format!("unit member {member} has no tenant slot")))
        };
        let mut unit_new: Vec<(u16, TenantId)> = Vec::with_capacity(units.len());
        for u in &units {
            let first = *u
                .members
                .first()
                .ok_or_else(|| snap_err(format!("unit {} has no members", u.id)))?;
            unit_new.push((u.id, TenantId(first)));
        }
        let new_unit = |old: u16| -> Result<TenantId, CtrlError> {
            unit_new
                .iter()
                .find(|(o, _)| *o == old)
                .map(|&(_, n)| n)
                .ok_or_else(|| snap_err(format!("unknown unit id {old}")))
        };
        let mut group_new: Vec<(u16, TenantId)> = Vec::with_capacity(groups.len());
        for g in &groups {
            let first = *g
                .units
                .first()
                .ok_or_else(|| snap_err(format!("group {} has no units", g.id)))?;
            group_new.push((g.id, new_unit(first)?));
        }
        let new_group = |old: u16| -> Result<TenantId, CtrlError> {
            group_new
                .iter()
                .find(|(o, _)| *o == old)
                .map(|&(_, n)| n)
                .ok_or_else(|| snap_err(format!("unknown group id {old}")))
        };

        let mut plane = CtrlPlane::build(workers, analyze, fusion, cse);
        let vc = plane.analyze.value_config();

        // Replay every unit attach through the same compile/gate path the
        // original attach took, validating recomputed hashes against the
        // saved ones so mismatched specs are caught here.
        let spec_of = |name: &str| -> Result<&TenantSpec, CtrlError> {
            specs
                .iter()
                .find(|sp| sp.name == name)
                .ok_or_else(|| snap_err(format!("no spec provided for saved tenant '{name}'")))
        };
        for (i, u) in units.iter().enumerate() {
            let uid = new_unit(u.id)?;
            let gid = new_group(unit_groups[i])?;
            let rep = spec_of(name_of(u.members[0])?)?;
            let demand = plane.gate(rep)?;
            let hash = equiv::canonical_hash(&rep.policy, &vc);
            if hash != u.hash {
                return Err(snap_err(format!(
                    "spec '{}' does not match saved unit {} (canonical hash differs)",
                    rep.name, u.id
                )));
            }
            let gmeta = groups
                .iter()
                .find(|g| g.id == unit_groups[i])
                .ok_or_else(|| snap_err(format!("unit {} references unknown group", u.id)))?;
            let founding = gmeta.units.first() == Some(&u.id);
            if founding {
                if pshare::prefix_form(&rep.policy, &vc).switch_prefix != gmeta.prefix {
                    return Err(snap_err(format!(
                        "spec '{}' does not match saved group {} (prefix hash differs)",
                        rep.name, gmeta.id
                    )));
                }
                plane.nic.attach(
                    uid,
                    &demand.compiled,
                    rep.cfg.cache.fg_table_size,
                    sinks(&rep.name),
                )?;
            } else {
                plane.nic.attach_to_group(
                    gid,
                    uid,
                    &demand.compiled,
                    rep.cfg.cache.fg_table_size,
                    sinks(&rep.name),
                )?;
            }
            for &m in &u.members[1..] {
                let mname = name_of(m)?;
                plane.nic.join(uid, TenantId(m), sinks(mname))?;
            }
            plane.units.push(Unit {
                id: uid,
                hash,
                policy: rep.policy.clone(),
                cfg: rep.cfg,
                demand,
                members: u.members.iter().map(|&m| TenantId(m)).collect(),
                group: gid,
                attach_pos: u.attach_pos,
            });
        }

        // Rebuild the switch partitions (one per group; shared-prefix
        // groups get the canonical union record layout, exactly as the
        // original prefix joins left them).
        for g in &groups {
            let gid = new_group(g.id)?;
            let member_units: Vec<&Unit> = g
                .units
                .iter()
                .map(|&old| {
                    let nid = new_unit(old)?;
                    plane
                        .units
                        .iter()
                        .find(|u| u.id == nid)
                        .ok_or_else(|| snap_err(format!("group {} lost unit {old}", g.id)))
                })
                .collect::<Result<_, _>>()?;
            let first = member_units[0];
            let cfg = first.cfg;
            let progs: Vec<&SwitchProgram> = member_units
                .iter()
                .map(|u| &u.demand.compiled.switch)
                .collect();
            let (usage, ok) = if progs.len() == 1 {
                (
                    first.demand.switch,
                    plane
                        .switch
                        .attach(gid, progs[0].clone(), cfg.cache, cfg.mode),
                )
            } else {
                let union = SwitchProgram {
                    filter: progs[0].filter.clone(),
                    levels: progs[0].levels.clone(),
                    metadata: union_metadata(&progs),
                };
                (
                    model(&union, &cfg.cache),
                    plane.switch.attach_shared(gid, &progs, cfg.cache, cfg.mode),
                )
            };
            if !ok {
                return Err(snap_err(format!(
                    "switch refused re-attach of saved partition {}",
                    g.id
                )));
            }
            plane.groups.push(Group {
                id: gid,
                prefix: g.prefix,
                policy: first.policy.clone(),
                cfg,
                switch: usage,
                levels: first.demand.compiled.switch.levels.clone(),
                attach_pos: g.attach_pos,
                units: member_units.iter().map(|u| u.id).collect(),
            });
        }
        for s in &slots {
            plane.slots.push(Slot {
                id: TenantId(s.id),
                name: s.name.clone(),
                unit: new_unit(s.unit)?,
            });
        }

        // Transplant the dynamic state: switch partitions first, then NIC
        // routed positions and per-shard engine state.
        need(
            plane.switch.load_stats(&mut r),
            "shared switch link counters",
        )?;
        for g in &groups {
            let gid = new_group(g.id)?;
            need(
                r.get_section(|r| plane.switch.load_tenant_state(gid, r)),
                "switch partition state",
            )?;
        }
        let npos = need(r.get_u16(), "group position count")? as usize;
        for _ in 0..npos {
            let old = need(r.get_u16(), "group position id")?;
            let routed = need(r.get_u64(), "group routed counter")?;
            let gid = new_group(old)?;
            if !plane.nic.set_group_position(gid, routed) {
                return Err(snap_err(format!(
                    "saved group {old} is not attached on the rebuilt NIC"
                )));
            }
        }
        let ndumps = need(r.get_u16(), "unit dump count")? as usize;
        for _ in 0..ndumps {
            let old = need(r.get_u16(), "dump unit id")?;
            let uid = new_unit(old)?;
            let unit = plane
                .units
                .iter()
                .find(|u| u.id == uid)
                .ok_or_else(|| snap_err(format!("dump for unknown unit {old}")))?;
            let nshards = need(r.get_u32(), "dump shard count")? as usize;
            if nshards != workers {
                return Err(snap_err(format!(
                    "unit {old} dump carries {nshards} shard states for {workers} workers"
                )));
            }
            let mut shards = Vec::with_capacity(nshards);
            for _ in 0..nshards {
                let shard = need(r.get_u32(), "shard index")? as usize;
                let mut engine = Box::new(
                    FeNic::new(&unit.demand.compiled, unit.cfg.cache.fg_table_size).ok_or_else(
                        || snap_err("degenerate NIC configuration in saved unit".to_string()),
                    )?,
                );
                need(
                    r.get_section(|r| engine.load_state(r)),
                    "shard engine state",
                )?;
                let nseqs = need(r.get_u16(), "member seq count")? as usize;
                let mut member_seqs = Vec::with_capacity(nseqs);
                for _ in 0..nseqs {
                    let m = need(r.get_u16(), "member id")?;
                    let seq = need(r.get_u64(), "member seq")?;
                    member_seqs.push((TenantId(m), seq));
                }
                let npkts = need(r.get_u32(), "accumulated vector count")? as usize;
                let mut pkts_accum = Vec::with_capacity(npkts);
                for _ in 0..npkts {
                    pkts_accum.push(need(
                        FeatureVector::load_state(&mut r),
                        "accumulated vector",
                    )?);
                }
                shards.push(ShardUnitState {
                    shard,
                    engine,
                    member_seqs,
                    pkts_accum,
                });
            }
            plane.nic.restore_unit(uid, shards)?;
        }
        if !r.is_empty() {
            return Err(snap_err(format!(
                "{} trailing bytes after the last section",
                r.remaining()
            )));
        }
        plane.next_id = next_id;
        plane.epoch = epoch;
        plane.pushed = pushed;
        Ok(plane)
    }
}
