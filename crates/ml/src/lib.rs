//! Behavior detectors for the SuperFE application study (§8.3).
//!
//! The paper reuses the original detectors of the four case-study
//! applications; this crate reimplements faithful, minimal versions so the
//! end-to-end accuracy experiments run without Python dependencies:
//!
//! - [`autoencoder`] / [`kitnet`]: Kitsune's detector — an ensemble of small
//!   autoencoders over clustered features plus an output autoencoder scoring
//!   RMSE (used for Kitsune and, standalone, for N-BaIoT).
//! - [`knn`]: k-nearest-neighbours (CUMUL-style website fingerprinting).
//! - [`tree`]: a CART decision tree (NPOD's detector).
//! - [`centroid`]: nearest-centroid classification over embedded sequences
//!   (the stand-in for TF's triplet network).
//! - [`norm`]: feature normalization, [`metrics`]: accuracy/precision/
//!   recall/F1/AUC.
//! - [`detector`]: the unified online [`Detector`] contract over all four
//!   models, with the `Training → Calibrating → Serving` lifecycle and
//!   held-out-slice threshold calibration used by `superfe-detect`.
//! - [`quant`]: fixed-point (Qm.n) lowering of frozen detectors for
//!   in-pipeline NIC inference, with analytically certified float-vs-
//!   quantized score error bounds (the basis of the SF09xx pass).

pub mod autoencoder;
pub mod centroid;
pub mod detector;
pub mod kitnet;
pub mod knn;
pub mod metrics;
pub mod norm;
pub mod quant;
pub mod tree;

pub use autoencoder::Autoencoder;
pub use centroid::NearestCentroid;
pub use detector::{
    train_and_calibrate, CalibrationConfig, CartDetector, CentroidDetector, Detector,
    FrozenDetector, KitNetDetector, KnnNovelty, Lifecycle, MlError, Stage,
};
pub use kitnet::KitNet;
pub use knn::Knn;
pub use metrics::{accuracy, auc, f1_score, precision_recall, Confusion};
pub use norm::MinMaxNorm;
pub use quant::{quantize, ErrorBound, LayerBound, QuantConfig, QuantError, QuantizedDetector};
pub use tree::DecisionTree;
