//! A CART decision tree (NPOD's detector).

/// A node of the tree.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        label: usize,
        /// Fraction of training samples at this leaf with label 1 (the
        /// "positive" class in a binary fit; 0 for other labels).
        p_pos: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A flattened tree node (children are vector indices), the quantizer's
/// view of a fitted tree.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FlatNode {
    /// A leaf with its positive-class training fraction.
    Leaf {
        /// Fraction of training samples at this leaf with label 1.
        p_pos: f64,
    },
    /// An internal binary split.
    Split {
        /// Feature index compared at this node.
        feature: usize,
        /// Split threshold (`x[feature] <= threshold` goes left).
        threshold: f64,
        /// Index of the left child.
        left: usize,
        /// Index of the right child.
        right: usize,
    },
}

/// A binary-split decision tree trained by recursive Gini minimization.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    root: Option<Node>,
    max_depth: usize,
    min_samples: usize,
}

impl DecisionTree {
    /// Creates a tree with the given depth and minimum-split-size limits.
    pub fn new(max_depth: usize, min_samples: usize) -> Self {
        DecisionTree {
            root: None,
            max_depth: max_depth.max(1),
            min_samples: min_samples.max(2),
        }
    }

    /// Fits the tree; `data` is `(features, label)` pairs.
    ///
    /// Returns `false` (leaving the tree untrained) for empty data or
    /// inconsistent feature dimensions.
    pub fn fit(&mut self, data: &[(Vec<f64>, usize)]) -> bool {
        if data.is_empty() {
            return false;
        }
        let dim = data[0].0.len();
        if dim == 0 || data.iter().any(|(x, _)| x.len() != dim) {
            return false;
        }
        let idx: Vec<usize> = (0..data.len()).collect();
        self.root = Some(Self::build(data, &idx, self.max_depth, self.min_samples));
        true
    }

    /// Predicts a label; `None` when untrained.
    pub fn predict(&self, x: &[f64]) -> Option<usize> {
        let mut node = self.root.as_ref()?;
        loop {
            match node {
                Node::Leaf { label, .. } => return Some(*label),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x.get(*feature).copied().unwrap_or(0.0);
                    node = if v <= *threshold { left } else { right };
                }
            }
        }
    }

    /// The label-1 training fraction of the leaf `x` falls in; `None` when
    /// untrained. In a binary fit this is a [0, 1] positive-class score.
    pub fn predict_score(&self, x: &[f64]) -> Option<f64> {
        let mut node = self.root.as_ref()?;
        loop {
            match node {
                Node::Leaf { p_pos, .. } => return Some(*p_pos),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x.get(*feature).copied().unwrap_or(0.0);
                    node = if v <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Depth of the trained tree (0 when untrained).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map(d).unwrap_or(0)
    }

    /// Flattens the tree into an array representation for fixed-point
    /// compilation: children are indices into the returned vector, with the
    /// root at index 0. `None` when untrained.
    pub(crate) fn flatten(&self) -> Option<Vec<FlatNode>> {
        fn push(n: &Node, out: &mut Vec<FlatNode>) -> usize {
            let at = out.len();
            match n {
                Node::Leaf { p_pos, .. } => out.push(FlatNode::Leaf { p_pos: *p_pos }),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.push(FlatNode::Split {
                        feature: *feature,
                        threshold: *threshold,
                        left: 0,
                        right: 0,
                    });
                    let l = push(left, out);
                    let r = push(right, out);
                    if let FlatNode::Split { left, right, .. } = &mut out[at] {
                        *left = l;
                        *right = r;
                    }
                }
            }
            at
        }
        let root = self.root.as_ref()?;
        let mut out = Vec::new();
        push(root, &mut out);
        Some(out)
    }

    fn leaf(data: &[(Vec<f64>, usize)], idx: &[usize]) -> Node {
        let pos = idx.iter().filter(|&&i| data[i].1 == 1).count();
        Node::Leaf {
            label: Self::majority(data, idx),
            p_pos: if idx.is_empty() {
                0.0
            } else {
                pos as f64 / idx.len() as f64
            },
        }
    }

    fn majority(data: &[(Vec<f64>, usize)], idx: &[usize]) -> usize {
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &i in idx {
            *counts.entry(data[i].1).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(label, c)| (c, std::cmp::Reverse(label)))
            .map(|(l, _)| l)
            .unwrap_or(0)
    }

    fn gini(data: &[(Vec<f64>, usize)], idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &i in idx {
            *counts.entry(data[i].1).or_insert(0) += 1;
        }
        let n = idx.len() as f64;
        1.0 - counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                p * p
            })
            .sum::<f64>()
    }

    fn build(
        data: &[(Vec<f64>, usize)],
        idx: &[usize],
        depth_left: usize,
        min_samples: usize,
    ) -> Node {
        let base_gini = Self::gini(data, idx);
        if depth_left == 0 || idx.len() < min_samples || base_gini == 0.0 {
            return Self::leaf(data, idx);
        }
        let dim = data[0].0.len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
        for f in 0..dim {
            // Candidate thresholds: midpoints of sorted unique values.
            let mut vals: Vec<f64> = idx.iter().map(|&i| data[i].0[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            for w in vals.windows(2) {
                let thr = (w[0] + w[1]) / 2.0;
                let (l, r): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| data[i].0[f] <= thr);
                if l.is_empty() || r.is_empty() {
                    continue;
                }
                let g = (l.len() as f64 * Self::gini(data, &l)
                    + r.len() as f64 * Self::gini(data, &r))
                    / idx.len() as f64;
                if best.map(|(_, _, bg)| g < bg).unwrap_or(true) {
                    best = Some((f, thr, g));
                }
            }
        }
        match best {
            // Zero-gain splits are allowed (CART-style): XOR-like structure
            // needs a first split that only pays off one level deeper.
            Some((f, thr, g)) if g <= base_gini + 1e-12 => {
                let (l, r): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| data[i].0[f] <= thr);
                Node::Split {
                    feature: f,
                    threshold: thr,
                    left: Box::new(Self::build(data, &l, depth_left - 1, min_samples)),
                    right: Box::new(Self::build(data, &r, depth_left - 1, min_samples)),
                }
            }
            _ => Self::leaf(data, idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Vec<(Vec<f64>, usize)> {
        let mut d = Vec::new();
        for i in 0..20 {
            let a = f64::from(i % 2);
            let b = f64::from((i / 2) % 2);
            let label = (a as usize) ^ (b as usize);
            d.push((vec![a, b], label));
        }
        d
    }

    #[test]
    fn untrained_predicts_none() {
        let t = DecisionTree::new(4, 2);
        assert_eq!(t.predict(&[1.0]), None);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn fit_rejects_bad_data() {
        let mut t = DecisionTree::new(4, 2);
        assert!(!t.fit(&[]));
        assert!(!t.fit(&[(vec![], 0)]));
        assert!(!t.fit(&[(vec![1.0], 0), (vec![1.0, 2.0], 1)]));
    }

    #[test]
    fn learns_xor() {
        let mut t = DecisionTree::new(4, 2);
        assert!(t.fit(&xor_data()));
        assert_eq!(t.predict(&[0.0, 0.0]), Some(0));
        assert_eq!(t.predict(&[1.0, 0.0]), Some(1));
        assert_eq!(t.predict(&[0.0, 1.0]), Some(1));
        assert_eq!(t.predict(&[1.0, 1.0]), Some(0));
        assert!(t.depth() >= 3);
    }

    #[test]
    fn respects_max_depth() {
        let mut t = DecisionTree::new(1, 2);
        t.fit(&xor_data());
        // Depth 1 cannot express XOR: only a leaf (or a single split).
        assert!(t.depth() <= 2);
    }

    #[test]
    fn pure_data_yields_leaf() {
        let mut t = DecisionTree::new(5, 2);
        t.fit(&[(vec![1.0], 3), (vec![2.0], 3), (vec![3.0], 3)]);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.predict(&[99.0]), Some(3));
    }

    #[test]
    fn separable_threshold_found() {
        let mut t = DecisionTree::new(3, 2);
        let data: Vec<(Vec<f64>, usize)> = (0..50)
            .map(|i| {
                let x = f64::from(i);
                (vec![x], usize::from(x > 24.5))
            })
            .collect();
        t.fit(&data);
        assert_eq!(t.predict(&[3.0]), Some(0));
        assert_eq!(t.predict(&[40.0]), Some(1));
    }
}
