//! Classification and detection metrics.

/// Binary confusion counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (bool, bool)>) -> Self {
        let mut c = Confusion::default();
        for (pred, truth) in pairs {
            match (pred, truth) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// `(tp + tn) / total` (0 for empty input).
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Precision `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Multi-class accuracy over `(predicted, truth)` label pairs.
pub fn accuracy(pairs: impl IntoIterator<Item = (usize, usize)>) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (p, t) in pairs {
        total += 1;
        if p == t {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Binary precision and recall from `(predicted, truth)` pairs.
pub fn precision_recall(pairs: impl IntoIterator<Item = (bool, bool)>) -> (f64, f64) {
    let c = Confusion::from_pairs(pairs);
    (c.precision(), c.recall())
}

/// Binary F1 from `(predicted, truth)` pairs.
pub fn f1_score(pairs: impl IntoIterator<Item = (bool, bool)>) -> f64 {
    Confusion::from_pairs(pairs).f1()
}

/// Area under the ROC curve from `(score, is_positive)` pairs, computed via
/// the rank statistic (ties get mid-ranks). Returns 0.5 when one class is
/// absent.
pub fn auc(scored: &[(f64, bool)]) -> f64 {
    let pos = scored.iter().filter(|&&(_, p)| p).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut sorted: Vec<(f64, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
    // Mid-rank assignment.
    let mut rank_sum_pos = 0.0;
    let mut i = 0usize;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
            j += 1;
        }
        let mid_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &sorted[i..=j] {
            if item.1 {
                rank_sum_pos += mid_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0) / (pos as f64 * neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let c = Confusion::from_pairs(vec![
            (true, true),
            (true, false),
            (false, false),
            (false, true),
            (true, true),
        ]);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 1);
        assert_eq!(c.fn_, 1);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn multiclass_accuracy() {
        assert_eq!(accuracy(vec![(1, 1), (2, 2), (3, 1)]), 2.0 / 3.0);
        assert_eq!(accuracy(Vec::<(usize, usize)>::new()), 0.0);
    }

    #[test]
    fn auc_perfect_separation() {
        let scored = vec![(0.1, false), (0.2, false), (0.8, true), (0.9, true)];
        assert!((auc(&scored) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        let scored = vec![(0.5, false), (0.5, true), (0.5, false), (0.5, true)];
        assert!((auc(&scored) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_is_zero() {
        let scored = vec![(0.9, false), (0.8, false), (0.2, true), (0.1, true)];
        assert!(auc(&scored).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(auc(&[(0.3, true), (0.7, true)]), 0.5);
        assert_eq!(auc(&[]), 0.5);
    }

    #[test]
    fn helper_wrappers() {
        let pairs = vec![(true, true), (false, true)];
        let (p, r) = precision_recall(pairs.clone());
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.5);
        assert!(f1_score(pairs) > 0.6);
    }
}
