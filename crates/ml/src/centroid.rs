//! Nearest-centroid classification — the stand-in for TF's triplet network.
//!
//! Triplet fingerprinting learns an embedding and classifies by proximity to
//! per-class anchors from a few shots. The geometric core of that decision
//! rule — nearest class centroid in feature space — is what this detector
//! implements, over cosine distance like the original.

use std::collections::HashMap;

/// A nearest-centroid classifier with cosine similarity.
#[derive(Clone, Debug, Default)]
pub struct NearestCentroid {
    sums: HashMap<usize, (Vec<f64>, usize)>,
}

impl NearestCentroid {
    /// Creates an empty classifier.
    pub fn new() -> Self {
        NearestCentroid::default()
    }

    /// Adds a labelled example (N-shot enrollment).
    pub fn fit_one(&mut self, x: &[f64], label: usize) {
        let entry = self
            .sums
            .entry(label)
            .or_insert_with(|| (vec![0.0; x.len()], 0));
        if entry.0.len() < x.len() {
            entry.0.resize(x.len(), 0.0);
        }
        for (i, &v) in x.iter().enumerate() {
            entry.0[i] += v;
        }
        entry.1 += 1;
    }

    /// Number of enrolled classes.
    pub fn classes(&self) -> usize {
        self.sums.len()
    }

    /// The centroid of `label` (`None` when not enrolled).
    pub(crate) fn centroid(&self, label: usize) -> Option<Vec<f64>> {
        let (sum, n) = self.sums.get(&label)?;
        Some(sum.iter().map(|s| s / *n as f64).collect())
    }

    /// Cosine similarity of `x` to the centroid of `label`.
    ///
    /// Returns `None` when the class is not enrolled.
    pub fn similarity(&self, x: &[f64], label: usize) -> Option<f64> {
        let (sum, n) = self.sums.get(&label)?;
        let centroid: Vec<f64> = sum.iter().map(|s| s / *n as f64).collect();
        Some(cosine(x, &centroid))
    }

    /// Predicts the label of `x` (highest cosine similarity to a centroid).
    ///
    /// Returns `None` when no class is enrolled.
    pub fn predict(&self, x: &[f64]) -> Option<usize> {
        self.sums
            .iter()
            .map(|(&label, (sum, n))| {
                let centroid: Vec<f64> = sum.iter().map(|s| s / *n as f64).collect();
                (label, cosine(x, &centroid))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite similarity"))
            .map(|(l, _)| l)
    }
}

/// Cosine similarity, tolerant of length mismatch (zero-padded).
fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= 0.0 || nb <= 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predicts_none() {
        assert_eq!(NearestCentroid::new().predict(&[1.0]), None);
    }

    #[test]
    fn classifies_direction_patterns() {
        let mut c = NearestCentroid::new();
        // Class 0: down-heavy; class 1: up-heavy.
        for _ in 0..5 {
            c.fit_one(&[1.0, 1.0, 1.0, -1.0], 0);
            c.fit_one(&[-1.0, -1.0, -1.0, 1.0], 1);
        }
        assert_eq!(c.classes(), 2);
        assert_eq!(c.predict(&[1.0, 1.0, -1.0, -1.0]), Some(0));
        assert_eq!(c.predict(&[-1.0, -1.0, -1.0, -1.0]), Some(1));
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let mut c = NearestCentroid::new();
        c.fit_one(&[1.0, 0.0], 0);
        c.fit_one(&[0.0, 1.0], 1);
        assert_eq!(c.predict(&[100.0, 1.0]), Some(0));
        assert_eq!(c.predict(&[0.1, 10.0]), Some(1));
    }

    #[test]
    fn handles_mixed_lengths() {
        let mut c = NearestCentroid::new();
        c.fit_one(&[1.0, 1.0], 0);
        c.fit_one(&[1.0, 1.0, -5.0], 0);
        assert!(c.predict(&[1.0]).is_some());
    }

    #[test]
    fn zero_vector_similarity_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
