//! KitNET: Kitsune's ensemble-of-autoencoders anomaly detector.
//!
//! Features are clustered into small groups (max size `m`) by correlation
//! during a feature-mapping phase; each cluster gets its own autoencoder,
//! and an output autoencoder scores the vector of per-cluster RMSEs. The
//! final anomaly score is the output layer's RMSE.

use crate::autoencoder::Autoencoder;
use crate::norm::MinMaxNorm;

/// Training phases of the online detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Collecting correlation statistics to build the feature map.
    FeatureMapping,
    /// Training the autoencoders on (assumed benign) traffic.
    Training,
    /// Scoring.
    Executing,
}

/// The KitNET detector.
#[derive(Clone, Debug)]
pub struct KitNet {
    m: usize,
    fm_grace: usize,
    train_grace: usize,
    seen: usize,
    phase: Phase,
    /// Correlation accumulators (feature-mapping phase).
    sums: Vec<f64>,
    sqs: Vec<f64>,
    prods: Vec<Vec<f64>>,
    /// Feature clusters (after mapping).
    clusters: Vec<Vec<usize>>,
    ensemble: Vec<Autoencoder>,
    output: Option<Autoencoder>,
    norm: MinMaxNorm,
    out_norm: MinMaxNorm,
    seed: u64,
    dim: usize,
}

impl KitNet {
    /// Creates a detector for `dim`-dimensional features.
    ///
    /// `m` is the maximum cluster size (Kitsune's default is 10);
    /// `fm_grace`/`train_grace` are the instance counts of the
    /// feature-mapping and training phases.
    pub fn new(
        dim: usize,
        m: usize,
        fm_grace: usize,
        train_grace: usize,
        seed: u64,
    ) -> Option<Self> {
        if dim == 0 || m == 0 || fm_grace == 0 || train_grace == 0 {
            return None;
        }
        Some(KitNet {
            m,
            fm_grace,
            train_grace,
            seen: 0,
            phase: Phase::FeatureMapping,
            sums: vec![0.0; dim],
            sqs: vec![0.0; dim],
            prods: vec![vec![0.0; dim]; dim],
            clusters: Vec::new(),
            ensemble: Vec::new(),
            output: None,
            norm: MinMaxNorm::new(),
            out_norm: MinMaxNorm::new(),
            seed,
            dim,
        })
    }

    /// Whether the detector has finished training and is scoring.
    pub fn is_executing(&self) -> bool {
        self.phase == Phase::Executing
    }

    /// Number of ensemble clusters (0 before feature mapping completes).
    pub fn clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Feature-index clusters (structural access for the quantizer).
    pub(crate) fn feature_clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// The per-cluster autoencoders.
    pub(crate) fn ensemble(&self) -> &[Autoencoder] {
        &self.ensemble
    }

    /// The output autoencoder (`None` before feature mapping).
    pub(crate) fn output_layer(&self) -> Option<&Autoencoder> {
        self.output.as_ref()
    }

    /// The input min–max normalizer.
    pub(crate) fn input_norm(&self) -> &MinMaxNorm {
        &self.norm
    }

    /// The RMSE-vector min–max normalizer feeding the output layer.
    pub(crate) fn output_norm(&self) -> &MinMaxNorm {
        &self.out_norm
    }

    /// Input feature dimension.
    pub(crate) fn dim(&self) -> usize {
        self.dim
    }

    /// Processes one feature vector, returning its anomaly score.
    ///
    /// Scores are 0 during the feature-mapping and training phases (the
    /// instance is consumed for statistics/updates), mirroring Kitsune's
    /// grace-period behaviour. Vectors of the wrong dimension return
    /// `f64::INFINITY`.
    pub fn process(&mut self, x: &[f64]) -> f64 {
        if x.len() != self.dim {
            return f64::INFINITY;
        }
        self.seen += 1;
        match self.phase {
            Phase::FeatureMapping => {
                for i in 0..self.dim {
                    self.sums[i] += x[i];
                    self.sqs[i] += x[i] * x[i];
                    for j in (i + 1)..self.dim {
                        self.prods[i][j] += x[i] * x[j];
                    }
                }
                self.norm.observe(x);
                if self.seen >= self.fm_grace {
                    self.build_map();
                    self.phase = Phase::Training;
                }
                0.0
            }
            Phase::Training => {
                let xn = self.norm.observe_transform(x);
                let rmses = self.train_ensemble(&xn);
                let rn = self.out_norm.observe_transform(&rmses);
                if let Some(out) = &mut self.output {
                    out.train_step(&rn);
                }
                if self.seen >= self.fm_grace + self.train_grace {
                    self.phase = Phase::Executing;
                }
                0.0
            }
            Phase::Executing => self.score(x),
        }
    }

    /// Scores without updating any state (pure execution).
    pub fn score(&self, x: &[f64]) -> f64 {
        if x.len() != self.dim || self.output.is_none() {
            return f64::INFINITY;
        }
        let xn = self.norm.transform(x);
        let rmses: Vec<f64> = self
            .clusters
            .iter()
            .zip(&self.ensemble)
            .map(|(c, ae)| {
                let sub: Vec<f64> = c.iter().map(|&i| xn[i]).collect();
                ae.rmse(&sub)
            })
            .collect();
        let rn = self.out_norm.transform(&rmses);
        self.output.as_ref().expect("checked").rmse(&rn)
    }

    fn train_ensemble(&mut self, xn: &[f64]) -> Vec<f64> {
        self.clusters
            .iter()
            .zip(self.ensemble.iter_mut())
            .map(|(c, ae)| {
                let sub: Vec<f64> = c.iter().map(|&i| xn[i]).collect();
                ae.train_step(&sub)
            })
            .collect()
    }

    /// Agglomerative correlation clustering capped at `m` features per
    /// cluster (Kitsune's feature mapper, simplified to a greedy pass).
    fn build_map(&mut self) {
        let n = self.seen as f64;
        let dim = self.dim;
        // Correlation distance between feature pairs.
        let corr = |i: usize, j: usize, s: &Self| -> f64 {
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            let cov = s.prods[a][b] / n - (s.sums[a] / n) * (s.sums[b] / n);
            let va = (s.sqs[a] / n - (s.sums[a] / n).powi(2)).max(1e-12);
            let vb = (s.sqs[b] / n - (s.sums[b] / n).powi(2)).max(1e-12);
            (cov / (va * vb).sqrt()).clamp(-1.0, 1.0)
        };
        // Greedy: seed a cluster with the first unassigned feature, then add
        // the most-correlated remaining features up to m.
        let mut assigned = vec![false; dim];
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for i in 0..dim {
            if assigned[i] {
                continue;
            }
            assigned[i] = true;
            let mut cluster = vec![i];
            while cluster.len() < self.m {
                let mut best: Option<(usize, f64)> = None;
                for (j, &taken) in assigned.iter().enumerate() {
                    if taken {
                        continue;
                    }
                    // Mean |corr| to the cluster.
                    let score: f64 = cluster.iter().map(|&c| corr(c, j, self).abs()).sum::<f64>()
                        / cluster.len() as f64;
                    if best.map(|(_, s)| score > s).unwrap_or(true) {
                        best = Some((j, score));
                    }
                }
                match best {
                    Some((j, s)) if s > 0.3 => {
                        assigned[j] = true;
                        cluster.push(j);
                    }
                    _ => break,
                }
            }
            clusters.push(cluster);
        }
        self.ensemble = clusters
            .iter()
            .enumerate()
            .map(|(k, c)| {
                let h = (c.len() * 3 / 4).max(1);
                Autoencoder::new(c.len(), h, 0.3, self.seed ^ (k as u64 + 1))
                    .expect("non-empty cluster")
            })
            .collect();
        let h_out = (clusters.len() * 3 / 4).max(1);
        self.output = Some(
            Autoencoder::new(clusters.len(), h_out, 0.3, self.seed ^ 0xDEAD)
                .expect("at least one cluster"),
        );
        self.clusters = clusters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn normal_sample(rng: &mut StdRng) -> Vec<f64> {
        // Two correlated pairs + noise.
        let a = rng.random::<f64>();
        let b = rng.random::<f64>();
        vec![
            a,
            a + rng.random::<f64>() * 0.05,
            b,
            b + rng.random::<f64>() * 0.05,
            0.2,
        ]
    }

    #[test]
    fn rejects_bad_config() {
        assert!(KitNet::new(0, 10, 100, 100, 1).is_none());
        assert!(KitNet::new(5, 0, 100, 100, 1).is_none());
    }

    #[test]
    fn phases_progress() {
        let mut k = KitNet::new(5, 3, 50, 50, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..99 {
            k.process(&normal_sample(&mut rng));
        }
        assert!(!k.is_executing());
        k.process(&normal_sample(&mut rng));
        assert!(k.is_executing());
        assert!(k.clusters() >= 1);
    }

    #[test]
    fn correlated_features_cluster_together() {
        let mut k = KitNet::new(5, 3, 200, 10, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..210 {
            k.process(&normal_sample(&mut rng));
        }
        // Features 0,1 correlated; 2,3 correlated. They should share
        // clusters.
        let find = |i: usize| k.clusters.iter().position(|c| c.contains(&i)).unwrap();
        assert_eq!(find(0), find(1));
        assert_eq!(find(2), find(3));
    }

    #[test]
    fn anomalies_score_above_normal() {
        let mut k = KitNet::new(5, 3, 300, 1500, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1800 {
            k.process(&normal_sample(&mut rng));
        }
        assert!(k.is_executing());
        let normal_scores: Vec<f64> = (0..100)
            .map(|_| k.score(&normal_sample(&mut rng)))
            .collect();
        // Anomaly: break the correlation structure hard.
        let anomaly = vec![1.0, 0.0, 0.0, 1.0, 1.0];
        let a = k.score(&anomaly);
        let mean_n = normal_scores.iter().sum::<f64>() / normal_scores.len() as f64;
        assert!(a > mean_n * 2.0, "anomaly {a} vs normal mean {mean_n}");
    }

    #[test]
    fn wrong_dim_scores_infinite() {
        let mut k = KitNet::new(5, 3, 10, 10, 1).unwrap();
        assert_eq!(k.process(&[0.0; 3]), f64::INFINITY);
        assert_eq!(k.score(&[0.0; 5]), f64::INFINITY, "not yet trained");
    }
}
