//! The unified online-detection contract: the [`Detector`] trait, the
//! `Training → Calibrating → Serving` lifecycle, and held-out-slice
//! threshold calibration.
//!
//! The figure benches (`superfe-apps`) drive each model through its own ad
//! hoc API with hard-coded anomaly thresholds. Online serving
//! (`superfe-detect`) needs one contract for all four models instead:
//!
//! - **train / score / feature-dim**: every model declares its expected
//!   feature dimension up front and returns a typed
//!   [`MlError::DimMismatch`] on violation — no silent zero-padding, no
//!   `INFINITY` sentinels.
//! - **Anomaly semantics**: all scores are nonnegative and higher-is-more-
//!   anomalous. KitNET scores with its native ensemble RMSE; k-NN becomes a
//!   novelty detector (mean distance to the `k` nearest benign training
//!   points); nearest-centroid scores `1 − cosine` to the benign centroid;
//!   CART is reduced from density estimation to classification against a
//!   seeded synthetic uniform background sample and scores with the leaf's
//!   background fraction.
//! - **Lifecycle**: [`Lifecycle`] enforces `Training → Calibrating →
//!   Serving`. Calibration replaces the benches' hard-coded thresholds: the
//!   alert threshold is a quantile (times a safety margin) of the scores of
//!   a *held-out benign slice*, and [`Lifecycle::begin_serving`] freezes the
//!   model into an immutable, shareable [`FrozenDetector`].

use std::any::Any;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kitnet::KitNet;
use crate::knn::euclidean2;
use crate::tree::DecisionTree;
use crate::NearestCentroid;

/// Typed errors of the [`Detector`] contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MlError {
    /// A feature vector's dimension did not match the model's contract.
    DimMismatch {
        /// The dimension the model was built for.
        expected: usize,
        /// The dimension of the offending vector.
        got: usize,
    },
    /// A lifecycle method was called in the wrong stage.
    WrongStage {
        /// The stage the call is valid in.
        expected: Stage,
        /// The stage the lifecycle is actually in.
        got: Stage,
    },
    /// Not enough samples to finish the requested phase.
    TooFewSamples {
        /// Samples available.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A model was constructed with degenerate parameters.
    InvalidConfig(String),
    /// `score` was called on a model that never finished training.
    Untrained,
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::DimMismatch { expected, got } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {got}"
                )
            }
            MlError::WrongStage { expected, got } => {
                write!(
                    f,
                    "lifecycle stage error: operation requires {expected}, but detector is {got}"
                )
            }
            MlError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need at least {need}")
            }
            MlError::InvalidConfig(msg) => write!(f, "invalid detector configuration: {msg}"),
            MlError::Untrained => write!(f, "detector has not finished training"),
        }
    }
}

impl std::error::Error for MlError {}

/// Lifecycle stages of an online detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Absorbing benign training vectors.
    Training,
    /// Model frozen; scoring a held-out benign slice to derive the alert
    /// threshold.
    Calibrating,
    /// Threshold fixed; scoring live traffic.
    Serving,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::Training => "Training",
            Stage::Calibrating => "Calibrating",
            Stage::Serving => "Serving",
        };
        f.write_str(s)
    }
}

/// The unified anomaly-detector contract.
///
/// Scores are nonnegative and higher-is-more-anomalous; every method
/// enforces the declared [`Detector::feature_dim`] with a typed
/// [`MlError::DimMismatch`].
pub trait Detector: Send + Sync {
    /// Short model name (`"kitnet"`, `"knn"`, `"cart"`, `"centroid"`).
    fn name(&self) -> &'static str;

    /// The feature dimension this detector was built for.
    fn feature_dim(&self) -> usize;

    /// Absorbs one benign training vector.
    fn train(&mut self, x: &[f64]) -> Result<(), MlError>;

    /// Finishes training (fits/freezes the model). After this, only
    /// [`Detector::score`] is valid.
    fn end_training(&mut self) -> Result<(), MlError>;

    /// Scores a vector without mutating the model (pure; safe to share
    /// across serving threads once training ended).
    fn score(&self, x: &[f64]) -> Result<f64, MlError>;

    /// The concrete model behind the trait object, for compilation passes
    /// (e.g. the fixed-point quantizer) that need structural access.
    fn as_any(&self) -> &dyn Any;
}

fn check_dim(expected: usize, x: &[f64]) -> Result<(), MlError> {
    if x.len() != expected {
        return Err(MlError::DimMismatch {
            expected,
            got: x.len(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// KitNET
// ---------------------------------------------------------------------------

/// [`KitNet`] behind the [`Detector`] contract.
///
/// Training vectors are buffered; `end_training` sizes the feature-mapping
/// grace period as one fifth of the sample (clamped), replays the buffer,
/// and requires the ensemble to reach its executing phase.
pub struct KitNetDetector {
    dim: usize,
    m: usize,
    seed: u64,
    buf: Vec<Vec<f64>>,
    model: Option<KitNet>,
}

impl KitNetDetector {
    /// Minimum training vectors for a meaningful ensemble.
    pub const MIN_TRAIN: usize = 50;

    /// Creates a detector for `dim`-dimensional vectors with Kitsune's
    /// default maximum cluster size.
    pub fn new(dim: usize, seed: u64) -> Result<Self, MlError> {
        if dim == 0 {
            return Err(MlError::InvalidConfig("feature dim must be > 0".into()));
        }
        Ok(KitNetDetector {
            dim,
            m: 10,
            seed,
            buf: Vec::new(),
            model: None,
        })
    }
}

impl Detector for KitNetDetector {
    fn name(&self) -> &'static str {
        "kitnet"
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }

    fn train(&mut self, x: &[f64]) -> Result<(), MlError> {
        check_dim(self.dim, x)?;
        if self.model.is_some() {
            return Err(MlError::WrongStage {
                expected: Stage::Training,
                got: Stage::Serving,
            });
        }
        self.buf.push(x.to_vec());
        Ok(())
    }

    fn end_training(&mut self) -> Result<(), MlError> {
        let n = self.buf.len();
        if n < Self::MIN_TRAIN {
            return Err(MlError::TooFewSamples {
                got: n,
                need: Self::MIN_TRAIN,
            });
        }
        let fm = (n / 5).clamp(10, 2000);
        let tr = n - fm;
        let mut model = KitNet::new(self.dim, self.m, fm, tr, self.seed)
            .ok_or_else(|| MlError::InvalidConfig("degenerate KitNET grace periods".into()))?;
        for x in self.buf.drain(..) {
            model.process(&x);
        }
        if !model.is_executing() {
            return Err(MlError::Untrained);
        }
        self.model = Some(model);
        Ok(())
    }

    fn score(&self, x: &[f64]) -> Result<f64, MlError> {
        check_dim(self.dim, x)?;
        let model = self.model.as_ref().ok_or(MlError::Untrained)?;
        Ok(model.score(x))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl KitNetDetector {
    /// The trained ensemble (`None` before `end_training`).
    pub(crate) fn model(&self) -> Option<&KitNet> {
        self.model.as_ref()
    }
}

// ---------------------------------------------------------------------------
// k-NN novelty
// ---------------------------------------------------------------------------

/// k-NN as a novelty detector: the score of `x` is the mean Euclidean
/// distance to its `k` nearest benign training points.
///
/// Training points are subsampled to a fixed cap by deterministic striding
/// so scoring cost stays bounded regardless of trace length.
pub struct KnnNovelty {
    dim: usize,
    k: usize,
    points: Vec<Vec<f64>>,
    frozen: bool,
}

impl KnnNovelty {
    /// Retained reference points after subsampling.
    pub const CAP: usize = 1024;

    /// Creates a novelty detector with `k` neighbours (k ≥ 1).
    pub fn new(dim: usize, k: usize) -> Result<Self, MlError> {
        if dim == 0 || k == 0 {
            return Err(MlError::InvalidConfig("dim and k must be > 0".into()));
        }
        Ok(KnnNovelty {
            dim,
            k,
            points: Vec::new(),
            frozen: false,
        })
    }
}

impl Detector for KnnNovelty {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }

    fn train(&mut self, x: &[f64]) -> Result<(), MlError> {
        check_dim(self.dim, x)?;
        if self.frozen {
            return Err(MlError::WrongStage {
                expected: Stage::Training,
                got: Stage::Serving,
            });
        }
        self.points.push(x.to_vec());
        Ok(())
    }

    fn end_training(&mut self) -> Result<(), MlError> {
        if self.points.len() < self.k {
            return Err(MlError::TooFewSamples {
                got: self.points.len(),
                need: self.k,
            });
        }
        if self.points.len() > Self::CAP {
            let n = self.points.len();
            let kept: Vec<Vec<f64>> = (0..Self::CAP)
                .map(|i| self.points[i * n / Self::CAP].clone())
                .collect();
            self.points = kept;
        }
        self.frozen = true;
        Ok(())
    }

    fn score(&self, x: &[f64]) -> Result<f64, MlError> {
        check_dim(self.dim, x)?;
        if !self.frozen {
            return Err(MlError::Untrained);
        }
        let mut dists: Vec<f64> = self
            .points
            .iter()
            .map(|p| euclidean2(p, x).sqrt())
            .collect();
        dists.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let k = self.k.min(dists.len());
        Ok(dists[..k].iter().sum::<f64>() / k as f64)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Nearest centroid
// ---------------------------------------------------------------------------

/// Nearest-centroid as an anomaly detector: score is `1 − cosine` to the
/// benign centroid (0 for perfectly aligned traffic, up to 2 for opposed).
pub struct CentroidDetector {
    dim: usize,
    model: NearestCentroid,
    n: usize,
    frozen: bool,
}

impl CentroidDetector {
    /// Creates a detector for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Result<Self, MlError> {
        if dim == 0 {
            return Err(MlError::InvalidConfig("feature dim must be > 0".into()));
        }
        Ok(CentroidDetector {
            dim,
            model: NearestCentroid::new(),
            n: 0,
            frozen: false,
        })
    }
}

impl Detector for CentroidDetector {
    fn name(&self) -> &'static str {
        "centroid"
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }

    fn train(&mut self, x: &[f64]) -> Result<(), MlError> {
        check_dim(self.dim, x)?;
        if self.frozen {
            return Err(MlError::WrongStage {
                expected: Stage::Training,
                got: Stage::Serving,
            });
        }
        self.model.fit_one(x, 0);
        self.n += 1;
        Ok(())
    }

    fn end_training(&mut self) -> Result<(), MlError> {
        if self.n == 0 {
            return Err(MlError::TooFewSamples { got: 0, need: 1 });
        }
        self.frozen = true;
        Ok(())
    }

    fn score(&self, x: &[f64]) -> Result<f64, MlError> {
        check_dim(self.dim, x)?;
        if !self.frozen {
            return Err(MlError::Untrained);
        }
        let sim = self.model.similarity(x, 0).ok_or(MlError::Untrained)?;
        Ok(1.0 - sim)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl CentroidDetector {
    /// The underlying classifier.
    pub(crate) fn model(&self) -> &NearestCentroid {
        &self.model
    }

    /// Whether enrollment has been frozen.
    pub(crate) fn is_frozen(&self) -> bool {
        self.frozen
    }
}

// ---------------------------------------------------------------------------
// CART vs. uniform background
// ---------------------------------------------------------------------------

/// CART as an anomaly detector, via the classification-vs-background
/// reduction: the tree is trained to separate the benign sample from an
/// equal-sized *synthetic* sample drawn uniformly over the (slightly
/// expanded) benign bounding box, and the anomaly score of `x` is the
/// background fraction of the leaf it lands in — near 0 in dense benign
/// regions, near 1 in empty space.
pub struct CartDetector {
    dim: usize,
    seed: u64,
    buf: Vec<Vec<f64>>,
    tree: Option<DecisionTree>,
}

impl CartDetector {
    /// Benign samples retained for the fit (deterministic striding).
    pub const CAP: usize = 512;
    /// Minimum benign samples for a meaningful fit.
    pub const MIN_TRAIN: usize = 8;

    /// Creates a detector for `dim`-dimensional vectors; `seed` drives the
    /// synthetic background sample.
    pub fn new(dim: usize, seed: u64) -> Result<Self, MlError> {
        if dim == 0 {
            return Err(MlError::InvalidConfig("feature dim must be > 0".into()));
        }
        Ok(CartDetector {
            dim,
            seed,
            buf: Vec::new(),
            tree: None,
        })
    }
}

impl Detector for CartDetector {
    fn name(&self) -> &'static str {
        "cart"
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }

    fn train(&mut self, x: &[f64]) -> Result<(), MlError> {
        check_dim(self.dim, x)?;
        if self.tree.is_some() {
            return Err(MlError::WrongStage {
                expected: Stage::Training,
                got: Stage::Serving,
            });
        }
        self.buf.push(x.to_vec());
        Ok(())
    }

    fn end_training(&mut self) -> Result<(), MlError> {
        let n = self.buf.len();
        if n < Self::MIN_TRAIN {
            return Err(MlError::TooFewSamples {
                got: n,
                need: Self::MIN_TRAIN,
            });
        }
        let benign: Vec<Vec<f64>> = if n > Self::CAP {
            (0..Self::CAP)
                .map(|i| self.buf[i * n / Self::CAP].clone())
                .collect()
        } else {
            std::mem::take(&mut self.buf)
        };
        // Per-dimension bounding box, expanded 10% (at least ±0.5 for
        // constant dimensions) so the background sample surrounds the data.
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for x in &benign {
            for d in 0..self.dim {
                lo[d] = lo[d].min(x[d]);
                hi[d] = hi[d].max(x[d]);
            }
        }
        for d in 0..self.dim {
            let pad = (0.1 * (hi[d] - lo[d])).max(0.5);
            lo[d] -= pad;
            hi[d] += pad;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut data: Vec<(Vec<f64>, usize)> = benign.iter().map(|x| (x.clone(), 0)).collect();
        for _ in 0..benign.len() {
            let x: Vec<f64> = (0..self.dim)
                .map(|d| rng.random_range(lo[d]..hi[d]))
                .collect();
            data.push((x, 1));
        }
        let mut tree = DecisionTree::new(6, 4);
        if !tree.fit(&data) {
            return Err(MlError::InvalidConfig("CART fit rejected the data".into()));
        }
        self.buf.clear();
        self.tree = Some(tree);
        Ok(())
    }

    fn score(&self, x: &[f64]) -> Result<f64, MlError> {
        check_dim(self.dim, x)?;
        let tree = self.tree.as_ref().ok_or(MlError::Untrained)?;
        tree.predict_score(x).ok_or(MlError::Untrained)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl CartDetector {
    /// The fitted tree (`None` before `end_training`).
    pub(crate) fn tree(&self) -> Option<&DecisionTree> {
        self.tree.as_ref()
    }
}

// ---------------------------------------------------------------------------
// Calibration & lifecycle
// ---------------------------------------------------------------------------

/// How the alert threshold is derived from the held-out benign slice.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationConfig {
    /// Score quantile of the calibration slice used as the base threshold
    /// (1.0 = maximum benign score). Clamped to `[0, 1]`.
    pub quantile: f64,
    /// Multiplicative safety margin applied to the quantile score.
    pub margin: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        // Max benign calibration score plus 10%: quiet on benign traffic by
        // construction, while volumetric anomalies score far above it.
        CalibrationConfig {
            quantile: 1.0,
            margin: 1.1,
        }
    }
}

/// The staged `Training → Calibrating → Serving` state machine around a
/// [`Detector`].
pub struct Lifecycle {
    det: Box<dyn Detector>,
    stage: Stage,
    cfg: CalibrationConfig,
    cal_scores: Vec<f64>,
}

impl Lifecycle {
    /// Wraps a freshly constructed detector (stage: `Training`).
    pub fn new(det: Box<dyn Detector>, cfg: CalibrationConfig) -> Self {
        Lifecycle {
            det,
            stage: Stage::Training,
            cfg,
            cal_scores: Vec::new(),
        }
    }

    /// Current lifecycle stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &dyn Detector {
        self.det.as_ref()
    }

    fn guard(&self, expected: Stage) -> Result<(), MlError> {
        if self.stage != expected {
            return Err(MlError::WrongStage {
                expected,
                got: self.stage,
            });
        }
        Ok(())
    }

    /// Absorbs one benign training vector (stage: `Training`).
    pub fn train(&mut self, x: &[f64]) -> Result<(), MlError> {
        self.guard(Stage::Training)?;
        self.det.train(x)
    }

    /// Ends training (fits the model) and enters `Calibrating`.
    pub fn begin_calibration(&mut self) -> Result<(), MlError> {
        self.guard(Stage::Training)?;
        self.det.end_training()?;
        self.stage = Stage::Calibrating;
        Ok(())
    }

    /// Scores one held-out benign vector for threshold derivation,
    /// returning the score (stage: `Calibrating`).
    pub fn calibrate(&mut self, x: &[f64]) -> Result<f64, MlError> {
        self.guard(Stage::Calibrating)?;
        let s = self.det.score(x)?;
        self.cal_scores.push(s);
        Ok(s)
    }

    /// Derives the threshold from the calibration scores and freezes the
    /// detector for serving.
    pub fn begin_serving(mut self) -> Result<FrozenDetector, MlError> {
        self.guard(Stage::Calibrating)?;
        if self.cal_scores.is_empty() {
            return Err(MlError::TooFewSamples { got: 0, need: 1 });
        }
        self.cal_scores
            .sort_by(|a, b| a.partial_cmp(b).expect("finite calibration scores"));
        let q = self.cfg.quantile.clamp(0.0, 1.0);
        let idx = ((self.cal_scores.len() - 1) as f64 * q).ceil() as usize;
        let threshold = self.cal_scores[idx] * self.cfg.margin;
        Ok(FrozenDetector {
            det: Arc::from(self.det),
            threshold,
        })
    }
}

/// An immutable, calibrated detector, cheaply cloneable across serving
/// threads.
#[derive(Clone)]
pub struct FrozenDetector {
    det: Arc<dyn Detector>,
    threshold: f64,
}

impl FrozenDetector {
    /// The calibrated alert threshold (alert on `score > threshold`).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Model name of the frozen detector.
    pub fn name(&self) -> &'static str {
        self.det.name()
    }

    /// Feature dimension of the frozen detector.
    pub fn feature_dim(&self) -> usize {
        self.det.feature_dim()
    }

    /// Scores a vector (pure).
    pub fn score(&self, x: &[f64]) -> Result<f64, MlError> {
        self.det.score(x)
    }

    /// Whether a score crosses the calibrated threshold.
    pub fn is_alert(&self, score: f64) -> bool {
        score > self.threshold
    }

    /// The frozen model, for structural passes such as the quantizer.
    pub fn detector(&self) -> &dyn Detector {
        self.det.as_ref()
    }
}

/// Trains `det` on a benign vector slice, calibrating on the trailing
/// `cal_frac` fraction (at least one vector each side), and freezes it.
pub fn train_and_calibrate(
    det: Box<dyn Detector>,
    data: &[&[f64]],
    cal_frac: f64,
    cfg: CalibrationConfig,
) -> Result<FrozenDetector, MlError> {
    if data.len() < 2 {
        return Err(MlError::TooFewSamples {
            got: data.len(),
            need: 2,
        });
    }
    let cal =
        ((data.len() as f64 * cal_frac.clamp(0.0, 1.0)).round() as usize).clamp(1, data.len() - 1);
    let split = data.len() - cal;
    let mut lc = Lifecycle::new(det, cfg);
    for x in &data[..split] {
        lc.train(x)?;
    }
    lc.begin_calibration()?;
    for x in &data[split..] {
        lc.calibrate(x)?;
    }
    lc.begin_serving()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Benign cluster near the origin, in `dim` dimensions. A small
    /// deterministic drift keeps the points non-periodic so held-out
    /// calibration slices never coincide exactly with training points.
    fn benign(dim: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| 1.0 + 0.01 * ((i * 7 + d * 3) % 13) as f64 + 0.0005 * i as f64)
                    .collect()
            })
            .collect()
    }

    fn all_detectors(dim: usize) -> Vec<Box<dyn Detector>> {
        vec![
            Box::new(KitNetDetector::new(dim, 7).unwrap()),
            Box::new(KnnNovelty::new(dim, 3).unwrap()),
            Box::new(CentroidDetector::new(dim).unwrap()),
            Box::new(CartDetector::new(dim, 7).unwrap()),
        ]
    }

    #[test]
    fn every_model_rejects_dim_mismatch_on_train_and_score() {
        for mut det in all_detectors(4) {
            let err = det.train(&[1.0, 2.0]).unwrap_err();
            assert_eq!(
                err,
                MlError::DimMismatch {
                    expected: 4,
                    got: 2
                },
                "{} train",
                det.name()
            );
            for x in benign(4, 80) {
                det.train(&x).unwrap();
            }
            det.end_training().unwrap();
            let err = det.score(&[0.0; 7]).unwrap_err();
            assert_eq!(
                err,
                MlError::DimMismatch {
                    expected: 4,
                    got: 7
                },
                "{} score",
                det.name()
            );
        }
    }

    #[test]
    fn every_model_scores_anomaly_above_benign() {
        for mut det in all_detectors(3) {
            for x in benign(3, 120) {
                det.train(&x).unwrap();
            }
            det.end_training().unwrap();
            let normal = det.score(&[1.0, 1.05, 1.1]).unwrap();
            let weird = det.score(&[80.0, -40.0, 900.0]).unwrap();
            assert!(
                weird > normal,
                "{}: anomaly {weird} not above benign {normal}",
                det.name()
            );
        }
    }

    #[test]
    fn score_before_training_is_typed_error() {
        let det = KnnNovelty::new(2, 1).unwrap();
        assert_eq!(det.score(&[0.0, 0.0]), Err(MlError::Untrained));
        let det = CentroidDetector::new(2).unwrap();
        assert_eq!(det.score(&[0.0, 0.0]), Err(MlError::Untrained));
        let det = CartDetector::new(2, 1).unwrap();
        assert_eq!(det.score(&[0.0, 0.0]), Err(MlError::Untrained));
        let det = KitNetDetector::new(2, 1).unwrap();
        assert_eq!(det.score(&[0.0, 0.0]), Err(MlError::Untrained));
    }

    #[test]
    fn too_few_samples_is_typed_error() {
        let mut det = KitNetDetector::new(2, 1).unwrap();
        det.train(&[1.0, 1.0]).unwrap();
        assert!(matches!(
            det.end_training(),
            Err(MlError::TooFewSamples { got: 1, .. })
        ));
        let mut det = KnnNovelty::new(2, 5).unwrap();
        det.train(&[1.0, 1.0]).unwrap();
        assert!(matches!(
            det.end_training(),
            Err(MlError::TooFewSamples { got: 1, need: 5 })
        ));
    }

    #[test]
    fn lifecycle_enforces_stage_order() {
        let det = Box::new(CentroidDetector::new(2).unwrap());
        let mut lc = Lifecycle::new(det, CalibrationConfig::default());
        assert_eq!(lc.stage(), Stage::Training);
        // Calibrating before training ended is a typed stage error.
        assert_eq!(
            lc.calibrate(&[1.0, 1.0]),
            Err(MlError::WrongStage {
                expected: Stage::Calibrating,
                got: Stage::Training
            })
        );
        lc.train(&[1.0, 2.0]).unwrap();
        lc.begin_calibration().unwrap();
        assert_eq!(lc.stage(), Stage::Calibrating);
        // Training after calibration began is a typed stage error.
        assert_eq!(
            lc.train(&[1.0, 2.0]),
            Err(MlError::WrongStage {
                expected: Stage::Training,
                got: Stage::Calibrating
            })
        );
        lc.calibrate(&[1.0, 2.1]).unwrap();
        let frozen = lc.begin_serving().unwrap();
        assert!(frozen.threshold() >= 0.0);
    }

    #[test]
    fn serving_without_calibration_scores_is_error() {
        let det = Box::new(CentroidDetector::new(1).unwrap());
        let mut lc = Lifecycle::new(det, CalibrationConfig::default());
        lc.train(&[1.0]).unwrap();
        lc.begin_calibration().unwrap();
        assert!(matches!(
            lc.begin_serving(),
            Err(MlError::TooFewSamples { got: 0, need: 1 })
        ));
    }

    #[test]
    fn calibrated_threshold_tracks_benign_quantile() {
        let data = benign(3, 200);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let det = Box::new(KnnNovelty::new(3, 3).unwrap());
        let frozen = train_and_calibrate(
            det,
            &refs,
            0.25,
            CalibrationConfig {
                quantile: 1.0,
                margin: 1.1,
            },
        )
        .unwrap();
        // Benign-like traffic (an interior training point) stays under the
        // threshold…
        let s = frozen.score(&data[10]).unwrap();
        assert!(
            !frozen.is_alert(s),
            "benign scored {s} > {}",
            frozen.threshold()
        );
        // …while a gross anomaly crosses it.
        let s = frozen.score(&[500.0, 500.0, 500.0]).unwrap();
        assert!(frozen.is_alert(s));
    }

    #[test]
    fn frozen_detector_is_shareable_and_pure() {
        let data = benign(2, 100);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let frozen = train_and_calibrate(
            Box::new(CentroidDetector::new(2).unwrap()),
            &refs,
            0.2,
            CalibrationConfig::default(),
        )
        .unwrap();
        let a = frozen.clone();
        let h = std::thread::spawn(move || a.score(&[3.0, 4.0]).unwrap());
        let s1 = h.join().unwrap();
        let s2 = frozen.score(&[3.0, 4.0]).unwrap();
        assert_eq!(s1.to_bits(), s2.to_bits(), "score must be pure");
    }
}
