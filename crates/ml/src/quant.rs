//! Fixed-point quantization of frozen detectors for in-pipeline inference.
//!
//! The NIC cycle model executes integer ALU ops; running a detector *inside*
//! the extraction pipeline therefore needs the frozen float model lowered to
//! a pure-integer program. This module compiles a [`FrozenDetector`] into a
//! [`QuantizedDetector`] of Qm.n fixed-point ops:
//!
//! - **KitNET**: the input min–max normalizer folds into a per-feature
//!   affine scale/zero-point pair producing activations at `FA` fraction
//!   bits; each autoencoder becomes an integer matvec (weights at `FW`
//!   bits, `i128` accumulators, shift-round back to `FA`) with the sigmoid
//!   replaced by a 512-segment piecewise second-order Taylor table; RMSEs
//!   and the output normalizer stay integer end to end (integer square
//!   root, reciprocal-by-multiplication).
//! - **Nearest centroid**: one global power-of-two input grid, integer dot
//!   product and norms, one rounded division for the cosine.
//! - **CART**: thresholds snap to a power-of-two grid (`floor(t·2^s)`), so
//!   routing is *exact* whenever inputs land on the grid; leaves carry the
//!   positive fraction at `FA` bits.
//!
//! Every lowering records enough metadata ([`QuantizedDetector::error_bound`])
//! to compute a worst-case |float − quantized| score bound analytically —
//! the basis of the SF09xx certification pass in `superfe-policy`. Scoring
//! is pure integer after the initial (exact, power-of-two) float-to-grid
//! conversion, hence bitwise deterministic across threads and worker
//! counts.

use crate::detector::{CartDetector, CentroidDetector, FrozenDetector, KitNetDetector, MlError};
use crate::kitnet::KitNet;
use crate::tree::FlatNode;

/// Quantization parameters: the Qm.n format split.
#[derive(Clone, Copy, Debug)]
pub struct QuantConfig {
    /// Fraction bits of activations and scores (`FA`).
    pub frac_bits: u32,
    /// Fraction bits of weights (`FW`).
    pub weight_bits: u32,
    /// Upper bound on |feature value| used to size the input grids of the
    /// centroid and CART lowerings (KitNET's affine input layer clamps and
    /// needs no hint). The SF09xx pass derives this from the policy's
    /// SF05xx interval hull; the default covers modest feature magnitudes.
    pub max_abs_input: f64,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            frac_bits: 24,
            weight_bits: 24,
            max_abs_input: (1u64 << 20) as f64,
        }
    }
}

/// Why a detector could not be quantized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuantError {
    /// The model family has no fixed-point lowering (e.g. k-NN, whose
    /// score needs the full training set at runtime).
    Unsupported(&'static str),
    /// The detector never finished training.
    Untrained,
    /// The model or config is degenerate for the chosen Q-format.
    Degenerate(String),
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Unsupported(name) => {
                write!(f, "detector '{name}' has no fixed-point lowering")
            }
            QuantError::Untrained => write!(f, "detector has not finished training"),
            QuantError::Degenerate(msg) => write!(f, "quantization is degenerate: {msg}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// One layer's contribution to the certified score error.
#[derive(Clone, Debug)]
pub struct LayerBound {
    /// Layer name (e.g. `"ensemble-autoencoders"`, `"output-norm"`).
    pub layer: String,
    /// The error this layer *adds* to the bound (absolute score units).
    pub bound: f64,
}

/// An analytically certified worst-case |float − quantized| score bound.
#[derive(Clone, Debug)]
pub struct ErrorBound {
    /// Total worst-case score error; `f64::INFINITY` when no finite bound
    /// is provable for the given input domain (see [`ErrorBound::culprit`]).
    pub bound: f64,
    /// Per-layer additive contributions, in evaluation order.
    pub per_layer: Vec<LayerBound>,
    /// The layer blocking certification (infinite bound) or contributing
    /// the most error (finite bound).
    pub culprit: Option<String>,
    /// CART only: the bound holds only for inputs that land exactly on the
    /// quantization grid (integer-valued features when the grid exponent is
    /// ≥ 1). Off-grid inputs can flip a split, so no general bound exists.
    pub grid_exact_only: bool,
}

// ---------------------------------------------------------------------------
// Fixed-point primitives
// ---------------------------------------------------------------------------

/// Arithmetic right shift with round-half-away-from-zero.
fn rshift_round(v: i128, s: u32) -> i128 {
    if s == 0 {
        return v;
    }
    let half = 1i128 << (s - 1);
    if v >= 0 {
        (v + half) >> s
    } else {
        -((-v + half) >> s)
    }
}

/// Rounded signed division (`d > 0`).
fn div_round(n: i128, d: i128) -> i128 {
    let half = d / 2;
    if n >= 0 {
        (n + half) / d
    } else {
        -((-n + half) / d)
    }
}

/// Floor integer square root.
fn isqrt_u128(v: u128) -> u128 {
    if v == 0 {
        return 0;
    }
    // Newton's method from an overestimate converges to floor(sqrt(v)).
    let bits = 128 - v.leading_zeros();
    let mut x = 1u128 << bits.div_ceil(2);
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

fn pow2(e: i32) -> f64 {
    (2f64).powi(e)
}

/// Saturating float → fixed-point grid conversion. The scale is a power of
/// two, so the multiplication is exact in f64 and the only error is the
/// final round (≤ half a grid step).
fn to_grid(v: f64, scale: f64, cap: i64) -> i64 {
    let q = (v * scale).round();
    let capf = cap as f64;
    if q.is_nan() {
        0
    } else if q >= capf {
        cap
    } else if q <= -capf {
        -cap
    } else {
        q as i64
    }
}

/// Saturation cap for grid-quantized inputs (leaves i128 headroom for
/// dot products over hundreds of dimensions).
const GRID_CAP: i64 = 1 << 41;

// ---------------------------------------------------------------------------
// Piecewise-Taylor sigmoid
// ---------------------------------------------------------------------------

/// Segments of the sigmoid table.
const SIG_SEGMENTS: usize = 512;
/// Half-width of the approximated domain `[-16, 16)`; `Δ = 32/512 = 2⁻⁴`.
const SIG_HALF_RANGE: f64 = 16.0;

/// σ(x) as 512 second-order Taylor segments over `[-16, 16)`, evaluated in
/// pure integer arithmetic at `frac_bits` fraction bits.
#[derive(Clone, Debug)]
struct QSigmoid {
    frac_bits: u32,
    /// `-16 · 2^frac_bits`.
    lo_q: i64,
    /// `log2(Δ · 2^frac_bits)` — the segment-index shift.
    seg_shift: u32,
    /// σ(c) per segment center, at `frac_bits`.
    c0: Vec<i64>,
    /// σ′(c) per segment center, at `frac_bits`.
    c1: Vec<i64>,
    /// σ″(c)/2 per segment center, at `frac_bits`.
    c2: Vec<i64>,
}

fn sigmoid_f(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl QSigmoid {
    fn build(frac_bits: u32) -> Self {
        let scale = pow2(frac_bits as i32);
        let delta = 2.0 * SIG_HALF_RANGE / SIG_SEGMENTS as f64;
        let mut c0 = Vec::with_capacity(SIG_SEGMENTS);
        let mut c1 = Vec::with_capacity(SIG_SEGMENTS);
        let mut c2 = Vec::with_capacity(SIG_SEGMENTS);
        for k in 0..SIG_SEGMENTS {
            let c = -SIG_HALF_RANGE + (k as f64 + 0.5) * delta;
            let s = sigmoid_f(c);
            let d1 = s * (1.0 - s);
            let d2_half = d1 * (1.0 - 2.0 * s) / 2.0;
            c0.push((s * scale).round() as i64);
            c1.push((d1 * scale).round() as i64);
            c2.push((d2_half * scale).round() as i64);
        }
        QSigmoid {
            frac_bits,
            lo_q: -((SIG_HALF_RANGE * scale) as i64),
            // Δ = 2⁻⁴, so a segment spans 2^(frac_bits − 4) grid units.
            seg_shift: frac_bits - 4,
            c0,
            c1,
            c2,
        }
    }

    /// σ(z/2^frac_bits) at `frac_bits` fraction bits, clamped to `[0, 1]`.
    fn eval(&self, z: i64) -> i64 {
        let one = 1i64 << self.frac_bits;
        if z <= self.lo_q {
            return 0;
        }
        if z >= -self.lo_q {
            return one;
        }
        let k = ((z - self.lo_q) >> self.seg_shift) as usize;
        let center = self.lo_q + ((2 * k as i64 + 1) << (self.seg_shift - 1));
        let u = z - center;
        let fa = self.frac_bits;
        let t1 = rshift_round(i128::from(self.c1[k]) * i128::from(u), fa);
        let u2 = rshift_round(i128::from(u) * i128::from(u), fa);
        let t2 = rshift_round(i128::from(self.c2[k]) * u2, fa);
        (i128::from(self.c0[k]) + t1 + t2).clamp(0, i128::from(one)) as i64
    }

    /// Certified |table − σ| bound: Taylor remainder + tail clamp +
    /// coefficient and evaluation rounding.
    fn approx_error(frac_bits: u32) -> f64 {
        let half_step = SIG_HALF_RANGE / SIG_SEGMENTS as f64; // Δ/2
        let taylor = 0.25 / 6.0 * half_step.powi(3); // |σ‴| ≤ 1/4
        let tail = sigmoid_f(-SIG_HALF_RANGE);
        let rounding = 4.0 * pow2(-(frac_bits as i32 + 1));
        taylor + tail + rounding
    }
}

// ---------------------------------------------------------------------------
// Quantized KitNET
// ---------------------------------------------------------------------------

/// Per-feature affine input quantization (the min–max normalizer folded
/// into fixed point): `x_q = round(clamp((x − min)/range, 0, 1) · 2^FA)`,
/// flat ranges pinned to exactly ½.
#[derive(Clone, Debug)]
struct QAffine {
    mins: Vec<f64>,
    /// `≤ 0` marks a flat (constant) dimension.
    ranges: Vec<f64>,
}

impl QAffine {
    fn eval_into(&self, x: &[f64], frac_bits: u32, out: &mut Vec<i64>) {
        let one = 1i64 << frac_bits;
        let scale = pow2(frac_bits as i32);
        out.clear();
        for (i, (&min, &range)) in self.mins.iter().zip(&self.ranges).enumerate() {
            if range <= 0.0 {
                out.push(one / 2);
            } else {
                // Same f64 expression as MinMaxNorm::transform, then an
                // exact power-of-two scale and one round.
                let v = x.get(i).copied().unwrap_or(0.0);
                let n = ((v - min) / range).clamp(0.0, 1.0);
                out.push((n * scale).round() as i64);
            }
        }
    }
}

/// One out-normalizer dimension in fixed point.
#[derive(Clone, Debug)]
enum QNormEntry {
    /// Flat training range → exactly ½.
    Flat,
    /// `clamp((r_q − min_q) · m / 2^t, 0, 2^FA)` with `m/2^t ≈ 1/range`.
    Affine {
        min_q: i64,
        m: i64,
        t: u32,
        /// The float range, kept for the error bound.
        range: f64,
    },
}

impl QNormEntry {
    fn eval(&self, r_q: i64, frac_bits: u32) -> i64 {
        let one = 1i64 << frac_bits;
        match self {
            QNormEntry::Flat => one / 2,
            QNormEntry::Affine { min_q, m, t, .. } => {
                let v = rshift_round(i128::from(r_q - min_q) * i128::from(*m), *t);
                v.clamp(0, i128::from(one)) as i64
            }
        }
    }
}

/// Builds the `(m, t)` reciprocal pair with ≥ 25 significant bits:
/// `m/2^t ≈ 1/range`.
fn recip(range: f64) -> Option<(i64, u32)> {
    if !(range.is_finite() && range > 0.0) {
        return None;
    }
    let l = range.log2().floor() as i32;
    let t = (l + 26).max(0);
    let m = (pow2(t) / range).round();
    if !(m.is_finite() && m >= 1.0 && m < pow2(62)) {
        return None;
    }
    Some((m as i64, t as u32))
}

/// One autoencoder in fixed point: weights at `FW` bits, biases at
/// `FA + FW` bits so the accumulated pre-activation sits at `FA + FW`.
#[derive(Clone, Debug)]
struct QAutoencoder {
    d: usize,
    h: usize,
    w1: Vec<i64>,
    b1: Vec<i64>,
    w2: Vec<i64>,
    b2: Vec<i64>,
    /// Max row L1 norm of the *quantized* encoder weights (real units).
    w1_row_l1: f64,
    /// Max row L1 norm of the *quantized* decoder weights (real units).
    w2_row_l1: f64,
}

impl QAutoencoder {
    fn build(ae: &crate::autoencoder::Autoencoder, frac_bits: u32, weight_bits: u32) -> Self {
        let d = ae.input_dim();
        let h = ae.hidden_dim();
        let (w1, b1, w2, b2) = ae.weights();
        let ws = pow2(weight_bits as i32);
        let bs = pow2((frac_bits + weight_bits) as i32);
        let qw = |w: &[f64]| -> Vec<i64> { w.iter().map(|&v| (v * ws).round() as i64).collect() };
        let qb = |b: &[f64]| -> Vec<i64> { b.iter().map(|&v| (v * bs).round() as i64).collect() };
        let w1q = qw(w1);
        let w2q = qw(w2);
        let row_l1 = |w: &[i64], rows: usize, cols: usize| -> f64 {
            (0..rows)
                .map(|i| {
                    w[i * cols..(i + 1) * cols]
                        .iter()
                        .map(|&v| v.abs() as f64)
                        .sum::<f64>()
                        / ws
                })
                .fold(0.0, f64::max)
        };
        let w1_row_l1 = row_l1(&w1q, h, d);
        let w2_row_l1 = row_l1(&w2q, d, h);
        QAutoencoder {
            d,
            h,
            w1: w1q,
            b1: qb(b1),
            w2: qw(w2),
            b2: qb(b2),
            w1_row_l1,
            w2_row_l1,
        }
    }

    fn layer(
        w: &[i64],
        b: &[i64],
        (rows, cols): (usize, usize),
        x: &[i64],
        sig: &QSigmoid,
        weight_bits: u32,
        out: &mut Vec<i64>,
    ) {
        out.clear();
        for i in 0..rows {
            let mut acc = i128::from(b[i]);
            for j in 0..cols {
                acc += i128::from(w[i * cols + j]) * i128::from(x[j]);
            }
            let z = rshift_round(acc, weight_bits) as i64;
            out.push(sig.eval(z));
        }
    }

    /// Integer reconstruction RMSE at `frac_bits` fraction bits.
    fn rmse_q(&self, x: &[i64], sig: &QSigmoid, weight_bits: u32) -> i64 {
        let mut hid = Vec::with_capacity(self.h);
        let mut out = Vec::with_capacity(self.d);
        Self::layer(
            &self.w1,
            &self.b1,
            (self.h, self.d),
            x,
            sig,
            weight_bits,
            &mut hid,
        );
        Self::layer(
            &self.w2,
            &self.b2,
            (self.d, self.h),
            &hid,
            sig,
            weight_bits,
            &mut out,
        );
        let mut sum: u128 = 0;
        for (&a, &b) in x.iter().zip(&out) {
            let d = i128::from(a - b);
            sum += (d * d) as u128;
        }
        let n = self.d as u128;
        let mean = (sum + n / 2) / n;
        isqrt_u128(mean) as i64
    }

    /// Propagates an input L∞ error through this autoencoder to an output
    /// L∞ error (inputs assumed in `[0, 1]` up to `eps_in`).
    fn propagate_error(&self, eps_in: f64, eps_sig: f64, fa: i32, fw: i32) -> f64 {
        let shift_round = pow2(-(fa + 1));
        let bias_round = pow2(-(fa + fw + 1));
        let w_round = pow2(-(fw + 1));
        let eps_z1 = self.w1_row_l1 * eps_in + self.d as f64 * w_round + shift_round + bias_round;
        let eps_hid = eps_sig + eps_z1 / 4.0;
        let eps_z2 = self.w2_row_l1 * eps_hid + self.h as f64 * w_round + shift_round + bias_round;
        eps_sig + eps_z2 / 4.0
    }

    /// ALU ops of one forward pass + RMSE.
    fn alu_ops(&self) -> u64 {
        const SIG_OPS: u64 = 8;
        const ISQRT_OPS: u64 = 40;
        let (d, h) = (self.d as u64, self.h as u64);
        h * (2 * d + 2 + SIG_OPS) + d * (2 * h + 2 + SIG_OPS) + 3 * d + ISQRT_OPS
    }
}

#[derive(Clone, Debug)]
struct QKitNet {
    input: QAffine,
    clusters: Vec<Vec<usize>>,
    ensemble: Vec<QAutoencoder>,
    out_norm: Vec<QNormEntry>,
    output: QAutoencoder,
    sigmoid: QSigmoid,
}

impl QKitNet {
    fn build(k: &KitNet, cfg: &QuantConfig) -> Result<Self, QuantError> {
        let (mins, maxs) = k.input_norm().ranges();
        if mins.len() != k.dim() {
            return Err(QuantError::Degenerate(
                "input normalizer dimension mismatch".into(),
            ));
        }
        let input = QAffine {
            mins: mins.to_vec(),
            ranges: mins.iter().zip(maxs).map(|(lo, hi)| hi - lo).collect(),
        };
        if input.mins.iter().any(|v| !v.is_finite()) || input.ranges.iter().any(|v| !v.is_finite())
        {
            return Err(QuantError::Degenerate("non-finite normalizer range".into()));
        }
        let output_ae = k.output_layer().ok_or(QuantError::Untrained)?;
        let ensemble: Vec<QAutoencoder> = k
            .ensemble()
            .iter()
            .map(|ae| QAutoencoder::build(ae, cfg.frac_bits, cfg.weight_bits))
            .collect();
        let (omins, omaxs) = k.output_norm().ranges();
        if omins.len() != ensemble.len() {
            return Err(QuantError::Degenerate(
                "output normalizer dimension mismatch".into(),
            ));
        }
        let scale = pow2(cfg.frac_bits as i32);
        let mut out_norm = Vec::with_capacity(omins.len());
        for (&lo, &hi) in omins.iter().zip(omaxs) {
            let range = hi - lo;
            if range <= 0.0 {
                out_norm.push(QNormEntry::Flat);
            } else {
                let (m, t) = recip(range).ok_or_else(|| {
                    QuantError::Degenerate(format!("output-norm range {range} not representable"))
                })?;
                out_norm.push(QNormEntry::Affine {
                    min_q: (lo * scale).round() as i64,
                    m,
                    t,
                    range,
                });
            }
        }
        Ok(QKitNet {
            input,
            clusters: k.feature_clusters().to_vec(),
            ensemble,
            out_norm,
            output: QAutoencoder::build(output_ae, cfg.frac_bits, cfg.weight_bits),
            sigmoid: QSigmoid::build(cfg.frac_bits),
        })
    }

    fn score_q(&self, x: &[f64], frac_bits: u32, weight_bits: u32) -> i64 {
        let mut xn = Vec::with_capacity(self.input.mins.len());
        self.input.eval_into(x, frac_bits, &mut xn);
        let mut sub = Vec::new();
        let mut rn = Vec::with_capacity(self.ensemble.len());
        for (c, ae) in self.clusters.iter().zip(&self.ensemble) {
            sub.clear();
            sub.extend(c.iter().map(|&i| xn[i]));
            let r = ae.rmse_q(&sub, &self.sigmoid, weight_bits);
            rn.push(self.out_norm[rn.len()].eval(r, frac_bits));
        }
        self.output.rmse_q(&rn, &self.sigmoid, weight_bits)
    }

    fn error_bound(&self, frac_bits: u32, weight_bits: u32) -> ErrorBound {
        let fa = frac_bits as i32;
        let fw = weight_bits as i32;
        let eps_sig = QSigmoid::approx_error(frac_bits);
        let rmse_round = pow2(-(fa - 1));
        // Input affine layer: an exact power-of-two scale, one round.
        let eps_xn = pow2(-(fa + 1));
        // Ensemble: worst autoencoder, plus the integer-RMSE rounding.
        let eps_r = self
            .ensemble
            .iter()
            .map(|ae| ae.propagate_error(eps_xn, eps_sig, fa, fw).max(eps_xn) + rmse_round)
            .fold(0.0, f64::max);
        // Output normalizer: (eps_r + min rounding)/range, reciprocal
        // relative error, shift rounding. Clamping is 1-Lipschitz, so the
        // unclamped bound transfers.
        let eps_rn = self
            .out_norm
            .iter()
            .map(|e| match e {
                QNormEntry::Flat => 0.0,
                QNormEntry::Affine { range, .. } => {
                    (eps_r + 2.0 * pow2(-(fa + 1))) / range + 2.0 * pow2(-25) + pow2(-fa)
                }
            })
            .fold(0.0, f64::max);
        // Output autoencoder + final integer RMSE.
        let bound = self
            .output
            .propagate_error(eps_rn, eps_sig, fa, fw)
            .max(eps_rn)
            + rmse_round;
        let per_layer = vec![
            LayerBound {
                layer: "input-quantization".into(),
                bound: eps_xn,
            },
            LayerBound {
                layer: "ensemble-autoencoders".into(),
                bound: (eps_r - eps_xn).max(0.0),
            },
            LayerBound {
                layer: "output-norm".into(),
                bound: (eps_rn - eps_r).max(0.0),
            },
            LayerBound {
                layer: "output-autoencoder".into(),
                bound: (bound - eps_rn).max(0.0),
            },
        ];
        let culprit = per_layer
            .iter()
            .max_by(|a, b| a.bound.partial_cmp(&b.bound).expect("finite layer bounds"))
            .map(|l| l.layer.clone());
        ErrorBound {
            bound,
            per_layer,
            culprit,
            grid_exact_only: false,
        }
    }

    fn alu_ops(&self, dim: usize) -> u64 {
        let input = 3 * dim as u64;
        let ensemble: u64 = self.ensemble.iter().map(QAutoencoder::alu_ops).sum();
        let norm = 4 * self.out_norm.len() as u64;
        input + ensemble + norm + self.output.alu_ops()
    }
}

// ---------------------------------------------------------------------------
// Quantized nearest centroid
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct QCentroid {
    /// Grid exponent: `x_q = round(x · 2^in_shift)` (may be negative —
    /// a coarser-than-integer grid for large feature magnitudes).
    in_shift: i32,
    c_q: Vec<i64>,
    /// `isqrt(Σ c_q²)` precomputed.
    c_norm_q: i64,
    /// Float centroid L2 norm, for the error bound.
    c_norm_f: f64,
}

impl QCentroid {
    fn build(centroid: &[f64], cfg: &QuantConfig) -> Result<Self, QuantError> {
        let in_shift = grid_shift(cfg.max_abs_input, 40)?;
        let scale = pow2(in_shift);
        let mut c_q = Vec::with_capacity(centroid.len());
        for &v in centroid {
            let q = (v * scale).round();
            if !(q.is_finite() && q.abs() <= GRID_CAP as f64) {
                return Err(QuantError::Degenerate(format!(
                    "centroid coordinate {v} exceeds the Q-format input range"
                )));
            }
            c_q.push(q as i64);
        }
        let n2: u128 = c_q
            .iter()
            .map(|&v| (i128::from(v) * i128::from(v)) as u128)
            .sum();
        let c_norm_f = centroid.iter().map(|v| v * v).sum::<f64>().sqrt();
        Ok(QCentroid {
            in_shift,
            c_q,
            c_norm_q: isqrt_u128(n2) as i64,
            c_norm_f,
        })
    }

    /// `1 − cos(x, c)` at `frac_bits` fraction bits. A zero-norm side
    /// yields cosine 0 (score exactly 1), mirroring the float model.
    fn score_q(&self, x: &[f64], frac_bits: u32) -> i64 {
        let scale = pow2(self.in_shift);
        let one = 1i128 << frac_bits;
        let mut dot: i128 = 0;
        let mut nx2: u128 = 0;
        for (i, &c) in self.c_q.iter().enumerate() {
            let xq = to_grid(x.get(i).copied().unwrap_or(0.0), scale, GRID_CAP);
            dot += i128::from(xq) * i128::from(c);
            nx2 += (i128::from(xq) * i128::from(xq)) as u128;
        }
        let na = isqrt_u128(nx2) as i128;
        let nb = i128::from(self.c_norm_q);
        if na == 0 || nb == 0 {
            return one as i64;
        }
        let cos = div_round(dot.saturating_mul(one), na * nb).clamp(-one, one);
        (one - cos) as i64
    }

    fn error_bound(&self, domain: &[(f64, f64)], frac_bits: u32) -> ErrorBound {
        let unprovable = |layer: &str| ErrorBound {
            bound: f64::INFINITY,
            per_layer: Vec::new(),
            culprit: Some(layer.to_string()),
            grid_exact_only: false,
        };
        if domain
            .iter()
            .any(|(lo, hi)| !(lo.is_finite() && hi.is_finite()))
        {
            return unprovable("input-interval");
        }
        // Hull must fit the grid without saturation.
        let max_abs = domain
            .iter()
            .map(|(lo, hi)| lo.abs().max(hi.abs()))
            .fold(0.0, f64::max);
        if max_abs * pow2(self.in_shift) > GRID_CAP as f64 {
            return unprovable("input-scale");
        }
        // Cosine needs a positive lower bound on ‖x‖ over the domain.
        let l2: f64 = domain
            .iter()
            .map(|(lo, hi)| {
                if *lo <= 0.0 && *hi >= 0.0 {
                    0.0
                } else {
                    lo.abs().min(hi.abs()).powi(2)
                }
            })
            .sum();
        let l = l2.sqrt();
        if l <= 0.0 {
            return unprovable("input-norm");
        }
        if self.c_norm_f <= 0.0 {
            return unprovable("centroid-norm");
        }
        let d = self.c_q.len() as f64;
        let eps_grid = pow2(-(self.in_shift + 1));
        let input = 2.0 * d.sqrt() * eps_grid / l;
        let centroid = 2.0 * d.sqrt() * eps_grid / self.c_norm_f;
        let cosine = 2.0 / (l * pow2(self.in_shift))
            + 2.0 / (self.c_norm_f * pow2(self.in_shift))
            + pow2(-(frac_bits as i32 - 1));
        let per_layer = vec![
            LayerBound {
                layer: "input-quantization".into(),
                bound: input,
            },
            LayerBound {
                layer: "centroid-quantization".into(),
                bound: centroid,
            },
            LayerBound {
                layer: "integer-cosine".into(),
                bound: cosine,
            },
        ];
        let culprit = per_layer
            .iter()
            .max_by(|a, b| a.bound.partial_cmp(&b.bound).expect("finite layer bounds"))
            .map(|lb| lb.layer.clone());
        ErrorBound {
            bound: input + centroid + cosine,
            per_layer,
            culprit,
            grid_exact_only: false,
        }
    }

    fn alu_ops(&self) -> u64 {
        const ISQRT_OPS: u64 = 40;
        6 * self.c_q.len() as u64 + 2 * ISQRT_OPS + 8
    }
}

/// Largest grid exponent keeping `max_abs · 2^s ≤ 2^cap_bits`.
fn grid_shift(max_abs: f64, cap_bits: i32) -> Result<i32, QuantError> {
    if !(max_abs.is_finite() && max_abs > 0.0) {
        return Err(QuantError::Degenerate(format!(
            "input magnitude hint {max_abs} is not a positive finite value"
        )));
    }
    let s = (f64::from(cap_bits) - max_abs.log2()).floor() as i32;
    if s < -60 {
        return Err(QuantError::Degenerate(format!(
            "input magnitude hint {max_abs} exceeds any representable grid"
        )));
    }
    Ok(s.min(40))
}

// ---------------------------------------------------------------------------
// Quantized CART
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum QCartNode {
    Leaf {
        p_pos_q: i64,
    },
    Split {
        feature: u32,
        thr_q: i64,
        left: u32,
        right: u32,
    },
}

#[derive(Clone, Debug)]
struct QCart {
    nodes: Vec<QCartNode>,
    in_shift: i32,
    depth: u32,
}

impl QCart {
    fn build(flat: &[FlatNode], cfg: &QuantConfig) -> Result<Self, QuantError> {
        // CART thresholds must stay exactly representable after scaling, so
        // cap the grid at frac_bits even when the hull would allow finer.
        let in_shift = grid_shift(cfg.max_abs_input, 40)?.min(cfg.frac_bits as i32);
        let scale = pow2(in_shift);
        let pscale = pow2(cfg.frac_bits as i32);
        let mut nodes = Vec::with_capacity(flat.len());
        for n in flat {
            match n {
                FlatNode::Leaf { p_pos } => nodes.push(QCartNode::Leaf {
                    p_pos_q: (p_pos * pscale).round() as i64,
                }),
                FlatNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // floor(t · 2^s): with x on the grid, `x ≤ t` ⟺
                    // `x_q ≤ thr_q` — routing is exact.
                    let t = (threshold * scale).floor();
                    if !(t.is_finite() && t.abs() < pow2(50)) {
                        return Err(QuantError::Degenerate(format!(
                            "split threshold {threshold} exceeds the Q-format grid"
                        )));
                    }
                    nodes.push(QCartNode::Split {
                        feature: *feature as u32,
                        thr_q: t as i64,
                        left: *left as u32,
                        right: *right as u32,
                    });
                }
            }
        }
        let depth = Self::depth_of(&nodes, 0, 0);
        Ok(QCart {
            nodes,
            in_shift,
            depth,
        })
    }

    fn depth_of(nodes: &[QCartNode], at: usize, acc: u32) -> u32 {
        match nodes[at] {
            QCartNode::Leaf { .. } => acc + 1,
            QCartNode::Split { left, right, .. } => Self::depth_of(nodes, left as usize, acc + 1)
                .max(Self::depth_of(nodes, right as usize, acc + 1)),
        }
    }

    fn score_q(&self, x: &[f64]) -> i64 {
        let scale = pow2(self.in_shift);
        let mut at = 0usize;
        loop {
            match self.nodes[at] {
                QCartNode::Leaf { p_pos_q } => return p_pos_q,
                QCartNode::Split {
                    feature,
                    thr_q,
                    left,
                    right,
                } => {
                    let v = x.get(feature as usize).copied().unwrap_or(0.0);
                    let xq = to_grid(v, scale, GRID_CAP);
                    at = if xq <= thr_q { left } else { right } as usize;
                }
            }
        }
    }

    fn error_bound(&self, domain: &[(f64, f64)], frac_bits: u32) -> ErrorBound {
        let unprovable = |layer: &str| ErrorBound {
            bound: f64::INFINITY,
            per_layer: Vec::new(),
            culprit: Some(layer.to_string()),
            grid_exact_only: true,
        };
        if domain
            .iter()
            .any(|(lo, hi)| !(lo.is_finite() && hi.is_finite()))
        {
            return unprovable("input-interval");
        }
        let max_abs = domain
            .iter()
            .map(|(lo, hi)| lo.abs().max(hi.abs()))
            .fold(0.0, f64::max);
        if max_abs * pow2(self.in_shift) > GRID_CAP as f64 {
            return unprovable("input-scale");
        }
        if self.in_shift < 1 {
            // Integer features need at least a half-integer grid to place
            // midpoint thresholds exactly.
            return unprovable("split-grid");
        }
        let leaf = pow2(-(frac_bits as i32 + 1));
        ErrorBound {
            bound: leaf,
            per_layer: vec![
                LayerBound {
                    layer: "split-grid".into(),
                    bound: 0.0,
                },
                LayerBound {
                    layer: "leaf-probability".into(),
                    bound: leaf,
                },
            ],
            culprit: Some("leaf-probability".into()),
            grid_exact_only: true,
        }
    }

    fn alu_ops(&self) -> u64 {
        4 * u64::from(self.depth) + 2
    }
}

// ---------------------------------------------------------------------------
// The quantized detector
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum QuantModel {
    KitNet(Box<QKitNet>),
    Centroid(QCentroid),
    Cart(QCart),
}

/// A frozen detector lowered to Qm.n fixed-point integer arithmetic.
///
/// Scores are pure integer after an exact power-of-two grid conversion of
/// the inputs, hence bitwise deterministic everywhere; the returned float
/// score `score_q / 2^FA` is exactly representable.
#[derive(Clone, Debug)]
pub struct QuantizedDetector {
    model: QuantModel,
    name: &'static str,
    dim: usize,
    frac_bits: u32,
    weight_bits: u32,
    threshold_q: i64,
}

/// Lowers a frozen detector into fixed point.
///
/// Supports KitNET, nearest-centroid, and CART; k-NN has no bounded-state
/// lowering and returns [`QuantError::Unsupported`].
pub fn quantize(
    frozen: &FrozenDetector,
    cfg: &QuantConfig,
) -> Result<QuantizedDetector, QuantError> {
    if !(8..=30).contains(&cfg.frac_bits) || !(8..=30).contains(&cfg.weight_bits) {
        return Err(QuantError::Degenerate(format!(
            "frac_bits {} / weight_bits {} outside the supported 8..=30 range",
            cfg.frac_bits, cfg.weight_bits
        )));
    }
    let threshold = frozen.threshold();
    if !(threshold.is_finite() && threshold.abs() * pow2(cfg.frac_bits as i32) < pow2(60)) {
        return Err(QuantError::Degenerate(format!(
            "calibrated threshold {threshold} not representable at Q{}",
            cfg.frac_bits
        )));
    }
    let det = frozen.detector();
    let any = det.as_any();
    let model = if let Some(k) = any.downcast_ref::<KitNetDetector>() {
        QuantModel::KitNet(Box::new(QKitNet::build(
            k.model().ok_or(QuantError::Untrained)?,
            cfg,
        )?))
    } else if let Some(c) = any.downcast_ref::<CentroidDetector>() {
        if !c.is_frozen() {
            return Err(QuantError::Untrained);
        }
        let centroid = c.model().centroid(0).ok_or(QuantError::Untrained)?;
        QuantModel::Centroid(QCentroid::build(&centroid, cfg)?)
    } else if let Some(t) = any.downcast_ref::<CartDetector>() {
        let tree = t.tree().ok_or(QuantError::Untrained)?;
        let flat = tree.flatten().ok_or(QuantError::Untrained)?;
        QuantModel::Cart(QCart::build(&flat, cfg)?)
    } else {
        return Err(QuantError::Unsupported(det.name()));
    };
    Ok(QuantizedDetector {
        model,
        name: det.name(),
        dim: det.feature_dim(),
        frac_bits: cfg.frac_bits,
        weight_bits: cfg.weight_bits,
        threshold_q: (threshold * pow2(cfg.frac_bits as i32)).round() as i64,
    })
}

impl QuantizedDetector {
    /// Model name of the underlying detector.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Expected feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.dim
    }

    /// Fraction bits of activations and scores.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Fraction bits of weights.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Human-readable Q-format, e.g. `"Q39.24"`.
    pub fn format(&self) -> String {
        format!("Q{}.{}", 63 - self.frac_bits, self.frac_bits)
    }

    /// The alert threshold snapped to the score grid (`thr_q / 2^FA`),
    /// exactly representable in f64.
    pub fn threshold(&self) -> f64 {
        self.threshold_q as f64 / pow2(self.frac_bits as i32)
    }

    /// Integer score at `FA` fraction bits.
    pub fn score_q(&self, x: &[f64]) -> Result<i64, MlError> {
        if x.len() != self.dim {
            return Err(MlError::DimMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        Ok(match &self.model {
            QuantModel::KitNet(k) => k.score_q(x, self.frac_bits, self.weight_bits),
            QuantModel::Centroid(c) => c.score_q(x, self.frac_bits),
            QuantModel::Cart(t) => t.score_q(x),
        })
    }

    /// Score as a float: `score_q / 2^FA` — exactly representable, so
    /// float comparison against [`QuantizedDetector::threshold`] is
    /// equivalent to the integer compare the pipeline performs.
    pub fn score(&self, x: &[f64]) -> Result<f64, MlError> {
        Ok(self.score_q(x)? as f64 / pow2(self.frac_bits as i32))
    }

    /// Whether a score crosses the grid-snapped threshold (strictly above,
    /// matching [`FrozenDetector::is_alert`]).
    pub fn is_alert(&self, score: f64) -> bool {
        score > self.threshold()
    }

    /// Integer ALU operations of one score evaluation — the quantity
    /// `cycles_from_cost` prices into NIC cycles.
    pub fn alu_ops(&self) -> u64 {
        match &self.model {
            QuantModel::KitNet(k) => k.alu_ops(self.dim),
            QuantModel::Centroid(c) => c.alu_ops(),
            QuantModel::Cart(t) => t.alu_ops(),
        }
    }

    /// Certifies a worst-case |float − quantized| score bound over the
    /// per-feature input intervals `domain` (one `(lo, hi)` pair per
    /// feature). KitNET's bound is domain-independent (the affine input
    /// layer clamps); centroid and CART use the domain to prove the grid
    /// does not saturate (and, for centroid, that ‖x‖ is bounded away
    /// from zero). An infinite bound names the blocking layer.
    pub fn error_bound(&self, domain: &[(f64, f64)]) -> Result<ErrorBound, QuantError> {
        if domain.len() != self.dim {
            return Err(QuantError::Degenerate(format!(
                "domain has {} intervals, detector expects {}",
                domain.len(),
                self.dim
            )));
        }
        Ok(match &self.model {
            QuantModel::KitNet(k) => k.error_bound(self.frac_bits, self.weight_bits),
            QuantModel::Centroid(c) => c.error_bound(domain, self.frac_bits),
            QuantModel::Cart(t) => t.error_bound(domain, self.frac_bits),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{train_and_calibrate, CalibrationConfig, Detector, KnnNovelty};

    fn benign(dim: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| 1.0 + 0.01 * ((i * 7 + d * 3) % 13) as f64 + 0.0005 * i as f64)
                    .collect()
            })
            .collect()
    }

    fn freeze(det: Box<dyn Detector>, dim: usize, n: usize) -> FrozenDetector {
        let data = benign(dim, n);
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        train_and_calibrate(det, &refs, 0.2, CalibrationConfig::default()).unwrap()
    }

    #[test]
    fn sigmoid_table_tracks_float_within_certified_error() {
        let sig = QSigmoid::build(24);
        let eps = QSigmoid::approx_error(24);
        let scale = pow2(24);
        let mut worst: f64 = 0.0;
        let mut z = -20.0;
        while z < 20.0 {
            let zq = (z * scale).round() as i64;
            let got = sig.eval(zq) as f64 / scale;
            // Compare at the grid point the table actually saw.
            let want = sigmoid_f(zq as f64 / scale);
            worst = worst.max((got - want).abs());
            z += 0.00371;
        }
        assert!(worst <= eps, "sigmoid error {worst} above certified {eps}");
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for v in [0u128, 1, 2, 3, 4, 15, 16, 17, 1 << 40, (1 << 40) + 12345] {
            let r = isqrt_u128(v);
            assert!(r * r <= v, "{v}");
            assert!((r + 1) * (r + 1) > v, "{v}");
        }
    }

    #[test]
    fn kitnet_quantized_score_stays_within_certified_bound() {
        let frozen = freeze(Box::new(crate::KitNetDetector::new(5, 7).unwrap()), 5, 150);
        let q = quantize(&frozen, &QuantConfig::default()).unwrap();
        let domain = vec![(0.0, 3.0); 5];
        let eb = q.error_bound(&domain).unwrap();
        assert!(eb.bound.is_finite() && eb.bound > 0.0);
        let mut probes = benign(5, 40);
        probes.push(vec![80.0, -40.0, 900.0, 3.0, -7.0]);
        probes.push(vec![0.0; 5]);
        for x in &probes {
            let f = frozen.score(x).unwrap();
            let g = q.score(x).unwrap();
            assert!(
                (f - g).abs() <= eb.bound,
                "|{f} - {g}| = {} above bound {}",
                (f - g).abs(),
                eb.bound
            );
        }
    }

    #[test]
    fn centroid_quantized_score_stays_within_certified_bound() {
        let frozen = freeze(Box::new(crate::CentroidDetector::new(4).unwrap()), 4, 100);
        let q = quantize(&frozen, &QuantConfig::default()).unwrap();
        // Domain bounded away from zero in every coordinate → ‖x‖ ≥ L > 0.
        let domain = vec![(0.5, 4.0); 4];
        let eb = q.error_bound(&domain).unwrap();
        assert!(eb.bound.is_finite(), "culprit {:?}", eb.culprit);
        for x in [
            vec![1.0, 1.1, 1.2, 1.3],
            vec![4.0, 0.5, 4.0, 0.5],
            vec![0.5, 0.5, 0.5, 0.5],
        ] {
            let f = frozen.score(&x).unwrap();
            let g = q.score(&x).unwrap();
            assert!(
                (f - g).abs() <= eb.bound,
                "|{f} - {g}| = {} above bound {}",
                (f - g).abs(),
                eb.bound
            );
        }
    }

    #[test]
    fn centroid_domain_through_zero_is_unprovable_with_culprit() {
        let frozen = freeze(Box::new(crate::CentroidDetector::new(3).unwrap()), 3, 60);
        let q = quantize(&frozen, &QuantConfig::default()).unwrap();
        let eb = q
            .error_bound(&[(-1.0, 1.0), (-1.0, 1.0), (-1.0, 1.0)])
            .unwrap();
        assert!(eb.bound.is_infinite());
        assert_eq!(eb.culprit.as_deref(), Some("input-norm"));
    }

    #[test]
    fn cart_routes_exactly_on_the_integer_grid() {
        // Integer-valued training data → half-integer midpoints → exact
        // fixed-point routing; scores differ only by leaf rounding.
        let mut det = crate::CartDetector::new(2, 11).unwrap();
        for i in 0..64 {
            det.train(&[f64::from(i % 8), f64::from(i / 8)]).unwrap();
        }
        let data: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![f64::from(i % 8), f64::from(i / 8)])
            .collect();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let frozen = train_and_calibrate(
            Box::new(crate::CartDetector::new(2, 11).unwrap()),
            &refs,
            0.2,
            CalibrationConfig::default(),
        )
        .unwrap();
        let q = quantize(&frozen, &QuantConfig::default()).unwrap();
        let eb = q.error_bound(&[(0.0, 8.0), (0.0, 8.0)]).unwrap();
        assert!(eb.grid_exact_only);
        assert!(eb.bound <= pow2(-24), "bound {}", eb.bound);
        for a in 0..12 {
            for b in 0..12 {
                let x = [f64::from(a), f64::from(b)];
                let f = frozen.score(&x).unwrap();
                let g = q.score(&x).unwrap();
                assert!((f - g).abs() <= eb.bound, "({a},{b}): |{f} - {g}|");
            }
        }
    }

    #[test]
    fn knn_has_no_lowering() {
        let frozen = freeze(Box::new(KnnNovelty::new(3, 3).unwrap()), 3, 60);
        assert_eq!(
            quantize(&frozen, &QuantConfig::default()).unwrap_err(),
            QuantError::Unsupported("knn")
        );
    }

    #[test]
    fn scores_are_bitwise_deterministic_and_grid_exact() {
        let frozen = freeze(Box::new(crate::KitNetDetector::new(4, 3).unwrap()), 4, 120);
        let q = quantize(&frozen, &QuantConfig::default()).unwrap();
        let x = [1.0, 2.0, 0.5, 1.5];
        let a = q.score(&x).unwrap();
        let b = q.score(&x).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        // score · 2^FA is integral (the score is exactly on the grid).
        let scaled = a * pow2(24);
        assert_eq!(scaled, scaled.round());
        assert_eq!(scaled, q.score_q(&x).unwrap() as f64);
    }

    #[test]
    fn dim_mismatch_is_typed() {
        let frozen = freeze(Box::new(crate::CentroidDetector::new(3).unwrap()), 3, 60);
        let q = quantize(&frozen, &QuantConfig::default()).unwrap();
        assert_eq!(
            q.score(&[1.0]).unwrap_err(),
            MlError::DimMismatch {
                expected: 3,
                got: 1
            }
        );
        assert!(q.error_bound(&[(0.0, 1.0)]).is_err());
    }

    #[test]
    fn alu_ops_are_positive_and_model_dependent() {
        let kit = quantize(
            &freeze(Box::new(crate::KitNetDetector::new(6, 1).unwrap()), 6, 150),
            &QuantConfig::default(),
        )
        .unwrap();
        let cen = quantize(
            &freeze(Box::new(crate::CentroidDetector::new(6).unwrap()), 6, 60),
            &QuantConfig::default(),
        )
        .unwrap();
        assert!(kit.alu_ops() > cen.alu_ops());
        assert!(cen.alu_ops() > 0);
    }

    #[test]
    fn threshold_snaps_to_grid() {
        let frozen = freeze(Box::new(crate::CentroidDetector::new(2).unwrap()), 2, 60);
        let q = quantize(&frozen, &QuantConfig::default()).unwrap();
        let t = q.threshold();
        assert!((t - frozen.threshold()).abs() <= pow2(-25));
        assert_eq!(t * pow2(24), (t * pow2(24)).round());
    }
}
