//! k-nearest-neighbours classification (CUMUL-style fingerprinting).

/// A k-NN classifier over Euclidean distance.
#[derive(Clone, Debug)]
pub struct Knn {
    k: usize,
    points: Vec<(Vec<f64>, usize)>,
}

impl Knn {
    /// Creates a classifier with `k` neighbours (k ≥ 1).
    pub fn new(k: usize) -> Option<Self> {
        if k == 0 {
            return None;
        }
        Some(Knn {
            k,
            points: Vec::new(),
        })
    }

    /// Adds a labelled training point.
    pub fn fit_one(&mut self, x: Vec<f64>, label: usize) {
        self.points.push((x, label));
    }

    /// Adds many labelled training points.
    pub fn fit(&mut self, data: impl IntoIterator<Item = (Vec<f64>, usize)>) {
        self.points.extend(data);
    }

    /// Number of stored training points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the classifier has no training data.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Predicts the label of `x` by majority vote among the `k` nearest
    /// training points. Returns `None` when untrained.
    pub fn predict(&self, x: &[f64]) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let mut dists: Vec<(f64, usize)> = self
            .points
            .iter()
            .map(|(p, l)| (euclidean2(p, x), *l))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let top = &dists[..self.k.min(dists.len())];
        let mut votes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &(_, l) in top {
            *votes.entry(l).or_insert(0) += 1;
        }
        votes
            .into_iter()
            .max_by_key(|&(label, count)| (count, std::cmp::Reverse(label)))
            .map(|(l, _)| l)
    }
}

/// Squared Euclidean distance, treating missing tail dimensions as zero.
pub(crate) fn euclidean2(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| {
            let x = a.get(i).copied().unwrap_or(0.0);
            let y = b.get(i).copied().unwrap_or(0.0);
            (x - y) * (x - y)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_k() {
        assert!(Knn::new(0).is_none());
    }

    #[test]
    fn untrained_predicts_none() {
        let knn = Knn::new(3).unwrap();
        assert_eq!(knn.predict(&[1.0]), None);
    }

    #[test]
    fn classifies_separable_clusters() {
        let mut knn = Knn::new(3).unwrap();
        for i in 0..10 {
            knn.fit_one(vec![0.0 + f64::from(i) * 0.01, 0.0], 0);
            knn.fit_one(vec![10.0 + f64::from(i) * 0.01, 10.0], 1);
        }
        assert_eq!(knn.predict(&[0.5, 0.2]), Some(0));
        assert_eq!(knn.predict(&[9.5, 9.9]), Some(1));
        assert_eq!(knn.len(), 20);
    }

    #[test]
    fn majority_vote_wins() {
        let mut knn = Knn::new(3).unwrap();
        knn.fit(vec![
            (vec![0.0], 0),
            (vec![0.1], 0),
            (vec![0.2], 1),
            (vec![5.0], 1),
        ]);
        assert_eq!(knn.predict(&[0.05]), Some(0));
    }

    #[test]
    fn handles_mismatched_dimensions() {
        let mut knn = Knn::new(1).unwrap();
        knn.fit_one(vec![1.0, 1.0, 1.0], 7);
        assert_eq!(knn.predict(&[1.0]), Some(7));
    }
}
