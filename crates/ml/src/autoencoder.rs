//! A small fully-connected autoencoder trained with SGD.
//!
//! This is the building block of Kitsune's KitNET detector: a single hidden
//! layer with sigmoid activations, trained to reconstruct its (normalized)
//! input; the anomaly score is the reconstruction RMSE.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A `d → h → d` autoencoder.
#[derive(Clone, Debug)]
pub struct Autoencoder {
    d: usize,
    h: usize,
    /// Encoder weights, `h × d`, row-major.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// Decoder weights, `d × h`, row-major.
    w2: Vec<f64>,
    b2: Vec<f64>,
    lr: f64,
}

impl Autoencoder {
    /// Creates an autoencoder with `d` inputs and `h` hidden units.
    ///
    /// Returns `None` when either dimension is zero.
    pub fn new(d: usize, h: usize, lr: f64, seed: u64) -> Option<Self> {
        if d == 0 || h == 0 || lr <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (d as f64).sqrt();
        let mut init = |n: usize| -> Vec<f64> {
            (0..n)
                .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * scale)
                .collect()
        };
        Some(Autoencoder {
            d,
            h,
            w1: init(h * d),
            b1: vec![0.0; h],
            w2: init(d * h),
            b2: vec![0.0; d],
            lr,
        })
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.d
    }

    /// Hidden dimension.
    pub(crate) fn hidden_dim(&self) -> usize {
        self.h
    }

    /// The trained weights `(w1, b1, w2, b2)` — encoder `h × d` row-major,
    /// decoder `d × h` row-major.
    pub(crate) fn weights(&self) -> (&[f64], &[f64], &[f64], &[f64]) {
        (&self.w1, &self.b1, &self.w2, &self.b2)
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut hid = vec![0.0; self.h];
        for (i, h) in hid.iter_mut().enumerate() {
            let mut a = self.b1[i];
            for (j, &xj) in x.iter().enumerate() {
                a += self.w1[i * self.d + j] * xj;
            }
            *h = sigmoid(a);
        }
        let mut out = vec![0.0; self.d];
        for (i, o) in out.iter_mut().enumerate() {
            let mut a = self.b2[i];
            for (j, &hj) in hid.iter().enumerate() {
                a += self.w2[i * self.h + j] * hj;
            }
            *o = sigmoid(a);
        }
        (hid, out)
    }

    /// Reconstruction RMSE of `x` (expects inputs in `[0, 1]`).
    ///
    /// Inputs of the wrong dimension score `f64::INFINITY`.
    pub fn rmse(&self, x: &[f64]) -> f64 {
        if x.len() != self.d {
            return f64::INFINITY;
        }
        let (_, out) = self.forward(x);
        let mse: f64 = x
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / self.d as f64;
        mse.sqrt()
    }

    /// One SGD step on reconstructing `x`; returns the pre-update RMSE.
    pub fn train_step(&mut self, x: &[f64]) -> f64 {
        if x.len() != self.d {
            return f64::INFINITY;
        }
        let (hid, out) = self.forward(x);
        // Output layer deltas: (out - x) * out * (1 - out).
        let delta_out: Vec<f64> = out
            .iter()
            .zip(x)
            .map(|(&o, &t)| (o - t) * o * (1.0 - o))
            .collect();
        // Hidden deltas.
        let mut delta_hid = vec![0.0; self.h];
        for j in 0..self.h {
            let mut s = 0.0;
            for (i, &d_o) in delta_out.iter().enumerate() {
                s += d_o * self.w2[i * self.h + j];
            }
            delta_hid[j] = s * hid[j] * (1.0 - hid[j]);
        }
        // Updates.
        for (i, &d_o) in delta_out.iter().enumerate() {
            for (j, &hj) in hid.iter().enumerate() {
                self.w2[i * self.h + j] -= self.lr * d_o * hj;
            }
            self.b2[i] -= self.lr * d_o;
        }
        for (i, &d_h) in delta_hid.iter().enumerate() {
            for (j, &xj) in x.iter().enumerate() {
                self.w1[i * self.d + j] -= self.lr * d_h * xj;
            }
            self.b1[i] -= self.lr * d_h;
        }
        let mse: f64 = x
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / self.d as f64;
        mse.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Autoencoder::new(0, 2, 0.1, 1).is_none());
        assert!(Autoencoder::new(2, 0, 0.1, 1).is_none());
        assert!(Autoencoder::new(2, 2, 0.0, 1).is_none());
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut ae = Autoencoder::new(4, 2, 0.5, 7).unwrap();
        let patterns = [vec![0.9, 0.1, 0.9, 0.1], vec![0.1, 0.9, 0.1, 0.9]];
        let before: f64 = patterns.iter().map(|p| ae.rmse(p)).sum();
        for _ in 0..2000 {
            for p in &patterns {
                ae.train_step(p);
            }
        }
        let after: f64 = patterns.iter().map(|p| ae.rmse(p)).sum();
        assert!(after < before * 0.5, "before {before}, after {after}");
    }

    #[test]
    fn anomalies_score_higher_than_normal() {
        let mut ae = Autoencoder::new(4, 2, 0.5, 3).unwrap();
        let normal = vec![0.8, 0.2, 0.8, 0.2];
        for _ in 0..3000 {
            ae.train_step(&normal);
        }
        let anomaly = vec![0.1, 0.9, 0.2, 0.95];
        assert!(
            ae.rmse(&anomaly) > ae.rmse(&normal) * 2.0,
            "anomaly {} vs normal {}",
            ae.rmse(&anomaly),
            ae.rmse(&normal)
        );
    }

    #[test]
    fn wrong_dimension_is_infinite() {
        let mut ae = Autoencoder::new(3, 2, 0.1, 1).unwrap();
        assert_eq!(ae.rmse(&[0.1, 0.2]), f64::INFINITY);
        assert_eq!(ae.train_step(&[0.1]), f64::INFINITY);
    }

    #[test]
    fn deterministic_init_per_seed() {
        let a = Autoencoder::new(4, 2, 0.1, 9).unwrap();
        let b = Autoencoder::new(4, 2, 0.1, 9).unwrap();
        assert_eq!(a.rmse(&[0.5; 4]), b.rmse(&[0.5; 4]));
    }
}
