//! Feature normalization.

/// Online min–max normalizer mapping each feature into `[0, 1]`.
///
/// Kitsune normalizes incrementally during training; this matches that
/// behaviour: `observe` widens the per-dimension ranges, `transform` scales.
#[derive(Clone, Debug, Default)]
pub struct MinMaxNorm {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxNorm {
    /// Creates an empty normalizer; dimensions are learned on first observe.
    pub fn new() -> Self {
        MinMaxNorm::default()
    }

    /// Number of feature dimensions seen (0 before any observation).
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// The learned `(mins, maxs)` ranges (structural access for the
    /// quantizer, which folds them into fixed-point scale/zero-point pairs).
    pub(crate) fn ranges(&self) -> (&[f64], &[f64]) {
        (&self.mins, &self.maxs)
    }

    /// Widens the ranges with one sample.
    pub fn observe(&mut self, x: &[f64]) {
        if self.mins.is_empty() {
            self.mins = x.to_vec();
            self.maxs = x.to_vec();
            return;
        }
        for (i, &v) in x.iter().enumerate().take(self.mins.len()) {
            if v < self.mins[i] {
                self.mins[i] = v;
            }
            if v > self.maxs[i] {
                self.maxs[i] = v;
            }
        }
    }

    /// Scales a sample into `[0, 1]` per dimension (0.5 for flat ranges),
    /// clamping values outside the observed range.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        if self.mins.is_empty() {
            return x.to_vec();
        }
        x.iter()
            .enumerate()
            .take(self.mins.len())
            .map(|(i, &v)| {
                let range = self.maxs[i] - self.mins[i];
                if range <= 0.0 {
                    0.5
                } else {
                    ((v - self.mins[i]) / range).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Observes and transforms in one step (the online training path).
    pub fn observe_transform(&mut self, x: &[f64]) -> Vec<f64> {
        self.observe(x);
        self.transform(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_ranges() {
        let mut n = MinMaxNorm::new();
        n.observe(&[0.0, 10.0]);
        n.observe(&[10.0, 20.0]);
        assert_eq!(n.transform(&[5.0, 15.0]), vec![0.5, 0.5]);
        assert_eq!(n.dims(), 2);
    }

    #[test]
    fn flat_dimension_maps_to_half() {
        let mut n = MinMaxNorm::new();
        n.observe(&[3.0]);
        n.observe(&[3.0]);
        assert_eq!(n.transform(&[3.0]), vec![0.5]);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut n = MinMaxNorm::new();
        n.observe(&[0.0]);
        n.observe(&[1.0]);
        assert_eq!(n.transform(&[5.0]), vec![1.0]);
        assert_eq!(n.transform(&[-5.0]), vec![0.0]);
    }

    #[test]
    fn untrained_is_identity() {
        let n = MinMaxNorm::new();
        assert_eq!(n.transform(&[7.0]), vec![7.0]);
    }
}
