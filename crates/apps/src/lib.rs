//! The ten state-of-the-art traffic analysis applications of Table 3,
//! re-implemented on the SuperFE policy interface, plus the §8.3 end-to-end
//! application study.
//!
//! - [`policies`]: the feature extractors of CUMUL, AWF, DF, TF, PeerShark,
//!   N-BaIoT, MPTD, NPOD, HELAD, and Kitsune as SuperFE policy sources, with
//!   their feature dimensions and LoC (the Table 3 data).
//! - [`kitsune`]: three Kitsune feature-extractor variants — the standard
//!   (exact) definition, the SuperFE pipeline, and an AfterImage-style
//!   32-bit implementation — and the relative-error comparison of Fig. 10.
//! - [`study`]: end-to-end pipelines (traffic → SuperFE → detector) for the
//!   four case-study applications: TF (website fingerprinting), N-BaIoT
//!   (botnet detection), NPOD (covert-channel detection), and Kitsune
//!   (intrusion detection).

pub mod kitsune;
pub mod policies;
pub mod study;

pub use policies::{all_apps, AppSpec};
