//! Kitsune feature-extraction variants and the Fig. 10 fidelity comparison.
//!
//! Three implementations of the same 115-dimension feature definition:
//!
//! 1. **Standard** — the exact definition: 64-bit floats, full-nanosecond
//!    timestamps, evaluated by the software reference extractor.
//! 2. **SuperFE** — the switch+NIC pipeline: metadata timestamps truncated
//!    to 32-bit microseconds (the MGPV record format), streaming reducers.
//! 3. **AfterImage** — Kitsune's original incremental implementation style:
//!    32-bit floating point state with timestamps in (32-bit) seconds, whose
//!    `SS/w − μ²` variance form loses precision on low-variance/high-mean
//!    streams. This stands in for the "original Kitsune implementation
//!    applying approximate algorithms" the paper measures.
//!
//! [`feature_error`] aligns per-packet vectors across variants and reports
//! the relative error per statistic family, reproducing Fig. 10's shape:
//! SuperFE error well below the paper's 4% bound and below AfterImage's.

use std::collections::HashMap;

use superfe_core::{SoftwareExtractor, SuperFe};
use superfe_net::{Granularity, GroupKey};
use superfe_nic::FeatureVector;
use superfe_trafficgen::Trace;

use crate::policies::KITSUNE;

/// The statistic families of the 115-dim Kitsune vector.
pub const FAMILIES: [&str; 7] = ["weight", "mean", "std", "magnitude", "radius", "cov", "pcc"];

/// Block layout of the 115-dim vector: `(is_quad, lambdas)` per reduce.
/// socket: triple, quad; channel: triple, quad, triple; host: triple, triple.
const BLOCKS: [bool; 7] = [false, true, false, true, false, false, false];

/// Maps a feature index to its statistic family.
pub fn family_of(mut idx: usize) -> &'static str {
    for &is_quad in &BLOCKS {
        let block_len = if is_quad { 20 } else { 15 };
        if idx < block_len {
            let within = idx % if is_quad { 4 } else { 3 };
            return if is_quad {
                ["magnitude", "radius", "cov", "pcc"][within]
            } else {
                ["weight", "mean", "std"][within]
            };
        }
        idx -= block_len;
    }
    "weight"
}

/// Exact ("standard definition") per-packet vectors, in arrival order.
pub fn exact_packet_vectors(trace: &Trace) -> Vec<FeatureVector> {
    let mut sw = SoftwareExtractor::from_dsl(KITSUNE).expect("kitsune policy valid");
    for p in &trace.records {
        sw.push(p);
    }
    let (_, pkts) = sw.finish();
    pkts
}

/// SuperFE pipeline per-packet vectors (eviction order).
pub fn superfe_packet_vectors(trace: &Trace) -> Vec<FeatureVector> {
    let mut fe = SuperFe::from_dsl(KITSUNE).expect("kitsune policy valid");
    for p in &trace.records {
        fe.push(p);
    }
    fe.finish().packet_vectors
}

// ---------------------------------------------------------------------------
// AfterImage-style f32 implementation.
// ---------------------------------------------------------------------------

const LAMBDAS: [f32; 5] = [5.0, 3.0, 1.0, 0.1, 0.01];

#[derive(Clone, Copy, Default)]
struct AiStat {
    w: f32,
    ls: f32,
    ss: f32,
    last_t: f32,
    seen: bool,
}

impl AiStat {
    fn update(&mut self, lambda: f32, x: f32, t: f32) {
        if self.seen && t > self.last_t {
            let d = (2.0f32).powf(-lambda * (t - self.last_t));
            self.w *= d;
            self.ls *= d;
            self.ss *= d;
        }
        self.last_t = self.last_t.max(t);
        self.seen = true;
        self.w += 1.0;
        self.ls += x;
        self.ss += x * x;
    }

    fn mean(&self) -> f32 {
        if self.w <= 0.0 {
            0.0
        } else {
            self.ls / self.w
        }
    }

    fn var(&self) -> f32 {
        if self.w <= 0.0 {
            0.0
        } else {
            (self.ss / self.w - self.mean() * self.mean()).abs()
        }
    }

    fn triple(&self) -> [f32; 3] {
        [self.w, self.mean(), self.var().sqrt()]
    }
}

#[derive(Clone, Copy, Default)]
struct AiPair {
    a: AiStat,
    b: AiStat,
    sr: f32,
    w3: f32,
    res_a: f32,
    res_b: f32,
    last_t: f32,
    seen: bool,
}

impl AiPair {
    fn decay_joint(&mut self, lambda: f32, t: f32) {
        if self.seen && t > self.last_t {
            let d = (2.0f32).powf(-lambda * (t - self.last_t));
            self.sr *= d;
            self.w3 *= d;
        }
        self.last_t = self.last_t.max(t);
        self.seen = true;
    }

    fn update(&mut self, lambda: f32, x: f32, t: f32, ingress: bool) {
        self.decay_joint(lambda, t);
        if ingress {
            self.a.update(lambda, x, t);
            self.res_a = x - self.a.mean();
        } else {
            self.b.update(lambda, x, t);
            self.res_b = x - self.b.mean();
        }
        self.sr += self.res_a * self.res_b;
        self.w3 += 1.0;
    }

    fn quad(&self) -> [f32; 4] {
        let ma = self.a.mean();
        let mb = self.b.mean();
        let va = self.a.var();
        let vb = self.b.var();
        let mag = (ma * ma + mb * mb).sqrt();
        let radius = (va * va + vb * vb).sqrt();
        let cov = if self.w3 <= 0.0 {
            0.0
        } else {
            self.sr / self.w3
        };
        let denom = va.sqrt() * vb.sqrt();
        let pcc = if denom <= 1e-12 { 0.0 } else { cov / denom };
        [mag, radius, cov, pcc]
    }
}

#[derive(Clone, Default)]
struct AiSocket {
    size: [AiStat; 5],
    size2d: [AiPair; 5],
}

#[derive(Clone, Default)]
struct AiChannel {
    size: [AiStat; 5],
    size2d: [AiPair; 5],
    jitter: [AiStat; 5],
    last_ts: Option<f32>,
}

#[derive(Clone, Default)]
struct AiHost {
    size_a: [AiStat; 5],
    size_b: [AiStat; 5],
}

/// AfterImage-style per-packet vectors, in arrival order.
pub fn afterimage_packet_vectors(trace: &Trace) -> Vec<FeatureVector> {
    let mut sockets: HashMap<GroupKey, AiSocket> = HashMap::new();
    let mut channels: HashMap<GroupKey, AiChannel> = HashMap::new();
    let mut hosts: HashMap<GroupKey, AiHost> = HashMap::new();
    let mut out = Vec::with_capacity(trace.len());

    for p in &trace.records {
        let t = p.ts_ns as f32 / 1e9; // f32 seconds, like the original
        let x = f32::from(p.size);
        let ingress = p.direction_factor() > 0;
        let mut values = Vec::with_capacity(115);

        // Socket level: size triples + quads.
        let sk = Granularity::Socket.key_of(p);
        let s = sockets.entry(sk).or_default();
        for (i, l) in LAMBDAS.iter().enumerate() {
            s.size[i].update(*l, x, t);
        }
        for (i, l) in LAMBDAS.iter().enumerate() {
            s.size2d[i].update(*l, x, t, ingress);
        }
        for st in &s.size {
            values.extend(st.triple().iter().map(|&v| f64::from(v)));
        }
        for pr in &s.size2d {
            values.extend(pr.quad().iter().map(|&v| f64::from(v)));
        }

        // Channel level: size triples + quads + IPT (jitter) triples.
        let ck = Granularity::Channel.key_of(p);
        let c = channels.entry(ck).or_default();
        let ipt = c.last_ts.map(|prev| (t - prev).max(0.0));
        c.last_ts = Some(t);
        for (i, l) in LAMBDAS.iter().enumerate() {
            c.size[i].update(*l, x, t);
            c.size2d[i].update(*l, x, t, ingress);
            if let Some(j) = ipt {
                // The exact path measures IPT in nanoseconds.
                c.jitter[i].update(*l, j * 1e9, t);
            }
        }
        for st in &c.size {
            values.extend(st.triple().iter().map(|&v| f64::from(v)));
        }
        for pr in &c.size2d {
            values.extend(pr.quad().iter().map(|&v| f64::from(v)));
        }
        for st in &c.jitter {
            values.extend(st.triple().iter().map(|&v| f64::from(v)));
        }

        // Host level: two size triples (MAC-IP and IP in the original).
        let hk = Granularity::Host.key_of(p);
        let h = hosts.entry(hk).or_default();
        for (i, l) in LAMBDAS.iter().enumerate() {
            h.size_a[i].update(*l, x, t);
            h.size_b[i].update(*l, x, t);
        }
        for st in h.size_a.iter().chain(h.size_b.iter()) {
            values.extend(st.triple().iter().map(|&v| f64::from(v)));
        }

        out.push(FeatureVector {
            key: sk,
            values: values.into(),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 10: relative feature error per statistic family.
// ---------------------------------------------------------------------------

/// One Fig. 10 row.
#[derive(Clone, Copy, Debug)]
pub struct ErrorRow {
    /// Statistic family.
    pub family: &'static str,
    /// SuperFE's aggregate relative error vs the standard definition.
    pub superfe: f64,
    /// AfterImage's aggregate relative error vs the standard definition.
    pub afterimage: f64,
}

fn index_vectors(vectors: &[FeatureVector]) -> HashMap<(GroupKey, usize), &FeatureVector> {
    let mut counts: HashMap<GroupKey, usize> = HashMap::new();
    let mut map = HashMap::new();
    for v in vectors {
        let n = counts.entry(v.key).or_insert(0);
        map.insert((v.key, *n), v);
        *n += 1;
    }
    map
}

/// Aggregate relative error per family: `Σ|x − ref| / Σ|ref|`.
fn family_errors(
    reference: &[FeatureVector],
    candidate: &HashMap<(GroupKey, usize), &FeatureVector>,
) -> HashMap<&'static str, f64> {
    let mut num: HashMap<&'static str, f64> = HashMap::new();
    let mut den: HashMap<&'static str, f64> = HashMap::new();
    let mut counts: HashMap<GroupKey, usize> = HashMap::new();
    for r in reference {
        let n = counts.entry(r.key).or_insert(0);
        let key = (r.key, *n);
        *n += 1;
        let Some(c) = candidate.get(&key) else {
            continue;
        };
        for (i, (x, y)) in r.values.iter().zip(&c.values).enumerate() {
            let fam = family_of(i);
            *num.entry(fam).or_insert(0.0) += (x - y).abs();
            *den.entry(fam).or_insert(0.0) += x.abs();
        }
    }
    FAMILIES
        .iter()
        .map(|&f| {
            let n = num.get(f).copied().unwrap_or(0.0);
            let d = den.get(f).copied().unwrap_or(0.0);
            (f, if d <= 1e-9 { 0.0 } else { n / d })
        })
        .collect()
}

/// Capture-start offset applied before the comparison: real traces carry
/// absolute (epoch-relative) timestamps, and a large time base is exactly
/// where 32-bit-float seconds lose their precision (an epoch-scale base
/// would be worse still; 1000 s keeps the MGPV 32-bit-µs field in range).
pub const CAPTURE_EPOCH_NS: u64 = 1_000_000_000_000;

/// Computes the Fig. 10 comparison on a trace.
pub fn feature_error(trace: &Trace) -> Vec<ErrorRow> {
    let shifted = Trace {
        records: trace
            .records
            .iter()
            .map(|p| {
                let mut c = *p;
                c.ts_ns += CAPTURE_EPOCH_NS;
                c
            })
            .collect(),
    };
    let trace = &shifted;
    let exact = exact_packet_vectors(trace);
    let superfe = superfe_packet_vectors(trace);
    let afterimage = afterimage_packet_vectors(trace);
    let sf = index_vectors(&superfe);
    let ai = index_vectors(&afterimage);
    let e_sf = family_errors(&exact, &sf);
    let e_ai = family_errors(&exact, &ai);
    FAMILIES
        .iter()
        .map(|&f| ErrorRow {
            family: f,
            superfe: e_sf.get(f).copied().unwrap_or(0.0),
            afterimage: e_ai.get(f).copied().unwrap_or(0.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_trafficgen::Workload;

    fn trace() -> Trace {
        Workload::enterprise().packets(4_000).seed(5).generate()
    }

    #[test]
    fn family_layout_covers_115() {
        let fams: Vec<&str> = (0..115).map(family_of).collect();
        assert_eq!(fams.len(), 115);
        assert_eq!(fams[0], "weight");
        assert_eq!(fams[1], "mean");
        assert_eq!(fams[2], "std");
        assert_eq!(fams[15], "magnitude");
        assert_eq!(fams[18], "pcc");
        // Host tail is all triples.
        assert_eq!(fams[114], "std");
    }

    #[test]
    fn variants_produce_aligned_vectors() {
        let t = trace();
        let exact = exact_packet_vectors(&t);
        let ai = afterimage_packet_vectors(&t);
        assert_eq!(exact.len(), t.len());
        assert_eq!(ai.len(), t.len());
        assert!(exact.iter().all(|v| v.values.len() == 115));
        assert!(ai.iter().all(|v| v.values.len() == 115));
        // Same keys in the same per-packet order.
        assert!(exact.iter().zip(&ai).all(|(a, b)| a.key == b.key));
    }

    #[test]
    fn superfe_error_below_paper_bound() {
        let rows = feature_error(&trace());
        for r in &rows {
            assert!(
                r.superfe < 0.04,
                "{}: SuperFE error {} above 4%",
                r.family,
                r.superfe
            );
        }
    }

    #[test]
    fn superfe_beats_afterimage_overall() {
        let rows = feature_error(&trace());
        let sf: f64 = rows.iter().map(|r| r.superfe).sum();
        let ai: f64 = rows.iter().map(|r| r.afterimage).sum();
        assert!(
            sf < ai,
            "SuperFE total error {sf} should be below AfterImage {ai}"
        );
        // And the gap is structural, not noise: the f32-seconds time base
        // degrades the original's damped statistics measurably.
        assert!(ai > 5.0 * sf, "AfterImage {ai} vs SuperFE {sf}");
    }
}
