//! The Table 3 feature extractors as SuperFE policies.
//!
//! Each constant is the complete policy source in the paper's DSL; the
//! [`AppSpec`] table carries the metadata the Table 3 experiment reports
//! (objective, feature dimension, lines of code).

use superfe_policy::dsl;
use superfe_policy::Policy;

/// CUMUL (Panchenko et al., NDSS'16): per-flow statistics plus 100
/// interpolated cumulative-size points (104 features).
pub const CUMUL: &str = "\
pktstream
.filter(tcp.exist)
.groupby(flow)
.map(one, _, f_one)
.map(dirone, one, f_direction)
.map(dirsize, size, f_direction)
.reduce(one, [f_sum])
.collect(flow)
.reduce(dirone, [f_sum])
.collect(flow)
.reduce(size, [f_sum])
.collect(flow)
.reduce(dirsize, [f_sum])
.collect(flow)
.reduce(dirsize, [f_array{2000}])
.synthesize(f_marker)
.synthesize(ft_sample{100})
.collect(flow)
";

/// AWF (Rimmer et al., NDSS'18): a fixed-length ±1 direction sequence.
pub const AWF: &str = "\
pktstream
.filter(tcp.exist)
.groupby(flow)
.map(one, _, f_one)
.map(dirseq, one, f_direction)
.reduce(dirseq, [f_array{5000}])
.collect(flow)
";

/// DF (Sirinam et al., CCS'18): same input representation as AWF.
pub const DF: &str = AWF;

/// TF (Sirinam et al., CCS'19): same input representation as AWF/DF.
pub const TF: &str = AWF;

/// PeerShark (Narang et al., S&P workshops'14): 4 conversational features
/// per IP pair.
pub const PEERSHARK: &str = "\
pktstream
.groupby(channel)
.map(one, _, f_one)
.map(ipt, tstamp, f_ipt)
.reduce(one, [f_sum])
.collect(channel)
.reduce(size, [f_mean])
.collect(channel)
.reduce(ipt, [f_mean])
.collect(channel)
.reduce(size, [f_sum])
.collect(channel)
";

/// N-BaIoT (Meidan et al., IEEE PerCom'18): damped statistics over three
/// granularities and five time windows (65 features).
pub const NBAIOT: &str = "\
pktstream
.groupby(socket)
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.collect(pkt)
.groupby(channel)
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.reduce(size, [f_damped2d{5}, f_damped2d{3}, f_damped2d{1}, f_damped2d{0.1}, f_damped2d{0.01}])
.collect(pkt)
.groupby(host)
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.collect(pkt)
";

/// MPTD (Barradas et al., USENIX Sec'18): a large mixed statistical feature
/// set per flow (166 features).
pub const MPTD: &str = "\
pktstream
.filter(tcp.exist)
.groupby(flow)
.map(ipt, tstamp, f_ipt)
.reduce(size, [ft_hist{24, 64}])
.collect(flow)
.reduce(ipt, [ft_hist{5000000, 80}])
.collect(flow)
.reduce(size, [f_sum, f_mean, f_var, f_std, f_min, f_max, f_skew, f_kur])
.collect(flow)
.reduce(ipt, [f_sum, f_mean, f_var, f_std, f_min, f_max, f_skew, f_kur])
.collect(flow)
.reduce(size, [ft_percent{24, 64, 25}, ft_percent{24, 64, 50}, ft_percent{24, 64, 75}])
.collect(flow)
.reduce(ipt, [ft_percent{5000000, 80, 25}, ft_percent{5000000, 80, 50}, ft_percent{5000000, 80, 75}])
.collect(flow)
";

/// NPOD (Wang et al., CCS'15): packet-size and inter-packet-time
/// distributions per flow plus the packet count (37 features).
pub const NPOD: &str = "\
pktstream
.groupby(flow)
.map(one, _, f_one)
.map(ipt, tstamp, f_ipt)
.reduce(size, [ft_hist{100, 16}])
.collect(flow)
.reduce(ipt, [ft_hist{10000000, 20}])
.collect(flow)
.reduce(one, [f_sum])
.collect(flow)
";

/// HELAD (Zhong et al., ComNet'20): damped multi-granularity statistics
/// (100 features).
pub const HELAD: &str = "\
pktstream
.groupby(socket)
.reduce(size, [f_damped2d{5}, f_damped2d{3}, f_damped2d{1}, f_damped2d{0.1}, f_damped2d{0.01}])
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.collect(pkt)
.groupby(channel)
.map(ipt, tstamp, f_ipt)
.reduce(size, [f_damped2d{5}, f_damped2d{3}, f_damped2d{1}, f_damped2d{0.1}, f_damped2d{0.01}])
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.reduce(ipt, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.collect(pkt)
.groupby(host)
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.collect(pkt)
";

/// Kitsune (Mirsky et al., NDSS'18): 115 damped-window features over the
/// socket/channel/host dependency chain and five decay rates.
pub const KITSUNE: &str = "\
pktstream
.groupby(socket)
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.reduce(size, [f_damped2d{5}, f_damped2d{3}, f_damped2d{1}, f_damped2d{0.1}, f_damped2d{0.01}])
.collect(pkt)
.groupby(channel)
.map(ipt, tstamp, f_ipt)
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.reduce(size, [f_damped2d{5}, f_damped2d{3}, f_damped2d{1}, f_damped2d{0.1}, f_damped2d{0.01}])
.reduce(ipt, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.collect(pkt)
.groupby(host)
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.reduce(size, [f_damped{5}, f_damped{3}, f_damped{1}, f_damped{0.1}, f_damped{0.01}])
.collect(pkt)
";

/// One Table 3 row.
#[derive(Clone, Copy, Debug)]
pub struct AppSpec {
    /// Application name as in the paper.
    pub name: &'static str,
    /// The "objective of traffic analysis" column.
    pub objective: &'static str,
    /// The policy source.
    pub dsl: &'static str,
    /// Feature dimension the paper reports.
    pub paper_dim: usize,
    /// LoC the paper reports for its (Python-embedded) interface.
    pub paper_loc: usize,
}

impl AppSpec {
    /// Parses and validates this application's policy.
    pub fn policy(&self) -> Policy {
        dsl::parse(self.dsl).expect("shipped policies are valid")
    }

    /// Our LoC metric for the policy source.
    pub fn loc(&self) -> usize {
        dsl::loc(self.dsl)
    }

    /// Our feature dimension.
    pub fn dim(&self) -> usize {
        self.policy().feature_dimension()
    }
}

/// All ten Table 3 applications, in paper order.
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "CUMUL",
            objective: "Website fingerprinting",
            dsl: CUMUL,
            paper_dim: 104,
            paper_loc: 29,
        },
        AppSpec {
            name: "AWF",
            objective: "Website fingerprinting",
            dsl: AWF,
            paper_dim: 5000,
            paper_loc: 9,
        },
        AppSpec {
            name: "DF",
            objective: "Website fingerprinting",
            dsl: DF,
            paper_dim: 5000,
            paper_loc: 9,
        },
        AppSpec {
            name: "TF",
            objective: "Website fingerprinting",
            dsl: TF,
            paper_dim: 5000,
            paper_loc: 9,
        },
        AppSpec {
            name: "PeerShark",
            objective: "Botnet detection",
            dsl: PEERSHARK,
            paper_dim: 4,
            paper_loc: 22,
        },
        AppSpec {
            name: "N-BaIoT",
            objective: "Botnet detection",
            dsl: NBAIOT,
            paper_dim: 65,
            paper_loc: 34,
        },
        AppSpec {
            name: "MPTD",
            objective: "Covert channel detection",
            dsl: MPTD,
            paper_dim: 166,
            paper_loc: 101,
        },
        AppSpec {
            name: "NPOD",
            objective: "Covert channel detection",
            dsl: NPOD,
            paper_dim: 37,
            paper_loc: 24,
        },
        AppSpec {
            name: "HELAD",
            objective: "Intrusion detection",
            dsl: HELAD,
            paper_dim: 100,
            paper_loc: 49,
        },
        AppSpec {
            name: "Kitsune",
            objective: "Intrusion detection",
            dsl: KITSUNE,
            paper_dim: 115,
            paper_loc: 49,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_parse_and_validate() {
        for app in all_apps() {
            let p = app.policy();
            assert!(!p.ops.is_empty(), "{}", app.name);
        }
    }

    #[test]
    fn feature_dimensions_match_the_paper() {
        for app in all_apps() {
            assert_eq!(
                app.dim(),
                app.paper_dim,
                "{}: dim {} vs paper {}",
                app.name,
                app.dim(),
                app.paper_dim
            );
        }
    }

    #[test]
    fn policies_are_concise() {
        // The Table 3 claim: tens of lines, not thousands. Our DSL should be
        // within ~2x of the paper's LoC.
        for app in all_apps() {
            let loc = app.loc();
            assert!(
                loc <= app.paper_loc * 2,
                "{}: {loc} lines vs paper {}",
                app.name,
                app.paper_loc
            );
        }
    }

    #[test]
    fn all_policies_are_lint_clean() {
        // Every bundled policy must pass `superfe check` under the default
        // deployment configuration: no analyzer errors, no warnings (notes —
        // e.g. expected DRAM spill for big-array policies — are fine).
        let cfg = superfe_core::AnalyzeConfig::default();
        for app in all_apps() {
            let report = superfe_core::analyze(&app.policy(), &cfg);
            assert!(
                report.is_lint_clean(),
                "{} is not lint-clean:\n{}",
                app.name,
                report.render()
            );
        }
    }

    #[test]
    fn all_policies_are_overflow_clean_at_default_config() {
        // The `SF05xx` value analysis must prove every bundled policy free
        // of sALU overflow and Q16 saturation at the default batch size
        // (10k packets/group) and aging horizon (25 ms). A single SF05xx
        // finding here means either the policy or the default deployment
        // parameters are wrong for real hardware.
        let cfg = superfe_core::AnalyzeConfig::default();
        for app in all_apps() {
            let report = superfe_core::analyze(&app.policy(), &cfg);
            let value_findings: Vec<_> = report
                .diagnostics()
                .iter()
                .filter(|d| d.code.starts_with("SF05"))
                .collect();
            assert!(
                value_findings.is_empty(),
                "{} has value-analysis findings: {:?}",
                app.name,
                value_findings
            );
        }
    }

    #[test]
    fn wf_trio_shares_representation() {
        assert_eq!(AWF, DF);
        assert_eq!(AWF, TF);
    }

    #[test]
    fn kitsune_compiles_to_three_levels() {
        let c = superfe_policy::compile(&all_apps()[9].policy()).unwrap();
        assert_eq!(c.nic.levels.len(), 3);
        assert!(c.switch.needs_fg_table());
        assert_eq!(c.nic.feature_dimension(), 115);
    }
}
