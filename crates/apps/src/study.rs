//! The §8.3 application study: four state-of-the-art traffic analysis
//! applications rebuilt with SuperFE as their feature extractor, keeping
//! their original detector families.
//!
//! | App | Features (via SuperFE) | Detector |
//! |---|---|---|
//! | TF | per-flow direction sequences | nearest-centroid embedding |
//! | N-BaIoT | damped multi-granularity stats | autoencoder anomaly score |
//! | NPOD | size/IPT distributions per flow | decision tree |
//! | Kitsune | 115-dim damped stats per packet | KitNET ensemble |

use std::collections::HashMap;

use superfe_core::SuperFe;
use superfe_ml::{
    accuracy, auc, Autoencoder, Confusion, DecisionTree, KitNet, Knn, MinMaxNorm, NearestCentroid,
};
use superfe_net::{Granularity, GroupKey};
use superfe_nic::FeatureVector;
use superfe_trafficgen::botnet::BotnetDataset;
use superfe_trafficgen::covert::CovertDataset;
use superfe_trafficgen::intrusion::IntrusionDataset;
use superfe_trafficgen::wf::WfDataset;
use superfe_trafficgen::Trace;

use crate::policies;

/// Outcome of one end-to-end application run.
#[derive(Clone, Copy, Debug)]
pub struct StudyResult {
    /// Application name.
    pub app: &'static str,
    /// Classification accuracy (task-specific; see each runner).
    pub accuracy: f64,
    /// Area under the ROC curve where a score is available, else equals
    /// accuracy.
    pub auc: f64,
}

/// Extracts per-group vectors for a trace with the given policy.
fn group_vectors(dsl: &str, trace: &Trace) -> Vec<FeatureVector> {
    let mut fe = SuperFe::from_dsl(dsl).expect("app policy valid");
    for p in &trace.records {
        fe.push(p);
    }
    fe.finish().group_vectors
}

/// Extracts per-packet vectors for a trace with the given policy.
fn packet_vectors(dsl: &str, trace: &Trace) -> Vec<FeatureVector> {
    let mut fe = SuperFe::from_dsl(dsl).expect("app policy valid");
    for p in &trace.records {
        fe.push(p);
    }
    fe.finish().packet_vectors
}

/// TF-style website fingerprinting: closed-world classification accuracy.
///
/// Visits are split per site into train (enrollment) and test halves; the
/// detector is a nearest-centroid classifier over the SuperFE-extracted
/// direction sequences (the geometric core of triplet fingerprinting).
pub fn run_tf(data: &WfDataset) -> StudyResult {
    let vectors = group_vectors(policies::TF, &data.trace);
    let by_flow: HashMap<GroupKey, &FeatureVector> = vectors.iter().map(|v| (v.key, v)).collect();

    // Per-site split: first half of visits enroll, second half test.
    let mut per_site: HashMap<usize, Vec<&[f64]>> = HashMap::new();
    for visit in &data.visits {
        if let Some(v) = by_flow.get(&GroupKey::Flow(visit.flow)) {
            per_site.entry(visit.site).or_default().push(&v.values);
        }
    }
    let mut clf = NearestCentroid::new();
    let mut tests: Vec<(&[f64], usize)> = Vec::new();
    for (&site, visits) in &per_site {
        let half = (visits.len() / 2).max(1);
        for (i, v) in visits.iter().enumerate() {
            if i < half {
                clf.fit_one(v, site);
            } else {
                tests.push((v, site));
            }
        }
    }
    let pairs: Vec<(usize, usize)> = tests
        .iter()
        .filter_map(|(v, site)| clf.predict(v).map(|p| (p, *site)))
        .collect();
    let acc = accuracy(pairs);
    StudyResult {
        app: "TF",
        accuracy: acc,
        auc: acc,
    }
}

/// CUMUL-style website fingerprinting: k-NN over the 104-dim statistical +
/// interpolated-cumulative feature vector.
pub fn run_cumul(data: &WfDataset) -> StudyResult {
    let vectors = group_vectors(policies::CUMUL, &data.trace);
    let by_flow: HashMap<GroupKey, &FeatureVector> = vectors.iter().map(|v| (v.key, v)).collect();

    // Normalize features to keep the distance metric balanced.
    let mut norm = MinMaxNorm::new();
    let mut labelled: Vec<(&[f64], usize)> = Vec::new();
    for visit in &data.visits {
        if let Some(v) = by_flow.get(&GroupKey::Flow(visit.flow)) {
            norm.observe(&v.values);
            labelled.push((&v.values, visit.site));
        }
    }
    let mut per_site: HashMap<usize, Vec<&[f64]>> = HashMap::new();
    for (v, site) in &labelled {
        per_site.entry(*site).or_default().push(v);
    }
    let mut knn = Knn::new(3).expect("k > 0");
    let mut tests: Vec<(Vec<f64>, usize)> = Vec::new();
    for (&site, visits) in &per_site {
        let half = (visits.len() / 2).max(1);
        for (i, v) in visits.iter().enumerate() {
            if i < half {
                knn.fit_one(norm.transform(v), site);
            } else {
                tests.push((norm.transform(v), site));
            }
        }
    }
    let pairs: Vec<(usize, usize)> = tests
        .iter()
        .filter_map(|(v, site)| knn.predict(v).map(|p| (p, *site)))
        .collect();
    let acc = accuracy(pairs);
    StudyResult {
        app: "CUMUL",
        accuracy: acc,
        auc: acc,
    }
}

/// MPTD-style covert-channel detection: decision tree over the 166-dim
/// mixed statistical feature set.
pub fn run_mptd(data: &CovertDataset) -> StudyResult {
    let vectors = group_vectors(policies::MPTD, &data.trace);
    let labelled: Vec<(Vec<f64>, usize)> = vectors
        .iter()
        .filter_map(|v| match v.key {
            GroupKey::Flow(ft) => Some((v.values.to_vec(), usize::from(data.covert.contains(&ft)))),
            _ => None,
        })
        .collect();
    let train: Vec<(Vec<f64>, usize)> = labelled.iter().step_by(2).cloned().collect();
    let test: Vec<&(Vec<f64>, usize)> = labelled.iter().skip(1).step_by(2).collect();
    let mut tree = DecisionTree::new(10, 4);
    if !tree.fit(&train) || test.is_empty() {
        return StudyResult {
            app: "MPTD",
            accuracy: 0.0,
            auc: 0.5,
        };
    }
    let pairs: Vec<(bool, bool)> = test
        .iter()
        .filter_map(|(x, l)| tree.predict(x).map(|p| (p == 1, *l == 1)))
        .collect();
    let conf = Confusion::from_pairs(pairs);
    StudyResult {
        app: "MPTD",
        accuracy: conf.accuracy(),
        auc: conf.f1(),
    }
}

/// N-BaIoT-style botnet detection: per-host anomaly detection with an
/// autoencoder trained on benign hosts' feature snapshots.
pub fn run_nbaiot(data: &BotnetDataset) -> StudyResult {
    let vectors = packet_vectors(policies::NBAIOT, &data.trace);
    let host_of = |key: &GroupKey| -> Option<u32> {
        key.project(Granularity::Host).map(|k| match k {
            GroupKey::Host(h) => h,
            _ => unreachable!("projection to host"),
        })
    };

    // Normalize over benign snapshots, train the AE on them.
    let mut norm = MinMaxNorm::new();
    let mut benign: Vec<&FeatureVector> = Vec::new();
    let mut per_host: HashMap<u32, Vec<&FeatureVector>> = HashMap::new();
    for v in &vectors {
        let Some(h) = host_of(&v.key) else { continue };
        per_host.entry(h).or_default().push(v);
        if !data.bot_hosts.contains(&h) {
            norm.observe(&v.values);
            benign.push(v);
        }
    }
    let dim = benign.first().map(|v| v.values.len()).unwrap_or(0);
    if dim == 0 {
        return StudyResult {
            app: "N-BaIoT",
            accuracy: 0.0,
            auc: 0.5,
        };
    }
    let mut ae = Autoencoder::new(dim, (dim * 3 / 4).max(1), 0.2, 11).expect("valid dims");
    for _ in 0..3 {
        for v in benign.iter().take(4000) {
            ae.train_step(&norm.transform(&v.values));
        }
    }

    // Per-host score: mean reconstruction RMSE of the host's snapshots.
    let scored: Vec<(f64, bool)> = per_host
        .iter()
        .map(|(h, vs)| {
            let s: f64 = vs
                .iter()
                .map(|v| ae.rmse(&norm.transform(&v.values)))
                .sum::<f64>()
                / vs.len() as f64;
            (s, data.bot_hosts.contains(h))
        })
        .collect();
    let roc = auc(&scored);
    // Threshold at the benign 95th percentile.
    let mut benign_scores: Vec<f64> = scored
        .iter()
        .filter(|(_, b)| !*b)
        .map(|(s, _)| *s)
        .collect();
    benign_scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let thr = benign_scores
        .get(benign_scores.len() * 95 / 100)
        .copied()
        .unwrap_or(f64::INFINITY);
    let conf = Confusion::from_pairs(scored.iter().map(|&(s, b)| (s > thr, b)));
    StudyResult {
        app: "N-BaIoT",
        accuracy: conf.accuracy(),
        auc: roc,
    }
}

/// NPOD-style covert-channel detection: decision tree over per-flow
/// distribution features.
pub fn run_npod(data: &CovertDataset) -> StudyResult {
    let vectors = group_vectors(policies::NPOD, &data.trace);
    let labelled: Vec<(Vec<f64>, usize)> = vectors
        .iter()
        .filter_map(|v| match v.key {
            GroupKey::Flow(ft) => Some((v.values.to_vec(), usize::from(data.covert.contains(&ft)))),
            _ => None,
        })
        .collect();
    // Deterministic split: even indices train, odd test.
    let train: Vec<(Vec<f64>, usize)> = labelled.iter().step_by(2).cloned().collect();
    let test: Vec<&(Vec<f64>, usize)> = labelled.iter().skip(1).step_by(2).collect();
    let mut tree = DecisionTree::new(8, 4);
    if !tree.fit(&train) || test.is_empty() {
        return StudyResult {
            app: "NPOD",
            accuracy: 0.0,
            auc: 0.5,
        };
    }
    let pairs: Vec<(bool, bool)> = test
        .iter()
        .filter_map(|(x, l)| tree.predict(x).map(|p| (p == 1, *l == 1)))
        .collect();
    let conf = Confusion::from_pairs(pairs);
    StudyResult {
        app: "NPOD",
        accuracy: conf.accuracy(),
        auc: conf.f1(),
    }
}

/// Kitsune-style intrusion detection: KitNET trained on a benign trace,
/// scored on a labelled attack trace. Returns per-packet detection AUC and
/// the accuracy at the benign-99th-percentile threshold.
pub fn run_kitsune(benign: &Trace, attack: &IntrusionDataset) -> StudyResult {
    // Train on benign traffic.
    let train_vectors = packet_vectors(policies::KITSUNE, benign);
    let dim = 115;
    let fm = (train_vectors.len() / 5).clamp(50, 2_000);
    let tr = (train_vectors.len() - fm).max(50);
    let mut kit = KitNet::new(dim, 10, fm, tr, 23).expect("valid config");
    for v in &train_vectors {
        kit.process(&v.values);
    }

    // Label the attack trace's vectors by (socket key, occurrence index).
    let attack_trace = attack.trace();
    let mut occurrence: HashMap<GroupKey, usize> = HashMap::new();
    let mut label_of: HashMap<(GroupKey, usize), bool> = HashMap::new();
    for (p, l) in &attack.labelled {
        let k = Granularity::Socket.key_of(p);
        let n = occurrence.entry(k).or_insert(0);
        label_of.insert((k, *n), *l);
        *n += 1;
    }
    let vectors = packet_vectors(policies::KITSUNE, &attack_trace);
    let mut occ2: HashMap<GroupKey, usize> = HashMap::new();
    let scored: Vec<(f64, bool)> = vectors
        .iter()
        .filter_map(|v| {
            let n = occ2.entry(v.key).or_insert(0);
            let key = (v.key, *n);
            *n += 1;
            let label = *label_of.get(&key)?;
            let s = kit.score(&v.values);
            s.is_finite().then_some((s, label))
        })
        .collect();
    let roc = auc(&scored);
    let mut benign_scores: Vec<f64> = scored
        .iter()
        .filter(|(_, l)| !*l)
        .map(|(s, _)| *s)
        .collect();
    benign_scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let thr = benign_scores
        .get(benign_scores.len() * 99 / 100)
        .copied()
        .unwrap_or(f64::INFINITY);
    let conf = Confusion::from_pairs(scored.iter().map(|&(s, l)| (s > thr, l)));
    StudyResult {
        app: "Kitsune",
        accuracy: conf.accuracy(),
        auc: roc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_trafficgen::botnet::{self, BotnetConfig};
    use superfe_trafficgen::covert::{self, CovertConfig};
    use superfe_trafficgen::intrusion::{self, IntrusionConfig, Scenario};
    use superfe_trafficgen::wf::{self, WfConfig};

    #[test]
    fn tf_classifies_sites_well() {
        let data = wf::generate(&WfConfig {
            sites: 8,
            visits_per_site: 8,
            seed: 3,
        });
        let r = run_tf(&data);
        assert!(r.accuracy > 0.6, "TF accuracy {}", r.accuracy);
    }

    #[test]
    fn cumul_classifies_sites() {
        let data = wf::generate(&WfConfig {
            sites: 6,
            visits_per_site: 8,
            seed: 13,
        });
        let r = run_cumul(&data);
        assert!(r.accuracy > 0.5, "CUMUL accuracy {}", r.accuracy);
    }

    #[test]
    fn mptd_detects_covert_channels() {
        let data = covert::generate(&CovertConfig {
            covert_flows: 16,
            normal_flows: 48,
            flow_len: 120,
            seed: 17,
        });
        let r = run_mptd(&data);
        assert!(r.accuracy > 0.8, "MPTD accuracy {}", r.accuracy);
    }

    #[test]
    fn nbaiot_separates_bots() {
        let data = botnet::generate(&BotnetConfig {
            bots: 8,
            benign: 20,
            duration_s: 30.0,
            seed: 5,
        });
        let r = run_nbaiot(&data);
        assert!(r.auc > 0.8, "N-BaIoT AUC {}", r.auc);
    }

    #[test]
    fn npod_detects_covert_channels() {
        let data = covert::generate(&CovertConfig {
            covert_flows: 20,
            normal_flows: 60,
            flow_len: 120,
            seed: 7,
        });
        let r = run_npod(&data);
        assert!(r.accuracy > 0.85, "NPOD accuracy {}", r.accuracy);
    }

    #[test]
    fn kitsune_detects_syn_dos() {
        let benign = intrusion::generate(&IntrusionConfig {
            scenario: Scenario::SynDos,
            benign_packets: 4_000,
            attack_packets: 0,
            seed: 1,
        })
        .trace();
        let attack = intrusion::generate(&IntrusionConfig {
            scenario: Scenario::SynDos,
            benign_packets: 3_000,
            attack_packets: 1_500,
            seed: 2,
        });
        let r = run_kitsune(&benign, &attack);
        assert!(r.auc > 0.75, "Kitsune AUC {}", r.auc);
    }
}
