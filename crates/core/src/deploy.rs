//! The deployment gate: optimize → compile → static analysis, shared by
//! every path that turns a [`Policy`] into a runnable deployment.
//!
//! [`SuperFe`](crate::SuperFe), [`StreamingPipeline`](crate::StreamingPipeline),
//! and the multi-tenant control plane (`superfe-ctrl`) all refuse to deploy
//! a policy whose static analysis reports an error-severity finding — the
//! hardware could not actually run the program. Centralizing the gate keeps
//! the three paths agreeing on what "deployable" means.

use superfe_policy::{compile, CompiledPolicy, Policy, PolicyError};

use crate::pipeline::SuperFeConfig;

/// Optimizes (when configured), compiles, and analyzes `policy` under
/// `cfg`, returning the compiled halves only if the analysis is clean of
/// errors. Error findings surface as [`PolicyError::Infeasible`] with the
/// rendered report (the same text `superfe check` prints).
pub fn gate(policy: &Policy, cfg: &SuperFeConfig) -> Result<CompiledPolicy, PolicyError> {
    let analyze_cfg = crate::analyze::AnalyzeConfig {
        cache: cfg.cache,
        ..crate::analyze::AnalyzeConfig::default()
    };
    let optimized;
    let policy = if cfg.optimize {
        optimized = superfe_policy::ir::opt::optimize(policy, &analyze_cfg.value_config());
        &optimized.policy
    } else {
        policy
    };
    let compiled = compile(policy)?;
    let report = crate::analyze::analyze(policy, &analyze_cfg);
    if report.has_errors() {
        return Err(PolicyError::Infeasible(report.render()));
    }
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_policy::dsl;
    use superfe_switch::MgpvConfig;

    const POLICY: &str =
        "pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_mean])\n.collect(host)";

    #[test]
    fn clean_policy_passes_the_gate() {
        let policy = dsl::parse(POLICY).unwrap();
        let compiled = gate(&policy, &SuperFeConfig::default()).unwrap();
        assert_eq!(compiled.switch.levels.len(), 1);
    }

    #[test]
    fn infeasible_configuration_is_refused_with_report() {
        let policy = dsl::parse(POLICY).unwrap();
        let cfg = SuperFeConfig {
            cache: MgpvConfig {
                short_count: 4_000_000,
                ..MgpvConfig::default()
            },
            ..SuperFeConfig::default()
        };
        match gate(&policy, &cfg).map(|_| ()) {
            Err(PolicyError::Infeasible(report)) => {
                assert!(report.contains("SF0303"), "{report}");
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }
}
