//! The end-to-end SuperFE pipeline: policy → FE-Switch → FE-NIC → features.

use superfe_net::wire::ParseError;
use superfe_net::{Direction, PacketRecord};
use superfe_nic::{FeNic, FeatureVector, NicStats};
use superfe_policy::dsl;
use superfe_policy::{CompiledPolicy, Policy, PolicyError};
use superfe_switch::{CacheMode, FeSwitch, MgpvConfig, MgpvStats, SwitchStats};

/// Deployment configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuperFeConfig {
    /// Switch cache configuration (§7 defaults).
    pub cache: MgpvConfig,
    /// Cache architecture (MGPV, or the GPV baseline).
    pub mode: CacheMode,
    /// Run the analysis-gated optimizer (filter pushdown, map fusion, dead
    /// field elimination) before compiling. Off by default: the rewrites are
    /// output-preserving, but deployments that want the policy on the wire
    /// to match the policy in the file byte-for-byte can keep it that way.
    pub optimize: bool,
}

impl Default for SuperFeConfig {
    fn default() -> Self {
        SuperFeConfig {
            cache: MgpvConfig::default(),
            mode: CacheMode::Mgpv,
            optimize: false,
        }
    }
}

/// Everything a finished extraction produced.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// Per-group feature vectors (for `collect(g)` policies).
    pub group_vectors: Vec<FeatureVector>,
    /// Per-packet feature vectors (for `collect(pkt)` policies).
    pub packet_vectors: Vec<FeatureVector>,
    /// Switch link counters.
    pub switch_stats: SwitchStats,
    /// Switch cache counters.
    pub cache_stats: MgpvStats,
    /// NIC engine counters.
    pub nic_stats: NicStats,
    /// Live groups per granularity level at the end of the run.
    pub groups_per_level: Vec<(superfe_net::Granularity, usize)>,
    /// Alerts raised by the in-pipeline quantized inference stage, in shard
    /// order. Empty unless the pipeline was built with
    /// [`crate::StreamingPipeline::with_inference`].
    pub inline_alerts: Vec<superfe_nic::InlineAlert>,
    /// Counters of the in-pipeline inference stage; `None` when no
    /// quantized model was attached.
    pub inline_stats: Option<superfe_nic::InlineStats>,
}

/// A deployed SuperFE instance (one switch + NIC pair).
pub struct SuperFe {
    compiled: CompiledPolicy,
    switch: FeSwitch,
    nic: FeNic,
    /// Reusable event frame: one allocation for the whole run instead of
    /// one `Vec` per packet.
    frame: Vec<superfe_switch::SwitchEvent>,
}

impl SuperFe {
    /// Deploys a policy with default configuration.
    pub fn new(policy: &Policy) -> Result<Self, PolicyError> {
        Self::with_config(policy, SuperFeConfig::default())
    }

    /// Parses a textual policy and deploys it.
    pub fn from_dsl(src: &str) -> Result<Self, PolicyError> {
        Self::new(&dsl::parse(src)?)
    }

    /// Deploys with explicit configuration.
    ///
    /// Deployment is gated on static analysis: when the policy and
    /// configuration produce any error-severity finding (the hardware cannot
    /// fit the program — `superfe check` shows the details), this returns
    /// [`PolicyError::Infeasible`] with the rendered report instead of
    /// deploying a program the target could not actually run.
    pub fn with_config(policy: &Policy, cfg: SuperFeConfig) -> Result<Self, PolicyError> {
        let compiled = crate::deploy::gate(policy, &cfg)?;
        let switch = FeSwitch::with_config(compiled.switch.clone(), cfg.cache, cfg.mode)
            .ok_or_else(|| {
                PolicyError::BadParameters("degenerate switch cache configuration".into())
            })?;
        let nic = FeNic::new(&compiled, cfg.cache.fg_table_size).ok_or_else(|| {
            PolicyError::BadParameters("degenerate NIC table configuration".into())
        })?;
        Ok(SuperFe {
            compiled,
            switch,
            nic,
            frame: Vec::new(),
        })
    }

    /// The compiled policy (switch and NIC halves).
    pub fn compiled(&self) -> &CompiledPolicy {
        &self.compiled
    }

    /// Feeds one parsed packet through switch and NIC.
    pub fn push(&mut self, p: &PacketRecord) {
        self.frame.clear();
        self.switch.process_into(p, &mut self.frame);
        for e in &self.frame {
            self.nic.handle(e);
        }
    }

    /// Feeds a raw Ethernet frame (exercising the switch parser).
    pub fn push_frame(
        &mut self,
        frame: &[u8],
        ts_ns: u64,
        direction: Direction,
    ) -> Result<(), ParseError> {
        let rec = superfe_net::wire::parse_frame(frame, ts_ns, direction)?;
        self.push(&rec);
        Ok(())
    }

    /// Drains per-packet feature vectors produced so far without ending the
    /// extraction (the streaming consumption path).
    pub fn drain_packet_vectors(&mut self) -> Vec<FeatureVector> {
        self.nic.take_packet_vectors()
    }

    /// Live switch statistics.
    pub fn switch_stats(&self) -> &SwitchStats {
        self.switch.stats()
    }

    /// Flushes the switch cache and collects all outputs.
    pub fn finish(mut self) -> Extraction {
        self.frame.clear();
        self.switch.flush_into(&mut self.frame);
        for e in &self.frame {
            self.nic.handle(e);
        }
        let group_vectors = self.nic.finish();
        let packet_vectors = self.nic.take_packet_vectors();
        Extraction {
            group_vectors,
            packet_vectors,
            switch_stats: *self.switch.stats(),
            cache_stats: self.switch.cache_stats(),
            nic_stats: *self.nic.stats(),
            groups_per_level: self.nic.groups_per_level(),
            inline_alerts: Vec::new(),
            inline_stats: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::wire::build_frame;
    use superfe_net::GroupKey;

    const FIG4: &str = "
pktstream
.groupby(flow)
.map(ipt, tstamp, f_ipt)
.reduce(ipt, [ft_hist{10000, 100}])
.reduce(size, [ft_hist{100, 16}])
.collect(flow)";

    #[test]
    fn from_dsl_end_to_end() {
        let mut fe = SuperFe::from_dsl(FIG4).unwrap();
        for i in 0..50u64 {
            fe.push(&PacketRecord::tcp(i * 1_000_000, 750, 9, 999, 8, 80));
        }
        let out = fe.finish();
        assert_eq!(out.group_vectors.len(), 1);
        assert_eq!(out.group_vectors[0].values.len(), 116);
        // Size histogram: 50 packets of 750 B land in bin 7 of the 16-bin
        // width-100 histogram (offset 100 after the IPT histogram).
        assert_eq!(out.group_vectors[0].values[100 + 7], 50.0);
        assert_eq!(out.nic_stats.records, 50);
        assert_eq!(out.switch_stats.pkts_in, 50);
    }

    #[test]
    fn push_frame_exercises_parser() {
        let mut fe = SuperFe::from_dsl(FIG4).unwrap();
        let p = PacketRecord::tcp(5, 500, 1, 1, 2, 2);
        let frame = build_frame(&p);
        fe.push_frame(&frame, 5, Direction::Ingress).unwrap();
        assert!(fe.push_frame(&[0; 4], 6, Direction::Ingress).is_err());
        let out = fe.finish();
        assert_eq!(out.nic_stats.records, 1);
    }

    #[test]
    fn invalid_policy_rejected() {
        assert!(SuperFe::from_dsl("pktstream\n.collect(flow)").is_err());
    }

    #[test]
    fn infeasible_configuration_refused() {
        // A cache far beyond the Tofino SRAM budget must not deploy; the
        // error carries the rendered analysis report.
        let policy = superfe_policy::dsl::parse(FIG4).unwrap();
        let cfg = SuperFeConfig {
            cache: MgpvConfig {
                short_count: 4_000_000,
                ..MgpvConfig::default()
            },
            ..SuperFeConfig::default()
        };
        match SuperFe::with_config(&policy, cfg).map(|_| ()) {
            Err(PolicyError::Infeasible(report)) => {
                assert!(report.contains("SF0303"), "{report}");
                assert!(report.contains("% utilization"), "{report}");
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn optimized_deployment_matches_unoptimized() {
        // A tautological filter plus a fusable f_one/f_direction pair: the
        // optimizer rewrites both, and the extraction must not change.
        let src = "pktstream\n.filter(size <= 65535)\n.groupby(flow)\n\
                   .map(one, _, f_one)\n.map(d, one, f_direction)\n\
                   .reduce(d, [f_sum])\n.reduce(one, [f_sum])\n.collect(flow)";
        let policy = superfe_policy::dsl::parse(src).unwrap();
        let run = |optimize: bool| {
            let mut fe = SuperFe::with_config(
                &policy,
                SuperFeConfig {
                    optimize,
                    ..SuperFeConfig::default()
                },
            )
            .unwrap();
            for i in 0..200u64 {
                fe.push(&PacketRecord::tcp(
                    i * 1000,
                    100 + i as u16,
                    (i % 5) as u32,
                    1,
                    2,
                    2,
                ));
            }
            let mut out = fe.finish().group_vectors;
            out.sort_by_key(|v| format!("{:?}", v.key));
            out.into_iter()
                .map(|v| (format!("{:?}", v.key), v.values))
                .collect::<Vec<_>>()
        };
        let plain = run(false);
        let opt = run(true);
        assert_eq!(plain, opt);
        // And the optimizer really did rewrite something.
        let o = superfe_policy::ir::opt::optimize(
            &policy,
            &crate::analyze::AnalyzeConfig::default().value_config(),
        );
        assert!(o.changed(), "expected rewrites on this policy");
        assert!(o.policy.ops.len() < policy.ops.len());
    }

    #[test]
    fn multi_flow_extraction() {
        let mut fe =
            SuperFe::from_dsl("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)")
                .unwrap();
        for i in 0..300u64 {
            fe.push(&PacketRecord::tcp(i, 100, (i % 3 + 1) as u32, 1000, 99, 80));
        }
        let out = fe.finish();
        assert_eq!(out.group_vectors.len(), 3);
        for v in &out.group_vectors {
            assert!(matches!(v.key, GroupKey::Host(_)));
            assert_eq!(v.values, vec![10_000.0]);
        }
    }

    #[test]
    fn drain_packet_vectors_streams() {
        let mut fe = SuperFe::from_dsl(
            "pktstream\n.groupby(host)\n.reduce(size, [f_damped{0.1}])\n.collect(pkt)",
        )
        .unwrap();
        fe.push(&PacketRecord::tcp(0, 100, 1, 1, 2, 2));
        // Records may still sit in the switch cache; force some flow churn.
        for i in 0..2000u64 {
            fe.push(&PacketRecord::tcp(
                i * 1000,
                100,
                (i % 997) as u32 + 10,
                1,
                2,
                2,
            ));
        }
        let drained = fe.drain_packet_vectors();
        let out = fe.finish();
        assert!(
            drained.len() + out.packet_vectors.len() >= 2001,
            "{} + {}",
            drained.len(),
            out.packet_vectors.len()
        );
    }
}
