//! SuperFE: a scalable and flexible feature extractor for ML-based traffic
//! analysis (EuroSys '25) — the public facade crate.
//!
//! SuperFE extracts ML-ready feature vectors from raw traffic by splitting
//! the work between a programmable switch (which batches per-packet feature
//! metadata in an MGPV cache) and SoC SmartNICs (which turn batched metadata
//! into feature vectors with streaming algorithms). Policies are written in
//! a small dataflow language; see [`superfe_policy`].
//!
//! # Quickstart
//!
//! ```
//! use superfe_core::SuperFe;
//! use superfe_net::PacketRecord;
//!
//! // Fig. 3 of the paper: basic statistical features per TCP flow.
//! let policy = "
//!     pktstream
//!     .filter(tcp.exist)
//!     .groupby(flow)
//!     .reduce(size, [f_mean, f_var, f_min, f_max])
//!     .collect(flow)";
//! let mut fe = SuperFe::from_dsl(policy).unwrap();
//! for i in 0..100u64 {
//!     fe.push(&PacketRecord::tcp(i * 1000, 400, 1, 1000, 2, 443));
//! }
//! let out = fe.finish();
//! assert_eq!(out.group_vectors.len(), 1);
//! assert_eq!(out.group_vectors[0].values[0], 400.0); // mean size
//! ```
//!
//! The crate also provides [`SoftwareExtractor`], the single-server baseline
//! the paper compares against (same policy semantics, evaluated
//! packet-at-a-time on the CPU with full-precision timestamps).

pub mod analyze;
pub mod deploy;
pub mod pipeline;
pub mod software;
pub mod stream;

pub use analyze::{analyze, AnalyzeConfig};
pub use deploy::gate;
pub use pipeline::{Extraction, SuperFe, SuperFeConfig};
pub use software::SoftwareExtractor;
pub use stream::StreamingPipeline;

// Re-export the component crates under predictable names.
pub use superfe_net as net;
pub use superfe_nic as nic;
pub use superfe_policy as policy;
pub use superfe_streaming as streaming;
pub use superfe_switch as switch;
pub use superfe_trafficgen as trafficgen;
