//! The single-server software baseline (the paper's comparison point).
//!
//! Mainstream feature extractors mirror traffic to servers and evaluate the
//! extraction logic packet-at-a-time in software. This module implements the
//! same policy semantics as the hardware pipeline with *full-precision*
//! timestamps and no batching — it is both the Fig. 9 throughput baseline
//! and the fidelity reference for Fig. 10 (its outputs are the "standard
//! feature definitions" when driven with exact float arithmetic).
//!
//! To model the real capture path honestly, [`SoftwareExtractor::push_frame`]
//! accepts raw frames and pays the parsing cost per packet, like a
//! pcap-based extractor does.

use std::collections::HashMap;

use superfe_net::wire::ParseError;
use superfe_net::{wire, Direction, GroupKey, PacketRecord};
use superfe_nic::FeatureVector;
use superfe_policy::ast::CollectUnit;
use superfe_policy::dsl;
use superfe_policy::exec::{view_of_packet, GroupExec};
use superfe_policy::{compile, CompiledPolicy, Policy, PolicyError};
use superfe_switch::pipeline::eval_predicate;

/// A software (single-server) feature extractor for one policy.
pub struct SoftwareExtractor {
    compiled: CompiledPolicy,
    levels: Vec<HashMap<GroupKey, GroupExec>>,
    per_pkt: bool,
    packet_vectors: Vec<FeatureVector>,
    pkts: u64,
    bytes: u64,
}

impl SoftwareExtractor {
    /// Builds the extractor for a policy.
    pub fn new(policy: &Policy) -> Result<Self, PolicyError> {
        let compiled = compile(policy)?;
        let levels = compiled.nic.levels.iter().map(|_| HashMap::new()).collect();
        let per_pkt = compiled
            .nic
            .levels
            .iter()
            .any(|l| l.collect == Some(CollectUnit::Pkt));
        Ok(SoftwareExtractor {
            compiled,
            levels,
            per_pkt,
            packet_vectors: Vec::new(),
            pkts: 0,
            bytes: 0,
        })
    }

    /// Parses a textual policy and builds the extractor.
    pub fn from_dsl(src: &str) -> Result<Self, PolicyError> {
        Self::new(&dsl::parse(src)?)
    }

    /// Packets processed.
    pub fn packets(&self) -> u64 {
        self.pkts
    }

    /// Bytes processed.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Processes one parsed packet.
    pub fn push(&mut self, p: &PacketRecord) {
        self.pkts += 1;
        self.bytes += u64::from(p.size);
        if let Some(f) = &self.compiled.switch.filter {
            if !eval_predicate(f, p) {
                return;
            }
        }
        let view = view_of_packet(p);
        let mut pkt_values = Vec::new();
        let mut pkt_key: Option<GroupKey> = None;
        for (li, level) in self.compiled.nic.levels.iter().enumerate() {
            let key = level.granularity.key_of(p);
            let hash = key.hash32();
            let exec = self.levels[li]
                .entry(key)
                .or_insert_with(|| GroupExec::new(level));
            exec.update(&view, hash);
            if self.per_pkt {
                pkt_values.extend(exec.finalize());
                pkt_key.get_or_insert(key);
            }
        }
        if self.per_pkt {
            if let Some(key) = pkt_key {
                self.packet_vectors.push(FeatureVector {
                    key,
                    values: pkt_values.into(),
                });
            }
        }
    }

    /// Processes one raw Ethernet frame (the pcap-style capture path).
    pub fn push_frame(
        &mut self,
        frame: &[u8],
        ts_ns: u64,
        direction: Direction,
    ) -> Result<(), ParseError> {
        let rec = wire::parse_frame(frame, ts_ns, direction)?;
        self.push(&rec);
        Ok(())
    }

    /// Features of a specific group, if it exists.
    pub fn group_features(&self, key: &GroupKey) -> Option<Vec<f64>> {
        for (li, level) in self.compiled.nic.levels.iter().enumerate() {
            if level.granularity == key.granularity() {
                return self.levels[li]
                    .get(key)
                    .map(superfe_policy::exec::GroupExec::finalize);
            }
        }
        None
    }

    /// Finishes, producing all group and packet vectors.
    pub fn finish(mut self) -> (Vec<FeatureVector>, Vec<FeatureVector>) {
        let mut groups = Vec::new();
        for (li, level) in self.compiled.nic.levels.iter().enumerate() {
            if let Some(CollectUnit::Group(_)) = level.collect {
                for (key, exec) in &self.levels[li] {
                    groups.push(FeatureVector {
                        key: *key,
                        values: exec.finalize().into(),
                    });
                }
            }
        }
        (groups, std::mem::take(&mut self.packet_vectors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SuperFe;

    const FIG3: &str = "
pktstream
.filter(tcp.exist)
.groupby(flow)
.map(one, _, f_one)
.reduce(one, [f_sum])
.collect(flow)
.reduce(size, [f_mean, f_var, f_min, f_max])
.collect(flow)
.map(ipt, tstamp, f_ipt)
.reduce(ipt, [f_mean, f_var, f_min, f_max])
.collect(flow)";

    fn packets() -> Vec<PacketRecord> {
        (0..200u64)
            .map(|i| {
                PacketRecord::tcp(
                    i * 1_000_000 + (i % 7) * 137_000,
                    (64 + (i * 13) % 1400) as u16,
                    3,
                    4444,
                    7,
                    443,
                )
            })
            .collect()
    }

    #[test]
    fn software_matches_hardware_pipeline() {
        // Fidelity: the software reference and the switch+NIC pipeline must
        // agree on every feature (timestamps here are µs-aligned, so the
        // switch's µs truncation is lossless for this input).
        let mut sw = SoftwareExtractor::from_dsl(FIG3).unwrap();
        let mut hw = SuperFe::from_dsl(FIG3).unwrap();
        for p in packets() {
            sw.push(&p);
            hw.push(&p);
        }
        let (sw_groups, _) = sw.finish();
        let hw_out = hw.finish();
        assert_eq!(sw_groups.len(), 1);
        assert_eq!(hw_out.group_vectors.len(), 1);
        let a = &sw_groups[0].values;
        let b = &hw_out.group_vectors[0].values;
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let denom = x.abs().max(1.0);
            assert!(
                (x - y).abs() / denom < 1e-2,
                "feature {i}: software {x} vs hardware {y}"
            );
        }
    }

    #[test]
    fn filter_applies() {
        let mut sw = SoftwareExtractor::from_dsl(FIG3).unwrap();
        sw.push(&PacketRecord::udp(0, 100, 1, 53, 2, 53));
        let (groups, _) = sw.finish();
        assert!(groups.is_empty());
    }

    #[test]
    fn frame_path_counts_bytes() {
        let mut sw = SoftwareExtractor::from_dsl(FIG3).unwrap();
        let p = PacketRecord::tcp(0, 500, 1, 1, 2, 2);
        let frame = superfe_net::wire::build_frame(&p);
        sw.push_frame(&frame, 0, Direction::Ingress).unwrap();
        assert_eq!(sw.packets(), 1);
        assert_eq!(sw.bytes(), 500);
        assert!(sw.push_frame(&[1, 2, 3], 0, Direction::Ingress).is_err());
    }

    #[test]
    fn group_features_lookup() {
        let mut sw = SoftwareExtractor::from_dsl(
            "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        )
        .unwrap();
        sw.push(&PacketRecord::tcp(0, 100, 42, 1, 2, 2));
        assert_eq!(sw.group_features(&GroupKey::Host(42)), Some(vec![100.0]));
        assert_eq!(sw.group_features(&GroupKey::Host(1)), None);
    }
}
