//! Whole-pipeline static analysis: the engine behind `superfe check`.
//!
//! `superfe-policy` owns the policy-level passes (structural `SF01xx`,
//! dataflow `SF02xx`, value-range/overflow `SF05xx`, static cost `SF06xx`);
//! the switch and NIC crates own their hardware feasibility passes
//! (`SF03xx`, `SF04xx`). This module runs all of them against one policy
//! and one deployment configuration — the value analysis parameterized by
//! the deployment's batch size, aging horizon, and sALU register width —
//! producing a single [`AnalysisReport`]; the deployment pipeline refuses
//! to deploy when that report contains errors.

use superfe_nic::{check_nic, NfpModel};
use superfe_policy::analyze::{analyze_policy_with, AnalysisReport};
use superfe_policy::{compile, Policy, ValueConfig};
use superfe_switch::resources::{TofinoBudget, SALU_REG_BITS};
use superfe_switch::{check_switch, MgpvConfig};

/// Everything the hardware feasibility passes need to know about the
/// deployment target and the expected workload.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Switch cache configuration (determines SRAM demand).
    pub cache: MgpvConfig,
    /// Switch resource budget.
    pub budget: TofinoBudget,
    /// SmartNIC model.
    pub nfp: NfpModel,
    /// Utilization percentage above which in-budget resources warn.
    pub headroom_pct: f64,
    /// Expected concurrent group population at each granularity level. The
    /// default (5k) models a moderate deployment; pass the measured
    /// population for capacity planning.
    pub groups: usize,
    /// Group-table width (entries per 64-byte bucket) for the placement ILP.
    pub table_width: usize,
    /// Upper bound on packets one group accumulates between MGPV evictions.
    /// The `SF05xx` value analysis proves switch accumulators cannot
    /// overflow within a batch of this size.
    pub group_packets: u64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            cache: MgpvConfig::default(),
            budget: TofinoBudget::default(),
            nfp: NfpModel::nfp4000(),
            headroom_pct: 90.0,
            groups: 5_000,
            table_width: 1,
            group_packets: 10_000,
        }
    }
}

impl AnalyzeConfig {
    /// The value-analysis parameters implied by this deployment: batch size,
    /// the cache's aging horizon, and the switch sALU register width.
    pub fn value_config(&self) -> ValueConfig {
        let mut vc = ValueConfig {
            group_packets: self.group_packets,
            acc_bits: SALU_REG_BITS,
            ..ValueConfig::default()
        };
        if let Some(aging) = self.cache.aging_t_ns {
            vc.aging_t_ns = aging;
        }
        vc
    }
}

/// Runs every analysis pass on `policy` under `cfg`.
///
/// Policy-level findings come first; when the policy is structurally sound
/// it is compiled and the switch (`SF03xx`) and NIC (`SF04xx`) passes run
/// against the split program. Structural errors short-circuit — there is no
/// program to model.
pub fn analyze(policy: &Policy, cfg: &AnalyzeConfig) -> AnalysisReport {
    let mut report = analyze_policy_with(policy, &cfg.value_config());
    if report.has_errors() {
        return report;
    }
    let Ok(compiled) = compile(policy) else {
        // Unreachable when the structural pass is clean (validate delegates
        // to it), but degrade gracefully rather than panic.
        return report;
    };
    report.extend(check_switch(
        &compiled.switch,
        &cfg.cache,
        &cfg.budget,
        cfg.headroom_pct,
    ));
    let groups_per_level = vec![cfg.groups; compiled.nic.levels.len()];
    report.extend(check_nic(
        &compiled.nic,
        &cfg.nfp,
        cfg.table_width,
        &groups_per_level,
        cfg.headroom_pct,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_policy::analyze::codes;
    use superfe_policy::dsl::parse;

    fn policy(src: &str) -> Policy {
        parse(src).unwrap()
    }

    #[test]
    fn clean_policy_clean_report() {
        let p = policy("pktstream\n.groupby(flow)\n.reduce(size, [f_mean])\n.collect(flow)");
        let r = analyze(&p, &AnalyzeConfig::default());
        assert!(r.is_lint_clean(), "{}", r.render());
        assert_eq!(r.diagnostics().len(), 0);
    }

    #[test]
    fn oversized_cache_is_infeasible() {
        let p = policy("pktstream\n.groupby(flow)\n.reduce(size, [f_mean])\n.collect(flow)");
        let cfg = AnalyzeConfig {
            cache: MgpvConfig {
                short_count: 4_000_000,
                ..MgpvConfig::default()
            },
            ..AnalyzeConfig::default()
        };
        let r = analyze(&p, &cfg);
        assert!(r.has_errors());
        assert!(r.has_code(codes::SWITCH_SRAM_EXCEEDED));
    }

    #[test]
    fn structural_errors_short_circuit_hardware_passes() {
        let p = policy("pktstream\n.groupby(flow)\n.reduce(size, [f_mean])\n.collect(flow)");
        let broken = Policy {
            ops: p.ops[..1].to_vec(),
        };
        let r = analyze(&broken, &AnalyzeConfig::default());
        assert!(r.has_errors());
        assert!(r.diagnostics().iter().all(|d| d.code.starts_with("SF01")));
    }

    #[test]
    fn dataflow_warnings_surface_with_hardware_notes() {
        // Dead map (warning) + a big-array policy that spills to DRAM (note).
        let p = policy(
            "pktstream\n.groupby(flow)\n.map(one, _, f_one)\n.map(d, one, f_direction)\n\
             .map(unused, tstamp, f_ipt)\n.reduce(d, [f_array{5000}])\n.collect(flow)",
        );
        let r = analyze(&p, &AnalyzeConfig::default());
        assert!(!r.has_errors(), "{}", r.render());
        assert!(r.has_code(codes::DEAD_MAP));
        assert!(r.has_code(codes::NIC_DRAM_SPILL));
        assert!(!r.is_lint_clean());
    }
}
