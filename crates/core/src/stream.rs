//! The streaming multi-core extraction pipeline.
//!
//! [`StreamingPipeline`] is the staged form of [`crate::SuperFe`]: the
//! switch simulator acts as a producer whose emitted events flow straight
//! into a [`superfe_nic::StreamingNic`] — CG-key-sharded worker threads fed
//! over bounded channels — so feature computation overlaps packet
//! processing and the full event stream is never materialized. Results are
//! identical to the single-threaded pipeline up to group ordering (see
//! DESIGN.md "Threading model").

use superfe_net::wire::ParseError;
use superfe_net::{Direction, PacketRecord};
use superfe_nic::{NicError, StreamingNic};
use superfe_policy::dsl;
use superfe_policy::{CompiledPolicy, Policy, PolicyError};
use superfe_switch::{FeSwitch, SwitchEvent};

use crate::pipeline::{Extraction, SuperFeConfig};

/// A deployed streaming SuperFE instance: one switch producer feeding
/// `workers` NIC shards.
pub struct StreamingPipeline {
    compiled: CompiledPolicy,
    switch: FeSwitch,
    nic: StreamingNic,
    /// Reusable event frame between switch and executor.
    frame: Vec<SwitchEvent>,
}

impl StreamingPipeline {
    /// Deploys a policy with default configuration and `workers` NIC
    /// shards.
    pub fn new(policy: &Policy, workers: usize) -> Result<Self, PolicyError> {
        Self::with_config(policy, SuperFeConfig::default(), workers)
    }

    /// Parses a textual policy and deploys it.
    pub fn from_dsl(src: &str, workers: usize) -> Result<Self, PolicyError> {
        Self::new(&dsl::parse(src)?, workers)
    }

    /// Deploys with explicit configuration, gated on the same static
    /// analysis as [`crate::SuperFe::with_config`].
    pub fn with_config(
        policy: &Policy,
        cfg: SuperFeConfig,
        workers: usize,
    ) -> Result<Self, PolicyError> {
        Self::build(policy, cfg, workers, None, None, None)
    }

    /// Deploys with an in-pipeline quantized inference stage: every
    /// finalized feature vector is scored *inside its NIC worker shard*
    /// before egress ([`superfe_nic::StreamingNic::with_inference`]), and
    /// alerts come back in [`Extraction::inline_alerts`]. The model should
    /// first be certified against the policy by the SF09xx analysis pass.
    pub fn with_inference(
        policy: &Policy,
        cfg: SuperFeConfig,
        workers: usize,
        model: std::sync::Arc<superfe_ml::QuantizedDetector>,
    ) -> Result<Self, PolicyError> {
        Self::build(policy, cfg, workers, None, None, Some(model))
    }

    /// Deploys with one [`superfe_nic::VectorSink`] attached per NIC shard
    /// — the detector attachment point used by `superfe-detect`: egressing
    /// feature vectors flow into the sinks incrementally instead of
    /// accumulating in [`Extraction::packet_vectors`] (see
    /// [`superfe_nic::StreamingNic::with_sinks`]).
    pub fn with_sinks(
        policy: &Policy,
        cfg: SuperFeConfig,
        workers: usize,
        sinks: Vec<Box<dyn superfe_nic::VectorSink>>,
    ) -> Result<Self, PolicyError> {
        Self::build(policy, cfg, workers, Some(sinks), None, None)
    }

    /// Deploys with optional sinks *and* optional per-stage latency
    /// instrumentation: with `metrics` attached, every frame's ring dwell,
    /// shard processing time, and sink egress time are recorded into the
    /// shared [`superfe_net::StageMetrics`] histograms (the bench harness's
    /// producer→shard→sink breakdown).
    pub fn with_options(
        policy: &Policy,
        cfg: SuperFeConfig,
        workers: usize,
        sinks: Option<Vec<Box<dyn superfe_nic::VectorSink>>>,
        metrics: Option<std::sync::Arc<superfe_net::StageMetrics>>,
    ) -> Result<Self, PolicyError> {
        Self::build(policy, cfg, workers, sinks, metrics, None)
    }

    fn build(
        policy: &Policy,
        cfg: SuperFeConfig,
        workers: usize,
        sinks: Option<Vec<Box<dyn superfe_nic::VectorSink>>>,
        metrics: Option<std::sync::Arc<superfe_net::StageMetrics>>,
        inference: Option<std::sync::Arc<superfe_ml::QuantizedDetector>>,
    ) -> Result<Self, PolicyError> {
        let compiled = crate::deploy::gate(policy, &cfg)?;
        let switch = FeSwitch::with_config(compiled.switch.clone(), cfg.cache, cfg.mode)
            .ok_or_else(|| {
                PolicyError::BadParameters("degenerate switch cache configuration".into())
            })?;
        let nic = match inference {
            Some(model) => {
                StreamingNic::with_inference(&compiled, cfg.cache.fg_table_size, workers, model)
            }
            None => StreamingNic::with_options(
                &compiled,
                cfg.cache.fg_table_size,
                workers,
                sinks,
                metrics,
            ),
        }
        .map_err(|e| PolicyError::BadParameters(e.to_string()))?;
        Ok(StreamingPipeline {
            compiled,
            switch,
            nic,
            frame: Vec::new(),
        })
    }

    /// The compiled policy (switch and NIC halves).
    pub fn compiled(&self) -> &CompiledPolicy {
        &self.compiled
    }

    /// Number of NIC worker shards.
    pub fn workers(&self) -> usize {
        self.nic.workers()
    }

    /// Feeds one parsed packet through the switch and into the worker
    /// shards. Blocks when a shard is saturated (backpressure).
    pub fn push(&mut self, p: &PacketRecord) -> Result<(), NicError> {
        self.frame.clear();
        self.switch.process_into(p, &mut self.frame);
        self.nic.push_all(self.frame.drain(..))
    }

    /// Feeds a raw Ethernet frame (exercising the switch parser).
    ///
    /// Parse failures surface as `Ok(Err(ParseError))`-style layered
    /// results: the outer error is pipeline loss, the inner is a malformed
    /// frame (counted, but not fatal to the stream).
    pub fn push_frame(
        &mut self,
        frame: &[u8],
        ts_ns: u64,
        direction: Direction,
    ) -> Result<Result<(), ParseError>, NicError> {
        match superfe_net::wire::parse_frame(frame, ts_ns, direction) {
            Ok(rec) => self.push(&rec).map(Ok),
            Err(e) => Ok(Err(e)),
        }
    }

    /// Flushes the switch cache, drains the shards, and collects all
    /// outputs. Group vectors are merged in shard order (deterministic for
    /// a given input and worker count).
    pub fn finish(mut self) -> Result<Extraction, NicError> {
        self.frame.clear();
        self.switch.flush_into(&mut self.frame);
        self.nic.push_all(self.frame.drain(..))?;
        let cache_stats = self.switch.cache_stats();
        let switch_stats = *self.switch.stats();
        let out = self.nic.finish()?;
        Ok(Extraction {
            group_vectors: out.group_vectors,
            packet_vectors: out.packet_vectors,
            switch_stats,
            cache_stats,
            nic_stats: out.stats,
            groups_per_level: out.groups_per_level,
            inline_alerts: out.inline_alerts,
            inline_stats: out.inline_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuperFe;
    use superfe_net::wire::build_frame;

    const POLICY: &str =
        "pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_mean])\n.collect(host)";

    fn packets(n: u64) -> impl Iterator<Item = PacketRecord> {
        (0..n).map(|i| PacketRecord::tcp(i * 1000, 200, (i % 17 + 1) as u32, 1000, 9, 443))
    }

    fn sorted(mut v: Vec<superfe_nic::FeatureVector>) -> Vec<superfe_nic::FeatureVector> {
        v.sort_by(|a, b| format!("{:?}", a.key).cmp(&format!("{:?}", b.key)));
        v
    }

    #[test]
    fn streaming_matches_superfe() {
        let mut base = SuperFe::from_dsl(POLICY).unwrap();
        for p in packets(4000) {
            base.push(&p);
        }
        let expect = base.finish();

        for workers in [1, 2, 4] {
            let mut fe = StreamingPipeline::from_dsl(POLICY, workers).unwrap();
            for p in packets(4000) {
                fe.push(&p).unwrap();
            }
            let got = fe.finish().unwrap();
            assert_eq!(
                sorted(expect.group_vectors.clone()),
                sorted(got.group_vectors),
                "workers={workers}"
            );
            assert_eq!(got.nic_stats.records, expect.nic_stats.records);
            assert_eq!(got.switch_stats.pkts_in, 4000);
            assert_eq!(got.groups_per_level, expect.groups_per_level);
        }
    }

    #[test]
    fn push_frame_layers_parse_errors() {
        let mut fe = StreamingPipeline::from_dsl(POLICY, 2).unwrap();
        let p = PacketRecord::tcp(5, 500, 1, 1, 2, 2);
        let frame = build_frame(&p);
        fe.push_frame(&frame, 5, Direction::Ingress)
            .unwrap()
            .unwrap();
        // A malformed frame is an inner error, not a dead pipeline.
        assert!(fe
            .push_frame(&[0; 4], 6, Direction::Ingress)
            .unwrap()
            .is_err());
        let out = fe.finish().unwrap();
        assert_eq!(out.nic_stats.records, 1);
    }

    #[test]
    fn infeasible_configuration_refused() {
        let policy = dsl::parse(POLICY).unwrap();
        let cfg = SuperFeConfig {
            cache: superfe_switch::MgpvConfig {
                short_count: 4_000_000,
                ..superfe_switch::MgpvConfig::default()
            },
            ..SuperFeConfig::default()
        };
        assert!(matches!(
            StreamingPipeline::with_config(&policy, cfg, 2).map(|_| ()),
            Err(PolicyError::Infeasible(_))
        ));
    }
}
