//! SmartNIC memory utilization (the Table 4 "SmartNIC Memory" column).
//!
//! Unlike the per-group placement ILP (Eq. 3–5, which only constrains the
//! data-bus width), sustained deployments must also respect each memory
//! level's *capacity* across all live groups: `n_groups · Σ b_s ≤ cap_m`.
//! This module allocates state across the hierarchy level by level —
//! hottest granularity first, fastest memory first, honoring both the bus
//! and capacity constraints — and reports the resulting on-chip usage, the
//! quantity Table 4's "SmartNIC Memory" column measures.

use superfe_policy::NicProgram;

use crate::arch::{MemLevel, NfpModel};

/// Modeled NIC memory usage.
#[derive(Clone, Debug)]
pub struct NicResources {
    /// `(level, bytes used)` for every on-chip level (DRAM excluded).
    pub per_level: Vec<(MemLevel, usize)>,
    /// Bytes pushed to external DRAM.
    pub dram_bytes: usize,
    /// Total on-chip bytes used.
    pub used_bytes: usize,
    /// Total on-chip capacity.
    pub capacity_bytes: usize,
}

impl NicResources {
    /// Overall utilization percentage of on-chip memory.
    pub fn utilization_pct(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        100.0 * self.used_bytes as f64 / self.capacity_bytes as f64
    }
}

/// Capacity of one on-chip memory level across the whole NIC.
fn total_capacity(nfp: &NfpModel, level: MemLevel) -> usize {
    nfp.memory(level)
        .map(|m| match level {
            MemLevel::Cls | MemLevel::Ctm => m.capacity_bytes * nfp.islands,
            _ => m.capacity_bytes,
        })
        .unwrap_or(0)
}

/// Models NIC memory usage for a deployed program.
///
/// `groups_per_level` is the number of live groups at each granularity
/// level. Every group instantiates the level's per-group state block plus
/// its key; states are assigned greedily to the fastest memory with both bus
/// headroom (64-byte line per group) and capacity headroom, overflowing to
/// DRAM.
pub fn model(program: &NicProgram, groups_per_level: &[usize], nfp: &NfpModel) -> NicResources {
    model_many(&[(program, groups_per_level)], nfp)
}

/// Models the joint NIC memory usage of several programs co-deployed on
/// **one** NIC: the same greedy fastest-memory-first allocation as
/// [`model`], with all tenants drawing from a single shared pool of
/// level capacities. Tenants are allocated in slice order (attach order),
/// matching the admission controller's first-come placement — this is the
/// multi-tenant admission model, not a second resource model.
pub fn model_many(tenants: &[(&NicProgram, &[usize])], nfp: &NfpModel) -> NicResources {
    let on_chip: Vec<MemLevel> = MemLevel::all()
        .into_iter()
        .filter(|l| *l != MemLevel::Dram)
        .collect();
    // Remaining capacity per level, shared across every tenant.
    let mut remaining: Vec<usize> = on_chip.iter().map(|&l| total_capacity(nfp, l)).collect();
    // Remaining per-group bus budget per level (one 64-byte line each).
    let bus: Vec<usize> = on_chip
        .iter()
        .map(|&l| nfp.memory(l).map(|m| m.bus_bytes).unwrap_or(0))
        .collect();

    let mut used: Vec<usize> = vec![0; on_chip.len()];
    let mut dram_bytes = 0usize;

    for (program, groups_per_level) in tenants {
        let states = program.states();
        for (li, level) in program.levels.iter().enumerate() {
            let groups = groups_per_level.get(li).copied().unwrap_or(0);
            if groups == 0 {
                continue;
            }
            let prefix = format!("{}/", level.granularity.name());
            let mut bus_left = bus.clone();

            // The group key always sits with the fastest state block; charge
            // it first as a pseudo-state.
            let mut blocks: Vec<usize> = vec![level.granularity.key_bytes()];
            blocks.extend(
                states
                    .iter()
                    .filter(|s| s.name.starts_with(&prefix))
                    .map(|s| s.bytes),
            );

            for bytes in blocks {
                let need_total = bytes.saturating_mul(groups);
                let mut placed = false;
                for (mi, lvl) in on_chip.iter().enumerate() {
                    // CLS/CTM are single-line fast paths; IMEM/EMEM support
                    // multi-beat bulk transfers, so only capacity binds
                    // there.
                    let bus_ok = match lvl {
                        MemLevel::Cls | MemLevel::Ctm => bytes <= bus_left[mi],
                        _ => true,
                    };
                    if bus_ok && need_total <= remaining[mi] {
                        bus_left[mi] = bus_left[mi].saturating_sub(bytes);
                        remaining[mi] -= need_total;
                        used[mi] += need_total;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    dram_bytes += need_total;
                }
            }
        }
    }

    let used_bytes = used.iter().sum();
    let capacity_bytes = on_chip.iter().map(|&l| total_capacity(nfp, l)).sum();
    NicResources {
        per_level: on_chip.into_iter().zip(used).collect(),
        dram_bytes,
        used_bytes,
        capacity_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_policy::compile;
    use superfe_policy::dsl;

    fn program(src: &str) -> NicProgram {
        compile(&dsl::parse(src).unwrap()).unwrap().nic
    }

    fn kitsune() -> NicProgram {
        program(superfe_apps_kitsune_src())
    }

    // A Kitsune-like policy without depending on the apps crate.
    fn superfe_apps_kitsune_src() -> &'static str {
        "pktstream\n.groupby(socket)\n\
         .reduce(size, [f_damped{5}, f_damped{1}, f_damped{0.1}])\n\
         .reduce(size, [f_damped2d{5}, f_damped2d{1}])\n.collect(pkt)\n\
         .groupby(channel)\n.map(ipt, tstamp, f_ipt)\n\
         .reduce(size, [f_damped{5}, f_damped{1}])\n\
         .reduce(ipt, [f_damped{5}, f_damped{1}])\n.collect(pkt)\n\
         .groupby(host)\n.reduce(size, [f_damped{5}, f_damped{1}])\n.collect(pkt)"
    }

    #[test]
    fn utilization_grows_with_groups() {
        let p =
            program("pktstream\n.groupby(host)\n.reduce(size, [f_mean, f_var])\n.collect(host)");
        let nfp = NfpModel::nfp4000();
        let small = model(&p, &[1_000], &nfp);
        let big = model(&p, &[100_000], &nfp);
        assert!(big.used_bytes > small.used_bytes * 50);
        assert!(big.utilization_pct() > small.utilization_pct());
    }

    #[test]
    fn kitsune_scale_utilization_band() {
        // With a line-rate concurrent population, Kitsune-class policies
        // land in the 40-80% band Table 4 reports.
        let nfp = NfpModel::nfp4000();
        let r = model(&kitsune(), &[60_000, 40_000, 20_000], &nfp);
        let pct = r.utilization_pct();
        assert!((30.0..=100.0).contains(&pct), "utilization {pct}%");
        assert!(r.dram_bytes > 0, "overflow states spill to DRAM");
    }

    #[test]
    fn capacity_never_exceeded() {
        let nfp = NfpModel::nfp4000();
        let r = model(&kitsune(), &[1_000_000, 500_000, 250_000], &nfp);
        assert!(r.used_bytes <= r.capacity_bytes);
        for (lvl, used) in &r.per_level {
            assert!(*used <= total_capacity(&nfp, *lvl), "{}", lvl.name());
        }
    }

    #[test]
    fn big_array_states_go_to_dram() {
        // 20 KB per group across 10k groups exceeds on-chip capacity
        // regardless of multi-beat support.
        let p = program(
            "pktstream\n.groupby(flow)\n.map(one, _, f_one)\n.map(d, one, f_direction)\n\
             .reduce(d, [f_array{5000}])\n.collect(flow)",
        );
        let nfp = NfpModel::nfp4000();
        let r = model(&p, &[10_000], &nfp);
        // 20 KB per group exceeds the 64-byte bus line: DRAM.
        assert!(r.dram_bytes >= 5000 * 4 * 10_000);
    }

    #[test]
    fn model_many_shares_one_capacity_pool() {
        let p =
            program("pktstream\n.groupby(host)\n.reduce(size, [f_mean, f_var])\n.collect(host)");
        let nfp = NfpModel::nfp4000();
        let groups = [200_000usize];
        let solo = model(&p, &groups, &nfp);
        let duo = model_many(&[(&p, &groups[..]), (&p, &groups[..])], &nfp);
        // Joint demand is the sum of solo demands...
        assert_eq!(
            duo.used_bytes + duo.dram_bytes,
            2 * (solo.used_bytes + solo.dram_bytes)
        );
        // ...but the second tenant competes for the same fast levels, so
        // on-chip usage is less than doubled once the pool saturates.
        assert!(duo.used_bytes <= duo.capacity_bytes);
        assert_eq!(duo.capacity_bytes, solo.capacity_bytes);
        // Degenerate cases: empty set and singleton reduce to model().
        assert_eq!(model_many(&[], &nfp).used_bytes, 0);
        let single = model_many(&[(&p, &groups[..])], &nfp);
        assert_eq!(single.used_bytes, solo.used_bytes);
        assert_eq!(single.dram_bytes, solo.dram_bytes);
    }

    #[test]
    fn zero_groups_zero_usage() {
        let nfp = NfpModel::nfp4000();
        let r = model(&kitsune(), &[0, 0, 0], &nfp);
        assert_eq!(r.used_bytes, 0);
        assert_eq!(r.utilization_pct(), 0.0);
    }
}
