//! FE-NIC: the SmartNIC half of SuperFE (§6 of the paper).
//!
//! The paper's prototype is ~3K lines of Micro-C on Netronome NFP-4000
//! SmartNICs. This crate provides both a faithful *model* of that hardware
//! and a real, runnable feature-computation engine:
//!
//! - [`arch`]: the NFP SoC model — islands, 8-thread RISC cores at 800 MHz,
//!   and the CLS/CTM/IMEM/EMEM/DRAM memory hierarchy with published
//!   latencies and the 64-byte data bus (§6.2, Fig. 8).
//! - [`placement`]: the group-table placement ILP (Eq. 3–5), solved exactly
//!   by branch and bound (substituting for Gurobi).
//! - [`table`]: the 64-byte-bucket fixed-length-chaining group table with
//!   DRAM overflow (§6.2 "group table implementation").
//! - [`engine`]: [`FeNic`] — consumes the switch's event stream (MGPV
//!   evictions + FG table updates), recovers every granularity level, runs
//!   the compiled `map`/`reduce`/`synthesize`/`collect` program, and emits
//!   feature vectors.
//! - [`perf`]: the cycle model with the three §6.2 optimizations as toggles
//!   (hash reuse, thread-level latency hiding, division elimination) — the
//!   basis of Figs. 16 and 17.
//! - [`stream`]: the streaming multi-core executor — CG-key-sharded worker
//!   threads fed over bounded channels with backpressure, the software
//!   analogue of the NBI packet distribution.
//! - [`inference`]: the in-pipeline quantized inference stage — a
//!   fixed-point detector compiled by the SF09xx pass, executed on each
//!   finalized vector inside the worker shard so only alerts leave the
//!   pipeline.
//! - [`shared`]: the multi-tenant variant of [`stream`] — one shard pool
//!   serving N per-tenant engines, with epoch-based in-band attach/detach
//!   driven by the `superfe-ctrl` control plane.
//! - [`parallel`]: the batch façade over [`stream`] for callers holding a
//!   complete event slice.
//! - [`resources`]: NIC memory utilization for Table 4.
//! - [`feasibility`]: the `SF04xx` diagnostics of `superfe check`, combining
//!   the placement ILP and the capacity model into pass/warn/fail findings.

pub mod arch;
pub mod engine;
pub mod error;
pub mod feasibility;
pub mod inference;
pub mod parallel;
pub mod perf;
pub mod placement;
pub mod resources;
pub mod shared;
pub mod stream;
pub mod table;

pub use arch::{MemLevel, NfpModel};
pub use engine::{EvictedVector, FeNic, FeatureVector, NicStats};
pub use error::NicError;
pub use feasibility::{check_capacity, check_nic};
pub use inference::{
    canonicalize_inline_alerts, inline_alert_fingerprint, InlineAlert, InlineInference, InlineStats,
};
pub use parallel::{ParallelNic, ParallelOutput};
pub use perf::{cycles_from_cost, CycleModel, OptFlags, PerfEstimate};
pub use placement::{solve_placement, Placement};
pub use resources::{model_many, NicResources};
pub use shared::{ShardUnitState, SharedStreamingNic, UnitPressure, UnitStateDump};
pub use stream::{EgressVector, StreamOutput, StreamingNic, VectorSink};
pub use table::{EvictionPolicy, GroupTable, TableBudget, TableStats};
