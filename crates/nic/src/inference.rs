//! In-pipeline quantized inference: scoring finalized feature vectors
//! inside the worker shards, before egress.
//!
//! The host-side serving path ([`VectorSink`](crate::stream::VectorSink))
//! moves every vector off the NIC and scores it in a separate stage. The
//! in-pipeline path instead executes a fixed-point
//! [`QuantizedDetector`](superfe_ml::QuantizedDetector) — compiled by the
//! SF09xx certification pass — on each vector right where it is finalized,
//! and only *alerts* leave the pipeline.
//!
//! Determinism: the quantized model is pure integer arithmetic, every group
//! key lives on exactly one shard, and each alert carries the shard's
//! `(key, seq)` stream position — the same canonical-ordering contract as
//! the host alert stream, so the alert sequence per key is bitwise
//! identical at every worker count.

use std::sync::Arc;

use superfe_ml::QuantizedDetector;
use superfe_net::GroupKey;

use crate::engine::FeatureVector;

/// One alert raised by the in-pipeline inference stage.
#[derive(Clone, Debug)]
pub struct InlineAlert {
    /// NIC shard that computed (and scored) the vector.
    pub shard: usize,
    /// Per-shard monotonic sequence number of the scored vector.
    pub seq: u64,
    /// Group key of the offending vector.
    pub key: GroupKey,
    /// The quantized anomaly score (`score_q / 2^FA`, exactly
    /// representable).
    pub score: f64,
    /// The grid-snapped alert threshold in force.
    pub threshold: f64,
}

/// Counters of one shard's (or one merged run's) inference stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InlineStats {
    /// Vectors scored.
    pub scored: u64,
    /// Alerts raised (score strictly above the threshold).
    pub alerts: u64,
    /// Vectors skipped because their dimension did not match the model
    /// (a policy/detector mismatch that certification would have flagged).
    pub dim_errors: u64,
}

impl InlineStats {
    /// Accumulates another shard's counters.
    pub fn absorb(&mut self, other: &InlineStats) {
        self.scored += other.scored;
        self.alerts += other.alerts;
        self.dim_errors += other.dim_errors;
    }
}

/// The per-shard inference stage: one shared quantized model, private
/// counters and alert buffer. Lives inside the worker thread; scoring is
/// pure integer arithmetic, so sharing the model read-only across shards
/// cannot introduce nondeterminism.
pub struct InlineInference {
    model: Arc<QuantizedDetector>,
    alerts: Vec<InlineAlert>,
    stats: InlineStats,
}

impl InlineInference {
    /// Creates a shard stage over a shared quantized model.
    pub fn new(model: Arc<QuantizedDetector>) -> Self {
        InlineInference {
            model,
            alerts: Vec::new(),
            stats: InlineStats::default(),
        }
    }

    /// Scores one finalized vector at its `(shard, seq)` stream position,
    /// buffering an alert when the score crosses the threshold.
    pub fn score(&mut self, shard: usize, seq: u64, vector: &FeatureVector) {
        let Ok(score) = self.model.score(vector.values()) else {
            self.stats.dim_errors += 1;
            return;
        };
        self.stats.scored += 1;
        if self.model.is_alert(score) {
            self.stats.alerts += 1;
            self.alerts.push(InlineAlert {
                shard,
                seq,
                key: vector.key,
                score,
                threshold: self.model.threshold(),
            });
        }
    }

    /// Drains the stage into its buffered alerts and final counters.
    pub fn into_parts(self) -> (Vec<InlineAlert>, InlineStats) {
        (self.alerts, self.stats)
    }
}

/// Sorts inline alerts into the canonical order — by group key, then by
/// per-key stream position. `seq` *values* differ across worker counts but
/// the per-key order does not, so the canonical `(key, score, threshold)`
/// sequence is worker-count-independent.
pub fn canonicalize_inline_alerts(alerts: &mut [InlineAlert]) {
    alerts.sort_by(|a, b| {
        format!("{:?}", a.key)
            .cmp(&format!("{:?}", b.key))
            .then(a.seq.cmp(&b.seq))
    });
}

/// The worker-count-independent fingerprint of a canonical inline alert
/// stream: `(key, score bits, threshold bits)` triples in canonical order.
pub fn inline_alert_fingerprint(alerts: &[InlineAlert]) -> Vec<(String, u64, u64)> {
    alerts
        .iter()
        .map(|a| {
            (
                format!("{:?}", a.key),
                a.score.to_bits(),
                a.threshold.to_bits(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_ml::{
        quantize, train_and_calibrate, CalibrationConfig, CentroidDetector, Detector, QuantConfig,
    };
    use superfe_streaming::FeatureValues;

    fn model(dim: usize) -> Arc<QuantizedDetector> {
        let data: Vec<Vec<f64>> = (0..80)
            .map(|i| (0..dim).map(|d| 5.0 + ((i + d) % 7) as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let frozen = train_and_calibrate(
            Box::new(CentroidDetector::new(dim).unwrap()) as Box<dyn Detector>,
            &refs,
            0.2,
            CalibrationConfig::default(),
        )
        .unwrap();
        Arc::new(quantize(&frozen, &QuantConfig::default()).unwrap())
    }

    fn vector(key_host: u32, values: &[f64]) -> FeatureVector {
        let mut buf = FeatureValues::with_capacity(values.len());
        buf.extend_from_slice(values);
        FeatureVector {
            key: GroupKey::Host(key_host),
            values: buf,
        }
    }

    #[test]
    fn scores_and_counts_alerts() {
        let m = model(3);
        let mut inf = InlineInference::new(m.clone());
        // A benign vector (near the centroid) and a hostile one (opposed).
        inf.score(0, 0, &vector(1, &[5.0, 6.0, 5.0]));
        inf.score(0, 1, &vector(2, &[-5.0, -6.0, -5.0]));
        let (alerts, stats) = inf.into_parts();
        assert_eq!(stats.scored, 2);
        assert_eq!(stats.alerts, 1);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].key, GroupKey::Host(2));
        assert!(alerts[0].score > alerts[0].threshold);
        assert_eq!(alerts[0].threshold, m.threshold());
    }

    #[test]
    fn dimension_mismatch_is_counted_not_fatal() {
        let mut inf = InlineInference::new(model(3));
        inf.score(0, 0, &vector(1, &[1.0]));
        let (alerts, stats) = inf.into_parts();
        assert!(alerts.is_empty());
        assert_eq!(
            stats,
            InlineStats {
                scored: 0,
                alerts: 0,
                dim_errors: 1
            }
        );
    }

    #[test]
    fn canonical_order_drops_shard_dependence() {
        let mk = |shard, seq, host| InlineAlert {
            shard,
            seq,
            key: GroupKey::Host(host),
            score: 1.0,
            threshold: 0.5,
        };
        // Same logical stream sharded two ways.
        let mut a = vec![mk(0, 0, 2), mk(0, 1, 1), mk(0, 2, 2)];
        let mut b = vec![mk(1, 0, 2), mk(0, 0, 1), mk(1, 1, 2)];
        canonicalize_inline_alerts(&mut a);
        canonicalize_inline_alerts(&mut b);
        assert_eq!(inline_alert_fingerprint(&a), inline_alert_fingerprint(&b));
    }

    #[test]
    fn stats_absorb_sums_counters() {
        let mut a = InlineStats {
            scored: 3,
            alerts: 1,
            dim_errors: 0,
        };
        a.absorb(&InlineStats {
            scored: 2,
            alerts: 2,
            dim_errors: 1,
        });
        assert_eq!(
            a,
            InlineStats {
                scored: 5,
                alerts: 3,
                dim_errors: 1
            }
        );
    }
}
