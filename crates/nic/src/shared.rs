//! Multi-tenant streaming NIC executor: one shard pool, N tenant engines.
//!
//! The NIC half of the shared data path (see `superfe-switch::tenant` for
//! the switch half). The same CG-key-sharded worker pool as
//! [`StreamingNic`](crate::stream::StreamingNic) serves every tenant at
//! once; the differences that make it multi-tenant:
//!
//! - **Tagged events, solo-identical routing**: the switch link carries
//!   [`TaggedEvent`]s. An MGPV eviction still goes to shard
//!   `hash % workers` — *not* tenant-salted — so each tenant's per-shard
//!   event subsequence (and therefore its merged output order and
//!   `(shard, seq)` egress tags) is bitwise-identical to a solo
//!   [`StreamingNic`](crate::stream::StreamingNic) at the same worker
//!   count. FG updates broadcast to every shard, exactly as solo.
//! - **Per-tenant engines**: each worker owns one private
//!   [`FeNic`] per tenant, so the effective group-table key is
//!   `(tenant, cg_key)` and state never crosses tenant boundaries. The
//!   per-tenant `fg_table_size` is that tenant's group-table quota;
//!   per-tenant [`NicStats`] are the accounting counters.
//! - **Per-tenant sinks**: each tenant brings its own
//!   [`VectorSink`] per shard, keeping egress vector/alert streams
//!   isolated end to end.
//! - **Epoch-based reconfiguration**: [`SharedStreamingNic::attach`] and
//!   [`SharedStreamingNic::detach`] travel *in-band* as control markers
//!   through the same bounded channels as event frames, so every worker
//!   applies them at the same point of the event stream — the epoch
//!   boundary. Detach is a drain-and-flush handshake: pending frames are
//!   flushed ahead of the marker, each worker finalizes the departing
//!   tenant's engine and acks with its output, and the caller blocks until
//!   all shards have acked. Untouched tenants lose or duplicate zero
//!   vectors because their engines and channels are never touched.

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use superfe_net::Granularity;
use superfe_policy::CompiledPolicy;
use superfe_switch::tenant::{TaggedEvent, TenantId};
use superfe_switch::SwitchEvent;

use crate::engine::{FeNic, FeatureVector, NicStats};
use crate::error::NicError;
use crate::stream::{EgressVector, StreamOutput, VectorSink, CHANNEL_DEPTH, FRAME_SIZE};

/// What travels to a worker: an event frame or an epoch control marker.
enum ShardMsg {
    /// A batch of tagged events in stream order.
    Frame(Vec<TaggedEvent>),
    /// Attach marker: adopt this pre-built engine (and optional sink) for
    /// `tenant`, effective for all events after this point in the stream.
    Attach {
        tenant: TenantId,
        engine: Box<FeNic>,
        sink: Option<Box<dyn VectorSink>>,
    },
    /// Detach marker: finalize `tenant`'s engine, flush its sink, and ack
    /// the finished shard output back to the control plane.
    Detach {
        tenant: TenantId,
        ack: Sender<(usize, TenantPiece)>,
    },
}

/// One tenant's finished output on one shard.
struct TenantPiece {
    tenant: TenantId,
    groups: Vec<FeatureVector>,
    pkts: Vec<FeatureVector>,
    stats: NicStats,
    groups_per_level: Vec<(Granularity, usize)>,
}

/// One tenant's state on one worker.
struct TenantEngine {
    tenant: TenantId,
    nic: Box<FeNic>,
    sink: Option<Box<dyn VectorSink>>,
    /// Per-(tenant, shard) monotonic egress sequence number.
    seq: u64,
    shard: usize,
}

impl TenantEngine {
    /// Diverts accumulated per-packet vectors to the tenant's sink.
    fn drain_packets(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            for vector in self.nic.take_packet_vectors() {
                sink.emit(EgressVector {
                    shard: self.shard,
                    seq: self.seq,
                    vector,
                });
                self.seq += 1;
            }
        }
    }

    /// End of stream for this tenant on this shard: finish the engine,
    /// egress the group vectors, flush the sink.
    fn finalize(mut self) -> TenantPiece {
        let groups = self.nic.finish();
        let pkts = self.nic.take_packet_vectors();
        if let Some(mut sink) = self.sink.take() {
            for vector in groups.iter().cloned() {
                sink.emit(EgressVector {
                    shard: self.shard,
                    seq: self.seq,
                    vector,
                });
                self.seq += 1;
            }
            sink.flush();
        }
        TenantPiece {
            tenant: self.tenant,
            groups,
            pkts,
            stats: *self.nic.stats(),
            groups_per_level: self.nic.groups_per_level(),
        }
    }
}

struct SharedWorker {
    tx: SyncSender<ShardMsg>,
    join: JoinHandle<Vec<TenantPiece>>,
    pending: Vec<TaggedEvent>,
}

/// A multi-tenant streaming NIC executor sharing one worker pool.
///
/// Constructed empty; tenants come and go via
/// [`SharedStreamingNic::attach`] / [`SharedStreamingNic::detach`] while
/// the event stream flows.
pub struct SharedStreamingNic {
    workers: Vec<SharedWorker>,
    recycle_tx: Sender<Vec<TaggedEvent>>,
    recycle_rx: Receiver<Vec<TaggedEvent>>,
    spare: Vec<Vec<TaggedEvent>>,
    /// Attached tenants in attach order, with events-routed counters.
    tenants: Vec<(TenantId, u64)>,
}

impl SharedStreamingNic {
    /// Spawns `workers` shard threads (clamped to ≥ 1) with no tenants.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (recycle_tx, recycle_rx) = channel();
        let workers = (0..workers)
            .map(|shard| {
                let (tx, rx) = sync_channel::<ShardMsg>(CHANNEL_DEPTH);
                let recycle = recycle_tx.clone();
                let join = std::thread::spawn(move || {
                    let mut engines: Vec<TenantEngine> = Vec::new();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ShardMsg::Frame(mut frame) => {
                                for e in &frame {
                                    if let Some(t) =
                                        engines.iter_mut().find(|t| t.tenant == e.tenant)
                                    {
                                        t.nic.handle(&e.event);
                                    }
                                }
                                for t in engines.iter_mut() {
                                    t.drain_packets();
                                }
                                frame.clear();
                                let _ = recycle.send(frame);
                            }
                            ShardMsg::Attach {
                                tenant,
                                engine,
                                sink,
                            } => {
                                engines.push(TenantEngine {
                                    tenant,
                                    nic: engine,
                                    sink,
                                    seq: 0,
                                    shard,
                                });
                            }
                            ShardMsg::Detach { tenant, ack } => {
                                if let Some(pos) = engines.iter().position(|t| t.tenant == tenant) {
                                    let piece = engines.remove(pos).finalize();
                                    let _ = ack.send((shard, piece));
                                }
                            }
                        }
                    }
                    // Channel closed: end of stream for everyone left.
                    engines.into_iter().map(TenantEngine::finalize).collect()
                });
                SharedWorker {
                    tx,
                    join,
                    pending: Vec::with_capacity(FRAME_SIZE),
                }
            })
            .collect();
        SharedStreamingNic {
            workers,
            recycle_tx,
            recycle_rx,
            spare: Vec::new(),
            tenants: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Attached tenants in attach order, with events-routed counters.
    pub fn tenants(&self) -> &[(TenantId, u64)] {
        &self.tenants
    }

    /// Attaches `tenant` at the current epoch: all events pushed after this
    /// call are processed by its engines; nothing before is.
    ///
    /// `fg_table_size` is the tenant's NIC group-table quota. `sinks`, when
    /// given, must hold one sink per shard (`sinks[i]` moves into worker
    /// `i`); with sinks attached the tenant's per-packet vectors are
    /// diverted exactly as in
    /// [`StreamingNic::with_sinks`](crate::stream::StreamingNic::with_sinks).
    pub fn attach(
        &mut self,
        tenant: TenantId,
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<(), NicError> {
        if self.tenants.iter().any(|(t, _)| *t == tenant) {
            return Err(NicError::Engine(format!(
                "tenant {tenant} is already attached"
            )));
        }
        let n = self.workers.len();
        let mut sinks: Vec<Option<Box<dyn VectorSink>>> = match sinks {
            Some(s) => {
                if s.len() != n {
                    return Err(NicError::Engine(format!(
                        "sink count {} does not match worker count {n}",
                        s.len()
                    )));
                }
                s.into_iter().map(Some).collect()
            }
            None => (0..n).map(|_| None).collect(),
        };
        let mut engines = Vec::with_capacity(n);
        for _ in 0..n {
            engines.push(Box::new(FeNic::new(compiled, fg_table_size).ok_or_else(
                || NicError::Engine("degenerate NIC group-table configuration".into()),
            )?));
        }
        // Everything already queued belongs to the previous epoch: flush it
        // ahead of the markers so the attach point is a clean stream cut.
        self.flush_all()?;
        for (w, engine) in engines.into_iter().enumerate() {
            let sink = sinks[w].take();
            self.workers[w]
                .tx
                .send(ShardMsg::Attach {
                    tenant,
                    engine,
                    sink,
                })
                .map_err(|_| NicError::WorkerLost { worker: w })?;
        }
        self.tenants.push((tenant, 0));
        Ok(())
    }

    /// Detaches `tenant` with a drain-and-flush handshake: pending frames
    /// are flushed, every shard finalizes the tenant's engine (egressing
    /// its remaining vectors and flushing its sink), and the merged output
    /// is returned once all shards have acked. Blocks until the epoch
    /// completes.
    pub fn detach(&mut self, tenant: TenantId) -> Result<StreamOutput, NicError> {
        let Some(pos) = self.tenants.iter().position(|(t, _)| *t == tenant) else {
            return Err(NicError::Engine(format!("tenant {tenant} is not attached")));
        };
        self.flush_all()?;
        let (ack_tx, ack_rx) = channel();
        for w in 0..self.workers.len() {
            self.workers[w]
                .tx
                .send(ShardMsg::Detach {
                    tenant,
                    ack: ack_tx.clone(),
                })
                .map_err(|_| NicError::WorkerLost { worker: w })?;
        }
        drop(ack_tx);
        let mut pieces: Vec<(usize, TenantPiece)> = Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            pieces.push(
                ack_rx
                    .recv()
                    .map_err(|_| NicError::WorkerLost { worker: i })?,
            );
        }
        self.tenants.remove(pos);
        // Deterministic merge in shard order, independent of ack arrival.
        pieces.sort_by_key(|(shard, _)| *shard);
        let mut out = empty_output();
        for (_, piece) in pieces {
            merge_piece(&mut out, piece);
        }
        Ok(out)
    }

    /// Routes one tagged event: MGPV evictions to shard `hash % workers`
    /// (identical to the solo executor), FG updates to every shard.
    pub fn push(&mut self, event: TaggedEvent) -> Result<(), NicError> {
        if let Some(entry) = self.tenants.iter_mut().find(|(t, _)| *t == event.tenant) {
            entry.1 += 1;
        }
        match &event.event {
            SwitchEvent::FgUpdate(_) => {
                for w in 0..self.workers.len() {
                    self.workers[w].pending.push(event.clone());
                    self.flush_if_full(w)?;
                }
                Ok(())
            }
            SwitchEvent::Mgpv(m) => {
                let w = (m.hash as usize) % self.workers.len();
                self.workers[w].pending.push(event);
                self.flush_if_full(w)
            }
        }
    }

    /// Routes a batch of tagged events in order.
    pub fn push_all(
        &mut self,
        events: impl IntoIterator<Item = TaggedEvent>,
    ) -> Result<(), NicError> {
        for e in events {
            self.push(e)?;
        }
        Ok(())
    }

    fn flush_if_full(&mut self, w: usize) -> Result<(), NicError> {
        if self.workers[w].pending.len() >= FRAME_SIZE {
            self.flush_worker(w)?;
        }
        Ok(())
    }

    fn flush_worker(&mut self, w: usize) -> Result<(), NicError> {
        if self.workers[w].pending.is_empty() {
            return Ok(());
        }
        let replacement = self.take_spare();
        let frame = std::mem::replace(&mut self.workers[w].pending, replacement);
        self.workers[w]
            .tx
            .send(ShardMsg::Frame(frame))
            .map_err(|_| NicError::WorkerLost { worker: w })
    }

    fn flush_all(&mut self) -> Result<(), NicError> {
        for w in 0..self.workers.len() {
            self.flush_worker(w)?;
        }
        Ok(())
    }

    fn take_spare(&mut self) -> Vec<TaggedEvent> {
        while let Ok(f) = self.recycle_rx.try_recv() {
            self.spare.push(f);
        }
        self.spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(FRAME_SIZE))
    }

    /// Flushes, joins every worker in shard order, and returns each
    /// remaining tenant's merged output in attach order.
    pub fn finish(mut self) -> Result<Vec<(TenantId, StreamOutput)>, NicError> {
        self.flush_all()?;
        drop(self.recycle_tx);
        let order: Vec<TenantId> = self.tenants.iter().map(|(t, _)| *t).collect();
        let mut merged: Vec<(TenantId, StreamOutput)> =
            order.iter().map(|&t| (t, empty_output())).collect();
        for (i, worker) in self.workers.into_iter().enumerate() {
            drop(worker.tx);
            let pieces = worker
                .join
                .join()
                .map_err(|_| NicError::WorkerLost { worker: i })?;
            for piece in pieces {
                if let Some((_, out)) = merged.iter_mut().find(|(t, _)| *t == piece.tenant) {
                    merge_piece(out, piece);
                }
            }
        }
        Ok(merged)
    }
}

fn empty_output() -> StreamOutput {
    StreamOutput {
        group_vectors: Vec::new(),
        packet_vectors: Vec::new(),
        stats: NicStats::default(),
        groups_per_level: Vec::new(),
    }
}

fn merge_piece(out: &mut StreamOutput, piece: TenantPiece) {
    out.group_vectors.extend(piece.groups);
    out.packet_vectors.extend(piece.pkts);
    out.stats.absorb(&piece.stats);
    if out.groups_per_level.is_empty() {
        out.groups_per_level = piece.groups_per_level;
    } else {
        for (acc, (_, n)) in out.groups_per_level.iter_mut().zip(piece.groups_per_level) {
            acc.1 += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::PacketRecord;
    use superfe_policy::compile;
    use superfe_policy::dsl::parse;
    use superfe_switch::tenant::SharedSwitch;
    use superfe_switch::{CacheMode, FeSwitch, MgpvConfig};

    fn compiled(src: &str) -> CompiledPolicy {
        compile(&parse(src).unwrap()).unwrap()
    }

    fn host_sum() -> CompiledPolicy {
        compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)")
    }

    fn flow_tcp() -> CompiledPolicy {
        compiled(
            "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_sum, f_max])\n\
             .collect(flow)",
        )
    }

    fn packets(n: u64) -> impl Iterator<Item = PacketRecord> {
        (0..n).map(|i| {
            if i % 4 == 0 {
                PacketRecord::udp(i * 500, 120, (i % 13 + 1) as u32, 53, 7, 53)
            } else {
                PacketRecord::tcp(i * 500, 300, (i % 13 + 1) as u32, 2000, 7, 443)
            }
        })
    }

    fn solo_run(c: &CompiledPolicy, n: u64, workers: usize) -> StreamOutput {
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut nic = crate::stream::StreamingNic::new(c, 16_384, workers).unwrap();
        let mut frame = Vec::new();
        for p in packets(n) {
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        nic.finish().unwrap()
    }

    #[test]
    fn two_tenants_match_their_solo_runs() {
        for workers in [1usize, 4] {
            let a = host_sum();
            let b = flow_tcp();
            let mut sw = SharedSwitch::new();
            sw.attach(
                TenantId(0),
                a.switch.clone(),
                MgpvConfig::default(),
                CacheMode::Mgpv,
            );
            sw.attach(
                TenantId(1),
                b.switch.clone(),
                MgpvConfig::default(),
                CacheMode::Mgpv,
            );
            let mut nic = SharedStreamingNic::new(workers);
            nic.attach(TenantId(0), &a, 16_384, None).unwrap();
            nic.attach(TenantId(1), &b, 16_384, None).unwrap();
            let mut frame = Vec::new();
            for p in packets(800) {
                frame.clear();
                sw.process_into(&p, &mut frame);
                nic.push_all(frame.drain(..)).unwrap();
            }
            frame.clear();
            sw.flush_into(&mut frame);
            nic.push_all(frame.drain(..)).unwrap();
            let outs = nic.finish().unwrap();
            assert_eq!(outs.len(), 2);
            let solo_a = solo_run(&a, 800, workers);
            let solo_b = solo_run(&b, 800, workers);
            assert_eq!(outs[0].1.group_vectors, solo_a.group_vectors);
            assert_eq!(outs[1].1.group_vectors, solo_b.group_vectors);
            assert_eq!(outs[0].1.stats.records, solo_a.stats.records);
            assert_eq!(outs[1].1.stats.records, solo_b.stats.records);
        }
    }

    #[test]
    fn detach_handshake_returns_output_and_isolates_survivor() {
        let a = host_sum();
        let b = flow_tcp();
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        sw.attach(
            TenantId(1),
            b.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        nic.attach(TenantId(1), &b, 16_384, None).unwrap();
        let mut frame = Vec::new();
        for (i, p) in packets(1000).enumerate() {
            if i == 500 {
                // Epoch: drain tenant 1 out of switch and NIC mid-stream.
                sw.detach_into(TenantId(1), &mut frame);
                nic.push_all(frame.drain(..)).unwrap();
                let gone = nic.detach(TenantId(1)).unwrap();
                assert!(gone.stats.records > 0);
            }
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        let outs = nic.finish().unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, TenantId(0));
        // The survivor is bit-identical to its solo run.
        let solo = solo_run(&a, 1000, 2);
        assert_eq!(outs[0].1.group_vectors, solo.group_vectors);
    }

    #[test]
    fn attach_rejects_duplicates_and_bad_sink_counts() {
        let a = host_sum();
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(7), &a, 16_384, None).unwrap();
        assert!(nic.attach(TenantId(7), &a, 16_384, None).is_err());
        assert!(nic
            .attach(TenantId(8), &a, 16_384, Some(Vec::new()))
            .is_err());
        assert!(nic.detach(TenantId(9)).is_err());
        nic.finish().unwrap();
    }

    #[test]
    fn routed_counters_account_per_tenant() {
        let a = host_sum();
        let b = flow_tcp();
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        sw.attach(
            TenantId(1),
            b.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        nic.attach(TenantId(1), &b, 16_384, None).unwrap();
        let mut frame = Vec::new();
        for p in packets(600) {
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        let tenants = nic.tenants().to_vec();
        assert_eq!(tenants.len(), 2);
        assert!(tenants.iter().all(|(_, n)| *n > 0));
        nic.finish().unwrap();
    }
}
