//! Multi-tenant streaming NIC executor: one shard pool, N execution units.
//!
//! The NIC half of the shared data path (see `superfe-switch::tenant` for
//! the switch half). The same CG-key-sharded worker pool as
//! [`StreamingNic`](crate::stream::StreamingNic) serves every tenant at
//! once; the differences that make it multi-tenant:
//!
//! - **Tagged events, solo-identical routing**: the switch link carries
//!   [`TaggedEvent`]s. An MGPV eviction still goes to shard
//!   `hash % workers` — *not* tenant-salted — so each tenant's per-shard
//!   event subsequence (and therefore its merged output order and
//!   `(shard, seq)` egress tags) is bitwise-identical to a solo
//!   [`StreamingNic`](crate::stream::StreamingNic) at the same worker
//!   count. FG updates broadcast to every shard, exactly as solo.
//! - **Execution units with member demux**: each worker owns one private
//!   [`FeNic`] per *unit* — a set of tenants the SF07xx analysis proved
//!   semantically equivalent (`superfe_policy::analyze::equiv`), fused by
//!   the control plane. A solo tenant is a unit of one. Events are tagged
//!   with unit ids; the unit's engine runs the extraction once and the
//!   **demux contract** fans the emitted vectors out per member: every
//!   member receives its own copy of each feature vector and its own
//!   egress `(shard, seq)` numbering through its own [`VectorSink`], so
//!   member-visible output is bitwise identical to a solo run and state
//!   never crosses unit boundaries.
//! - **Epoch-based reconfiguration**: [`SharedStreamingNic::attach`],
//!   [`SharedStreamingNic::join`] and the detach handshakes travel
//!   *in-band* as control markers through the same bounded SPSC rings as
//!   event frames (markers ring the doorbell immediately, so a handshake
//!   is never parked behind a half-staged frame batch), so every worker
//!   applies them at the same point of the
//!   event stream — the epoch boundary. Detaching a unit's last member is
//!   a drain-and-flush handshake ([`SharedStreamingNic::detach`]);
//!   detaching a member of a still-populated unit is a **snapshot**
//!   handshake ([`SharedStreamingNic::snapshot_detach`]): each worker
//!   clones the unit's engine, applies the caller-provided snapshot flush
//!   of the switch partition to the clone, and finalizes the clone — the
//!   departing member gets exactly the output a destructive detach would
//!   have produced while the survivors' live state is never touched.

use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

use superfe_net::ring;
use superfe_net::Granularity;
use superfe_policy::CompiledPolicy;
use superfe_switch::tenant::{TaggedEvent, TenantId};
use superfe_switch::SwitchEvent;

use crate::engine::{FeNic, FeatureVector, NicStats};
use crate::error::NicError;
use crate::stream::{
    EgressVector, StreamOutput, VectorSink, CHANNEL_DEPTH, DOORBELL_FRAMES, FRAME_SIZE,
    RECYCLE_DEPTH,
};
use crate::table::TableBudget;

/// One shard's dump payload: `(unit, group, state)` per resident unit.
type ShardDump = Vec<(TenantId, TenantId, ShardUnitState)>;

/// What travels to a worker: an event frame or an epoch control marker.
enum ShardMsg {
    /// A batch of tagged events in stream order.
    Frame(Vec<TaggedEvent>),
    /// Attach marker: adopt this pre-built engine as a new unit whose
    /// first member is the unit id itself, effective for all events after
    /// this point in the stream. `group` names the switch partition whose
    /// tagged events feed the engine — the unit itself for a solo attach,
    /// or a shared-prefix group id when several units consume one
    /// partition's stream.
    Attach {
        unit: TenantId,
        group: TenantId,
        engine: Box<FeNic>,
        sink: Option<Box<dyn VectorSink>>,
    },
    /// Join marker: add `member` to an existing unit's demux fan-out.
    Join {
        unit: TenantId,
        member: TenantId,
        sink: Option<Box<dyn VectorSink>>,
    },
    /// Detach marker for a whole unit: finalize its engine, flush every
    /// member's sink, and ack one finished piece per member.
    Detach {
        unit: TenantId,
        ack: Sender<(usize, TenantPiece)>,
    },
    /// Snapshot marker: finalize *one member* of a live unit against a
    /// clone of its engine fed the given switch-partition snapshot flush,
    /// leaving the unit itself untouched.
    Snapshot {
        unit: TenantId,
        member: TenantId,
        events: Vec<SwitchEvent>,
        ack: Sender<(usize, TenantPiece)>,
    },
    /// Prefix-detach marker: destructively finalize a whole unit that
    /// shares its switch partition with other units. The partition stays
    /// live for the survivors, so its snapshot flush cannot travel as
    /// ordinary frames (they would corrupt the surviving units' state);
    /// it rides in the marker and feeds only the departing unit's engine.
    PrefixDetach {
        unit: TenantId,
        events: Vec<SwitchEvent>,
        ack: Sender<(usize, TenantPiece)>,
    },
    /// Dump marker: non-destructively capture every unit's engine state on
    /// this shard (clones — live processing state is untouched). One ack
    /// per shard carrying all of its units.
    Dump { ack: Sender<(usize, ShardDump)> },
    /// Restore marker: overwrite one unit's dynamic state (engine, member
    /// egress sequence counters, accumulated per-packet vectors) with a
    /// previously dumped shard state. The unit must already exist with the
    /// same member roster; acks `false` otherwise.
    Restore {
        unit: TenantId,
        engine: Box<FeNic>,
        seqs: Vec<(TenantId, u64)>,
        pkts_accum: Vec<FeatureVector>,
        ack: Sender<(usize, bool)>,
    },
    /// Pressure marker: report every unit's live state occupancy on this
    /// shard (resident groups per level plus eviction/overflow counters).
    Pressure {
        ack: Sender<(usize, Vec<UnitPressure>)>,
    },
}

/// One unit's dumped state on one shard (see
/// [`SharedStreamingNic::dump_state`]).
pub struct ShardUnitState {
    /// The shard this state came from (and must return to).
    pub shard: usize,
    /// A clone of the unit's engine at the dump's stream cut.
    pub engine: Box<FeNic>,
    /// Per-member `(member, next egress seq)` counters, in join order.
    pub member_seqs: Vec<(TenantId, u64)>,
    /// Per-packet vectors accumulated for sinkless members.
    pub pkts_accum: Vec<FeatureVector>,
}

/// One execution unit's dumped state across every shard, in shard order.
pub struct UnitStateDump {
    /// The unit id.
    pub unit: TenantId,
    /// The shared-prefix group (switch partition) feeding the unit.
    pub group: TenantId,
    /// Per-shard state, sorted by shard index.
    pub shards: Vec<ShardUnitState>,
}

/// One unit's live state occupancy, merged across shards (see
/// [`SharedStreamingNic::state_pressure`]). This is the population feedback
/// the control plane's admission uses in place of static estimates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitPressure {
    /// The unit id.
    pub unit: TenantId,
    /// Resident groups per granularity level, summed across shards.
    pub groups_per_level: Vec<(Granularity, usize)>,
    /// Group-table overflow drops (DropNew budget refusals), summed.
    pub overflow_drops: u64,
    /// Groups evicted by the table budget, summed.
    pub evicted_groups: u64,
}

/// One member's finished output on one shard.
struct TenantPiece {
    tenant: TenantId,
    groups: Vec<FeatureVector>,
    pkts: Vec<FeatureVector>,
    stats: NicStats,
    groups_per_level: Vec<(Granularity, usize)>,
}

/// One member's egress half: its sink and `(shard, seq)` numbering.
struct MemberEgress {
    member: TenantId,
    sink: Option<Box<dyn VectorSink>>,
    /// Per-(member, shard) monotonic egress sequence number.
    seq: u64,
}

/// One execution unit's state on one worker: a single engine shared by
/// every member, plus the per-member demux fan-out.
struct UnitEngine {
    unit: TenantId,
    /// The switch partition (shared-prefix group) whose events feed this
    /// engine; equals `unit` outside prefix sharing.
    group: TenantId,
    nic: Box<FeNic>,
    members: Vec<MemberEgress>,
    /// Per-packet vectors accumulated for sinkless members' final output
    /// (sinked members stream theirs out per frame, exactly as solo).
    pkts_accum: Vec<FeatureVector>,
    shard: usize,
}

impl UnitEngine {
    /// Demuxes freshly accumulated per-packet vectors: a copy to every
    /// member with a sink (each under its own sequence numbering), and
    /// into the unit buffer when any sinkless member still needs them.
    fn drain_packets(&mut self) {
        let fresh = self.nic.take_packet_vectors();
        if fresh.is_empty() {
            return;
        }
        for m in &mut self.members {
            if let Some(sink) = m.sink.as_mut() {
                for vector in fresh.iter().cloned() {
                    sink.emit(EgressVector {
                        shard: self.shard,
                        seq: m.seq,
                        vector,
                    });
                    m.seq += 1;
                }
            }
        }
        if self.members.iter().any(|m| m.sink.is_none()) {
            self.pkts_accum.extend(fresh);
        }
    }

    /// End of stream for the whole unit on this shard: finish the engine
    /// once, then demux — every member gets its own copy of the group
    /// vectors (and its sink flushed).
    fn finalize(self) -> Vec<TenantPiece> {
        let UnitEngine {
            mut nic,
            members,
            pkts_accum,
            shard,
            ..
        } = self;
        let groups = nic.finish();
        let tail = nic.take_packet_vectors();
        let stats = *nic.stats();
        let groups_per_level = nic.groups_per_level();
        let mut pieces = Vec::with_capacity(members.len());
        for mut m in members {
            let pkts = if let Some(mut sink) = m.sink.take() {
                for vector in groups.iter().cloned() {
                    sink.emit(EgressVector {
                        shard,
                        seq: m.seq,
                        vector,
                    });
                    m.seq += 1;
                }
                sink.flush();
                tail.clone()
            } else {
                let mut v = pkts_accum.clone();
                v.extend(tail.iter().cloned());
                v
            };
            pieces.push(TenantPiece {
                tenant: m.member,
                groups: groups.clone(),
                pkts,
                stats,
                groups_per_level: groups_per_level.clone(),
            });
        }
        pieces
    }

    /// Finalizes one departing member against a clone of the unit engine
    /// fed `events` (the snapshot flush of the switch partition): the
    /// member's output is exactly what a destructive detach would have
    /// produced at this stream position, while the live engine and the
    /// surviving members are untouched.
    fn snapshot_member(&mut self, member: TenantId, events: &[SwitchEvent]) -> Option<TenantPiece> {
        let pos = self.members.iter().position(|m| m.member == member)?;
        let mut m = self.members.remove(pos);
        let mut nic = self.nic.clone();
        for e in events {
            nic.handle(e);
        }
        // Mirror the solo finish sequence: flushed per-packet vectors
        // first, then the finished group vectors.
        let fresh = nic.take_packet_vectors();
        let mut pkts = if m.sink.is_some() {
            Vec::new()
        } else {
            self.pkts_accum.clone()
        };
        if let Some(sink) = m.sink.as_mut() {
            for vector in fresh.iter().cloned() {
                sink.emit(EgressVector {
                    shard: self.shard,
                    seq: m.seq,
                    vector,
                });
                m.seq += 1;
            }
        } else {
            pkts.extend(fresh);
        }
        let groups = nic.finish();
        let tail = nic.take_packet_vectors();
        if let Some(mut sink) = m.sink.take() {
            for vector in groups.iter().cloned() {
                sink.emit(EgressVector {
                    shard: self.shard,
                    seq: m.seq,
                    vector,
                });
                m.seq += 1;
            }
            sink.flush();
            pkts = tail;
        } else {
            pkts.extend(tail);
        }
        if !self.members.iter().any(|mm| mm.sink.is_none()) {
            self.pkts_accum.clear();
        }
        Some(TenantPiece {
            tenant: member,
            groups,
            pkts,
            stats: *nic.stats(),
            groups_per_level: nic.groups_per_level(),
        })
    }
}

struct SharedWorker {
    tx: ring::Producer<ShardMsg>,
    /// Consumer end of this worker's bounded frame recycle ring.
    recycle: ring::Consumer<Vec<TaggedEvent>>,
    join: JoinHandle<Vec<TenantPiece>>,
    pending: Vec<TaggedEvent>,
}

/// One attached member and the unit whose engine serves it.
struct MemberEntry {
    member: TenantId,
    unit: TenantId,
}

/// One execution unit and the shared-prefix group (switch partition) whose
/// event stream feeds it; `group == unit` outside prefix sharing.
struct UnitEntry {
    unit: TenantId,
    group: TenantId,
}

/// A multi-tenant streaming NIC executor sharing one worker pool.
///
/// Constructed empty; units come and go via
/// [`SharedStreamingNic::attach`] / [`SharedStreamingNic::detach`], and
/// fused members via [`SharedStreamingNic::join`] /
/// [`SharedStreamingNic::snapshot_detach`], while the event stream flows.
pub struct SharedStreamingNic {
    workers: Vec<SharedWorker>,
    /// Locally stashed recycled frames ready for reuse (bounded: refilled
    /// only from the fixed-capacity recycle rings).
    spare: Vec<Vec<TaggedEvent>>,
    /// Attached members in attach order.
    members: Vec<MemberEntry>,
    /// Execution units in creation order.
    units: Vec<UnitEntry>,
    /// Shared-prefix groups (switch partitions) in creation order, with
    /// events-routed counters; a solo unit is a group of one.
    groups: Vec<(TenantId, u64)>,
    /// Group-table budget applied to every subsequently attached unit.
    budget: TableBudget,
}

impl SharedStreamingNic {
    /// Spawns `workers` shard threads (clamped to ≥ 1) with no tenants.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let workers = (0..workers)
            .map(|shard| {
                let (tx, mut rx) = ring::channel::<ShardMsg>(CHANNEL_DEPTH, DOORBELL_FRAMES);
                // Recycle ring: the worker produces drained frames, the
                // routing thread consumes them. try_send drops on full.
                let (mut recycle, recycle_rx) = ring::channel::<Vec<TaggedEvent>>(RECYCLE_DEPTH, 1);
                let join = std::thread::spawn(move || {
                    let mut engines: Vec<UnitEngine> = Vec::new();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ShardMsg::Frame(mut frame) => {
                                for e in &frame {
                                    // One shared-prefix partition's event
                                    // feeds every unit in its group.
                                    for u in engines.iter_mut() {
                                        if u.group == e.tenant {
                                            u.nic.handle(&e.event);
                                        }
                                    }
                                }
                                for u in engines.iter_mut() {
                                    u.drain_packets();
                                }
                                frame.clear();
                                // Bounded recycling: hand the frame back if
                                // the ring has room, otherwise drop it.
                                let _ = recycle.try_send(frame);
                            }
                            ShardMsg::Attach {
                                unit,
                                group,
                                engine,
                                sink,
                            } => {
                                engines.push(UnitEngine {
                                    unit,
                                    group,
                                    nic: engine,
                                    members: vec![MemberEgress {
                                        member: unit,
                                        sink,
                                        seq: 0,
                                    }],
                                    pkts_accum: Vec::new(),
                                    shard,
                                });
                            }
                            ShardMsg::Join { unit, member, sink } => {
                                if let Some(u) = engines.iter_mut().find(|u| u.unit == unit) {
                                    u.members.push(MemberEgress {
                                        member,
                                        sink,
                                        seq: 0,
                                    });
                                }
                            }
                            ShardMsg::Detach { unit, ack } => {
                                if let Some(pos) = engines.iter().position(|u| u.unit == unit) {
                                    for piece in engines.remove(pos).finalize() {
                                        let _ = ack.send((shard, piece));
                                    }
                                }
                            }
                            ShardMsg::Snapshot {
                                unit,
                                member,
                                events,
                                ack,
                            } => {
                                if let Some(u) = engines.iter_mut().find(|u| u.unit == unit) {
                                    if let Some(piece) = u.snapshot_member(member, &events) {
                                        let _ = ack.send((shard, piece));
                                    }
                                }
                            }
                            ShardMsg::PrefixDetach { unit, events, ack } => {
                                if let Some(pos) = engines.iter().position(|u| u.unit == unit) {
                                    let mut u = engines.remove(pos);
                                    // Mirror the solo end-of-stream order:
                                    // partition flush, packet drain, finish.
                                    for e in &events {
                                        u.nic.handle(e);
                                    }
                                    u.drain_packets();
                                    for piece in u.finalize() {
                                        let _ = ack.send((shard, piece));
                                    }
                                }
                            }
                            ShardMsg::Dump { ack } => {
                                let states = engines
                                    .iter()
                                    .map(|u| {
                                        (
                                            u.unit,
                                            u.group,
                                            ShardUnitState {
                                                shard,
                                                engine: u.nic.clone(),
                                                member_seqs: u
                                                    .members
                                                    .iter()
                                                    .map(|m| (m.member, m.seq))
                                                    .collect(),
                                                pkts_accum: u.pkts_accum.clone(),
                                            },
                                        )
                                    })
                                    .collect();
                                let _ = ack.send((shard, states));
                            }
                            ShardMsg::Restore {
                                unit,
                                engine,
                                seqs,
                                pkts_accum,
                                ack,
                            } => {
                                let ok = match engines.iter_mut().find(|u| u.unit == unit) {
                                    Some(u)
                                        if u.members.len() == seqs.len()
                                            && u.members
                                                .iter()
                                                .zip(&seqs)
                                                .all(|(m, (id, _))| m.member == *id) =>
                                    {
                                        u.nic = engine;
                                        for (m, (_, s)) in u.members.iter_mut().zip(&seqs) {
                                            m.seq = *s;
                                        }
                                        u.pkts_accum = pkts_accum;
                                        true
                                    }
                                    _ => false,
                                };
                                let _ = ack.send((shard, ok));
                            }
                            ShardMsg::Pressure { ack } => {
                                let pressures = engines
                                    .iter()
                                    .map(|u| UnitPressure {
                                        unit: u.unit,
                                        groups_per_level: u.nic.groups_per_level(),
                                        overflow_drops: u.nic.stats().overflow_drops,
                                        evicted_groups: u.nic.stats().evicted_groups,
                                    })
                                    .collect();
                                let _ = ack.send((shard, pressures));
                            }
                        }
                    }
                    // Channel closed: end of stream for everyone left.
                    engines.into_iter().flat_map(UnitEngine::finalize).collect()
                });
                SharedWorker {
                    tx,
                    recycle: recycle_rx,
                    join,
                    pending: Vec::with_capacity(FRAME_SIZE),
                }
            })
            .collect();
        SharedStreamingNic {
            workers,
            spare: Vec::new(),
            members: Vec::new(),
            units: Vec::new(),
            groups: Vec::new(),
            budget: TableBudget::default(),
        }
    }

    /// Sets the group-table budget (DRAM cap + eviction policy) used by
    /// every unit attached *after* this call; already-attached units keep
    /// theirs. Lets operators pin `RandomWay` to an explicit seed
    /// (CLI `--evict-seed`) so evictions replay deterministically.
    pub fn set_table_budget(&mut self, budget: TableBudget) {
        self.budget = budget;
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Attached members in attach order, each with its group's
    /// events-routed counter (fused and prefix-shared members share one
    /// stream).
    pub fn tenants(&self) -> Vec<(TenantId, u64)> {
        self.members
            .iter()
            .map(|m| (m.member, self.routed_of_unit(m.unit)))
            .collect()
    }

    fn group_of_unit(&self, unit: TenantId) -> Option<TenantId> {
        self.units.iter().find(|u| u.unit == unit).map(|u| u.group)
    }

    fn routed_of_unit(&self, unit: TenantId) -> u64 {
        self.group_of_unit(unit)
            .and_then(|g| self.groups.iter().find(|(id, _)| *id == g))
            .map_or(0, |(_, n)| *n)
    }

    /// Validates and splits an optional per-shard sink list.
    fn split_sinks(
        &self,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<Vec<Option<Box<dyn VectorSink>>>, NicError> {
        let n = self.workers.len();
        match sinks {
            Some(s) => {
                if s.len() != n {
                    return Err(NicError::Engine(format!(
                        "sink count {} does not match worker count {n}",
                        s.len()
                    )));
                }
                Ok(s.into_iter().map(Some).collect())
            }
            None => Ok((0..n).map(|_| None).collect()),
        }
    }

    /// Attaches `tenant` as a new unit (of which it is the first member)
    /// at the current epoch: all events pushed after this call are
    /// processed by its engines; nothing before is.
    ///
    /// `fg_table_size` is the unit's NIC group-table quota. `sinks`, when
    /// given, must hold one sink per shard (`sinks[i]` moves into worker
    /// `i`); with sinks attached the tenant's per-packet vectors are
    /// diverted exactly as in
    /// [`StreamingNic::with_sinks`](crate::stream::StreamingNic::with_sinks).
    pub fn attach(
        &mut self,
        tenant: TenantId,
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<(), NicError> {
        self.attach_unit(tenant, tenant, compiled, fg_table_size, sinks)?;
        self.groups.push((tenant, 0));
        Ok(())
    }

    /// Attaches `tenant` as a new unit consuming the event stream of the
    /// already-attached shared-prefix group `group` (the id the shared
    /// switch partition tags its events with). The unit gets its own
    /// engines and its own NIC program — only the switch-side prefix is
    /// shared — so its output is bitwise a solo run's.
    ///
    /// The group must still be at stream position zero (no events routed),
    /// or the new unit's output would miss history; the control plane
    /// additionally guarantees no *packets* reached the shared partition.
    pub fn attach_to_group(
        &mut self,
        group: TenantId,
        tenant: TenantId,
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<(), NicError> {
        let Some(routed) = self
            .groups
            .iter()
            .find(|(g, _)| *g == group)
            .map(|(_, n)| *n)
        else {
            return Err(NicError::Engine(format!("group {group} is not attached")));
        };
        if routed != 0 {
            return Err(NicError::Engine(format!(
                "group {group} has already processed events; a late unit cannot                  share its prefix"
            )));
        }
        self.attach_unit(group, tenant, compiled, fg_table_size, sinks)
    }

    /// Builds per-shard engines for a new unit of one and sends the attach
    /// markers; shared by [`SharedStreamingNic::attach`] (solo group) and
    /// [`SharedStreamingNic::attach_to_group`] (existing group).
    fn attach_unit(
        &mut self,
        group: TenantId,
        tenant: TenantId,
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<(), NicError> {
        if self.members.iter().any(|m| m.member == tenant) {
            return Err(NicError::Engine(format!(
                "tenant {tenant} is already attached"
            )));
        }
        let n = self.workers.len();
        let mut sinks = self.split_sinks(sinks)?;
        let mut engines = Vec::with_capacity(n);
        for _ in 0..n {
            engines.push(Box::new(
                FeNic::with_budget(compiled, fg_table_size, self.budget).ok_or_else(|| {
                    NicError::Engine("degenerate NIC group-table configuration".into())
                })?,
            ));
        }
        // Everything already queued belongs to the previous epoch: flush it
        // ahead of the markers so the attach point is a clean stream cut.
        self.flush_all()?;
        for (w, engine) in engines.into_iter().enumerate() {
            let sink = sinks[w].take();
            // Control markers publish immediately (send_now): an epoch cut
            // must not sit staged behind the doorbell batch.
            self.workers[w]
                .tx
                .send_now(ShardMsg::Attach {
                    unit: tenant,
                    group,
                    engine,
                    sink,
                })
                .map_err(|_| NicError::WorkerLost { worker: w })?;
        }
        self.units.push(UnitEntry {
            unit: tenant,
            group,
        });
        self.members.push(MemberEntry {
            member: tenant,
            unit: tenant,
        });
        Ok(())
    }

    /// Joins `member` to the existing unit `unit`'s demux fan-out.
    ///
    /// The caller (the control plane) certifies equivalence and must
    /// guarantee the unit is still at stream position zero — no events
    /// routed to it yet — otherwise the member's output would include
    /// history from before its attach point. That necessary condition is
    /// re-checked here; the sufficient condition (no *packets* offered to
    /// the unit's switch partition, which could be batching records that
    /// have not evicted yet) is the control plane's.
    pub fn join(
        &mut self,
        unit: TenantId,
        member: TenantId,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
    ) -> Result<(), NicError> {
        if self.group_of_unit(unit).is_none() {
            return Err(NicError::Engine(format!("unit {unit} is not attached")));
        }
        if self.routed_of_unit(unit) != 0 {
            return Err(NicError::Engine(format!(
                "unit {unit} has already processed events; a late member cannot join"
            )));
        }
        if self.members.iter().any(|m| m.member == member) {
            return Err(NicError::Engine(format!(
                "tenant {member} is already attached"
            )));
        }
        let mut sinks = self.split_sinks(sinks)?;
        self.flush_all()?;
        for (w, worker) in self.workers.iter_mut().enumerate() {
            let sink = sinks[w].take();
            worker
                .tx
                .send_now(ShardMsg::Join { unit, member, sink })
                .map_err(|_| NicError::WorkerLost { worker: w })?;
        }
        self.members.push(MemberEntry { member, unit });
        Ok(())
    }

    /// Detaches `member` — the *sole* member of its unit — with a
    /// drain-and-flush handshake: pending frames are flushed, every shard
    /// finalizes the unit's engine (egressing its remaining vectors and
    /// flushing its sink), and the merged output is returned once all
    /// shards have acked. Blocks until the epoch completes.
    ///
    /// For a member of a still-populated unit use
    /// [`SharedStreamingNic::snapshot_detach`].
    pub fn detach(&mut self, member: TenantId) -> Result<StreamOutput, NicError> {
        let Some(pos) = self.members.iter().position(|m| m.member == member) else {
            return Err(NicError::Engine(format!("tenant {member} is not attached")));
        };
        let unit = self.members[pos].unit;
        if self.members.iter().filter(|m| m.unit == unit).count() > 1 {
            return Err(NicError::Engine(format!(
                "tenant {member} shares unit {unit}; detach it with a snapshot"
            )));
        }
        let group = self
            .group_of_unit(unit)
            .expect("attached members have units");
        if self
            .units
            .iter()
            .any(|u| u.unit != unit && u.group == group)
        {
            return Err(NicError::Engine(format!(
                "tenant {member} shares switch partition {group}; detach it                  with a prefix detach"
            )));
        }
        self.flush_all()?;
        let pieces = self.collect_acks(|ack| ShardMsg::Detach { unit, ack })?;
        self.members.remove(pos);
        self.units.retain(|u| u.unit != unit);
        self.groups.retain(|(g, _)| *g != group);
        Ok(merge_pieces(pieces))
    }

    /// Detaches `member` — the sole member of its unit — whose unit shares
    /// its switch partition with other units. `events` must be the
    /// *snapshot flush* of the shared partition (`SharedSwitch::
    /// snapshot_into` — the partition itself stays live for the surviving
    /// units, which is why the flush cannot travel as ordinary frames).
    /// Each shard destructively finalizes the unit's engine against its
    /// share of the flush, so the departing member's output is exactly
    /// what a solo detach would have produced at this stream position.
    pub fn prefix_detach(
        &mut self,
        member: TenantId,
        events: Vec<TaggedEvent>,
    ) -> Result<StreamOutput, NicError> {
        let Some(pos) = self.members.iter().position(|m| m.member == member) else {
            return Err(NicError::Engine(format!("tenant {member} is not attached")));
        };
        let unit = self.members[pos].unit;
        if self.members.iter().filter(|m| m.unit == unit).count() > 1 {
            return Err(NicError::Engine(format!(
                "tenant {member} shares unit {unit}; detach it with a snapshot"
            )));
        }
        let group = self
            .group_of_unit(unit)
            .expect("attached members have units");
        if !self
            .units
            .iter()
            .any(|u| u.unit != unit && u.group == group)
        {
            return Err(NicError::Engine(format!(
                "tenant {member} is its partition's sole consumer; use a                  draining detach"
            )));
        }
        let mut per_shard = self.route_snapshot(group, events);
        self.flush_all()?;
        let mut shards = per_shard.drain(..);
        let pieces = self.collect_acks(|ack| ShardMsg::PrefixDetach {
            unit,
            events: shards.next().unwrap_or_default(),
            ack,
        })?;
        self.members.remove(pos);
        self.units.retain(|u| u.unit != unit);
        Ok(merge_pieces(pieces))
    }

    /// Detaches `member` from a still-populated unit: `events` must be the
    /// *snapshot flush* of the unit's switch partition (a clone's flush —
    /// see `SharedSwitch::snapshot_into`), which is routed to the shards
    /// exactly like live traffic; each shard then finalizes a clone of the
    /// unit engine for the departing member. The surviving members and the
    /// live engine state are untouched.
    pub fn snapshot_detach(
        &mut self,
        member: TenantId,
        events: Vec<TaggedEvent>,
    ) -> Result<StreamOutput, NicError> {
        let Some(pos) = self.members.iter().position(|m| m.member == member) else {
            return Err(NicError::Engine(format!("tenant {member} is not attached")));
        };
        let unit = self.members[pos].unit;
        if self.members.iter().filter(|m| m.unit == unit).count() < 2 {
            return Err(NicError::Engine(format!(
                "tenant {member} is its unit's sole member; use a draining detach"
            )));
        }
        let group = self
            .group_of_unit(unit)
            .expect("attached members have units");
        let mut per_shard = self.route_snapshot(group, events);
        self.flush_all()?;
        let mut shards = per_shard.drain(..);
        let pieces = self.collect_acks(|ack| ShardMsg::Snapshot {
            unit,
            member,
            events: shards.next().unwrap_or_default(),
            ack,
        })?;
        self.members.remove(pos);
        Ok(merge_pieces(pieces))
    }

    /// Routes a switch-partition snapshot flush per shard with the live
    /// routing rules — MGPV evictions to `hash % workers`, FG updates
    /// broadcast — keeping only events tagged with `group`.
    fn route_snapshot(&self, group: TenantId, events: Vec<TaggedEvent>) -> Vec<Vec<SwitchEvent>> {
        let n = self.workers.len();
        let mut per_shard: Vec<Vec<SwitchEvent>> = (0..n).map(|_| Vec::new()).collect();
        for e in events {
            if e.tenant != group {
                continue;
            }
            match &e.event {
                SwitchEvent::FgUpdate(_) => {
                    for v in per_shard.iter_mut() {
                        v.push(e.event.clone());
                    }
                }
                SwitchEvent::Mgpv(m) => {
                    per_shard[(m.hash as usize) % n].push(e.event);
                }
            }
        }
        per_shard
    }

    /// Non-destructively captures every unit's engine state on every shard
    /// at the current stream cut — the NIC half of a plane snapshot. The
    /// live engines keep processing afterwards; pending frames are flushed
    /// first so the dump lands on a clean epoch boundary. Units are
    /// returned in creation order, shards sorted within each unit.
    pub fn dump_state(&mut self) -> Result<Vec<UnitStateDump>, NicError> {
        self.flush_all()?;
        let acks = self.collect_acks(|ack| ShardMsg::Dump { ack })?;
        let mut units: Vec<UnitStateDump> = self
            .units
            .iter()
            .map(|u| UnitStateDump {
                unit: u.unit,
                group: u.group,
                shards: Vec::with_capacity(self.workers.len()),
            })
            .collect();
        for (_, pieces) in acks {
            for (unit, _, state) in pieces {
                if let Some(u) = units.iter_mut().find(|x| x.unit == unit) {
                    u.shards.push(state);
                }
            }
        }
        Ok(units)
    }

    /// Overwrites one attached unit's dynamic state with a previously
    /// dumped per-shard state (see [`SharedStreamingNic::dump_state`]).
    ///
    /// The unit must already be attached — structurally rebuilt by
    /// replaying its attach/join history — with the same member roster and
    /// at the same worker count; `shards` must hold exactly one state per
    /// shard. Fails without touching the unit otherwise.
    pub fn restore_unit(
        &mut self,
        unit: TenantId,
        shards: Vec<ShardUnitState>,
    ) -> Result<(), NicError> {
        let n = self.workers.len();
        if shards.len() != n {
            return Err(NicError::Engine(format!(
                "restore of unit {unit} carries {} shard states for {n} workers",
                shards.len()
            )));
        }
        let mut by_shard: Vec<Option<ShardUnitState>> = (0..n).map(|_| None).collect();
        for s in shards {
            let idx = s.shard;
            if idx >= n || by_shard[idx].is_some() {
                return Err(NicError::Engine(format!(
                    "restore of unit {unit} has a missing or duplicate shard index"
                )));
            }
            by_shard[idx] = Some(s);
        }
        self.flush_all()?;
        let (ack_tx, ack_rx) = channel();
        for (w, slot) in by_shard.into_iter().enumerate() {
            let s = slot.expect("all shard slots filled");
            self.workers[w]
                .tx
                .send_now(ShardMsg::Restore {
                    unit,
                    engine: s.engine,
                    seqs: s.member_seqs,
                    pkts_accum: s.pkts_accum,
                    ack: ack_tx.clone(),
                })
                .map_err(|_| NicError::WorkerLost { worker: w })?;
        }
        drop(ack_tx);
        for i in 0..n {
            let (shard, ok) = ack_rx
                .recv()
                .map_err(|_| NicError::WorkerLost { worker: i })?;
            if !ok {
                return Err(NicError::Engine(format!(
                    "shard {shard} rejected the restore of unit {unit}:                      engine geometry or member roster mismatch"
                )));
            }
        }
        Ok(())
    }

    /// Reports every unit's live state occupancy — resident groups per
    /// level plus budget-eviction counters, merged across shards in unit
    /// creation order. This is the population feedback the control plane's
    /// admission consumes in place of its static per-tenant estimates.
    pub fn state_pressure(&mut self) -> Result<Vec<UnitPressure>, NicError> {
        self.flush_all()?;
        let acks = self.collect_acks(|ack| ShardMsg::Pressure { ack })?;
        let mut merged: Vec<UnitPressure> = self
            .units
            .iter()
            .map(|u| UnitPressure {
                unit: u.unit,
                groups_per_level: Vec::new(),
                overflow_drops: 0,
                evicted_groups: 0,
            })
            .collect();
        for (_, pieces) in acks {
            for p in pieces {
                if let Some(m) = merged.iter_mut().find(|m| m.unit == p.unit) {
                    if m.groups_per_level.is_empty() {
                        m.groups_per_level = p.groups_per_level;
                    } else {
                        for (acc, (_, nn)) in m.groups_per_level.iter_mut().zip(p.groups_per_level)
                        {
                            acc.1 += nn;
                        }
                    }
                    m.overflow_drops += p.overflow_drops;
                    m.evicted_groups += p.evicted_groups;
                }
            }
        }
        Ok(merged)
    }

    /// The shared-prefix groups' events-routed counters, in creation order
    /// — the stream positions a plane snapshot must persist, because they
    /// gate late joins and prefix shares.
    pub fn group_positions(&self) -> Vec<(TenantId, u64)> {
        self.groups.clone()
    }

    /// Overwrites one group's events-routed counter (plane restore).
    /// Returns `false` for an unknown group.
    pub fn set_group_position(&mut self, group: TenantId, routed: u64) -> bool {
        match self.groups.iter_mut().find(|(g, _)| *g == group) {
            Some(entry) => {
                entry.1 = routed;
                true
            }
            None => false,
        }
    }

    /// Sends one marker per shard (built by `msg`, in shard order) and
    /// blocks for one ack per shard, returned sorted by shard.
    ///
    /// Markers go out with `send_now` (publish + doorbell immediately):
    /// this call blocks on the acks, so a marker left staged behind the
    /// doorbell batch would deadlock the handshake.
    fn collect_acks<T>(
        &mut self,
        mut msg: impl FnMut(Sender<(usize, T)>) -> ShardMsg,
    ) -> Result<Vec<(usize, T)>, NicError> {
        let (ack_tx, ack_rx) = channel();
        for w in 0..self.workers.len() {
            self.workers[w]
                .tx
                .send_now(msg(ack_tx.clone()))
                .map_err(|_| NicError::WorkerLost { worker: w })?;
        }
        drop(ack_tx);
        let mut pieces: Vec<(usize, T)> = Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            pieces.push(
                ack_rx
                    .recv()
                    .map_err(|_| NicError::WorkerLost { worker: i })?,
            );
        }
        // Deterministic merge in shard order, independent of ack arrival.
        pieces.sort_by_key(|(shard, _)| *shard);
        Ok(pieces)
    }

    /// Routes one tagged event: MGPV evictions to shard `hash % workers`
    /// (identical to the solo executor), FG updates to every shard.
    pub fn push(&mut self, event: TaggedEvent) -> Result<(), NicError> {
        if let Some(entry) = self.groups.iter_mut().find(|(g, _)| *g == event.tenant) {
            entry.1 += 1;
        }
        match &event.event {
            SwitchEvent::FgUpdate(_) => {
                for w in 0..self.workers.len() {
                    self.workers[w].pending.push(event.clone());
                    self.flush_if_full(w)?;
                }
                Ok(())
            }
            SwitchEvent::Mgpv(m) => {
                let w = (m.hash as usize) % self.workers.len();
                self.workers[w].pending.push(event);
                self.flush_if_full(w)
            }
        }
    }

    /// Routes a batch of tagged events in order.
    pub fn push_all(
        &mut self,
        events: impl IntoIterator<Item = TaggedEvent>,
    ) -> Result<(), NicError> {
        for e in events {
            self.push(e)?;
        }
        Ok(())
    }

    fn flush_if_full(&mut self, w: usize) -> Result<(), NicError> {
        if self.workers[w].pending.len() >= FRAME_SIZE {
            self.flush_worker(w)?;
        }
        Ok(())
    }

    fn flush_worker(&mut self, w: usize) -> Result<(), NicError> {
        if self.workers[w].pending.is_empty() {
            return Ok(());
        }
        let replacement = self.take_spare();
        let frame = std::mem::replace(&mut self.workers[w].pending, replacement);
        self.workers[w]
            .tx
            .send(ShardMsg::Frame(frame))
            .map_err(|_| NicError::WorkerLost { worker: w })
    }

    fn flush_all(&mut self) -> Result<(), NicError> {
        for w in 0..self.workers.len() {
            self.flush_worker(w)?;
        }
        Ok(())
    }

    fn take_spare(&mut self) -> Vec<TaggedEvent> {
        for w in &mut self.workers {
            while let Ok(f) = w.recycle.try_recv() {
                self.spare.push(f);
            }
        }
        self.spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(FRAME_SIZE))
    }

    /// Flushes, joins every worker in shard order, and returns each
    /// remaining member's merged output in attach order.
    pub fn finish(mut self) -> Result<Vec<(TenantId, StreamOutput)>, NicError> {
        self.flush_all()?;
        let order: Vec<TenantId> = self.members.iter().map(|m| m.member).collect();
        let mut merged: Vec<(TenantId, StreamOutput)> =
            order.iter().map(|&t| (t, empty_output())).collect();
        for (i, worker) in self.workers.into_iter().enumerate() {
            // Dropping the producer publishes any staged frames, closes the
            // ring, and wakes the worker; its loop drains and exits.
            drop(worker.tx);
            let pieces = worker
                .join
                .join()
                .map_err(|_| NicError::WorkerLost { worker: i })?;
            for piece in pieces {
                if let Some((_, out)) = merged.iter_mut().find(|(t, _)| *t == piece.tenant) {
                    merge_piece(out, piece);
                }
            }
        }
        Ok(merged)
    }
}

fn empty_output() -> StreamOutput {
    StreamOutput {
        group_vectors: Vec::new(),
        packet_vectors: Vec::new(),
        stats: NicStats::default(),
        groups_per_level: Vec::new(),
        evicted_vectors: Vec::new(),
        inline_alerts: Vec::new(),
        inline_stats: None,
    }
}

fn merge_pieces(pieces: Vec<(usize, TenantPiece)>) -> StreamOutput {
    let mut out = empty_output();
    for (_, piece) in pieces {
        merge_piece(&mut out, piece);
    }
    out
}

fn merge_piece(out: &mut StreamOutput, piece: TenantPiece) {
    out.group_vectors.extend(piece.groups);
    out.packet_vectors.extend(piece.pkts);
    out.stats.absorb(&piece.stats);
    if out.groups_per_level.is_empty() {
        out.groups_per_level = piece.groups_per_level;
    } else {
        for (acc, (_, n)) in out.groups_per_level.iter_mut().zip(piece.groups_per_level) {
            acc.1 += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::PacketRecord;
    use superfe_policy::compile;
    use superfe_policy::dsl::parse;
    use superfe_switch::tenant::SharedSwitch;
    use superfe_switch::{CacheMode, FeSwitch, MgpvConfig};

    fn compiled(src: &str) -> CompiledPolicy {
        compile(&parse(src).unwrap()).unwrap()
    }

    fn host_sum() -> CompiledPolicy {
        compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)")
    }

    fn flow_tcp() -> CompiledPolicy {
        compiled(
            "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_sum, f_max])\n\
             .collect(flow)",
        )
    }

    fn packets(n: u64) -> impl Iterator<Item = PacketRecord> {
        (0..n).map(|i| {
            if i % 4 == 0 {
                PacketRecord::udp(i * 500, 120, (i % 13 + 1) as u32, 53, 7, 53)
            } else {
                PacketRecord::tcp(i * 500, 300, (i % 13 + 1) as u32, 2000, 7, 443)
            }
        })
    }

    fn solo_run(c: &CompiledPolicy, n: u64, workers: usize) -> StreamOutput {
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut nic = crate::stream::StreamingNic::new(c, 16_384, workers).unwrap();
        let mut frame = Vec::new();
        for p in packets(n) {
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        nic.finish().unwrap()
    }

    #[test]
    fn two_tenants_match_their_solo_runs() {
        for workers in [1usize, 4] {
            let a = host_sum();
            let b = flow_tcp();
            let mut sw = SharedSwitch::new();
            sw.attach(
                TenantId(0),
                a.switch.clone(),
                MgpvConfig::default(),
                CacheMode::Mgpv,
            );
            sw.attach(
                TenantId(1),
                b.switch.clone(),
                MgpvConfig::default(),
                CacheMode::Mgpv,
            );
            let mut nic = SharedStreamingNic::new(workers);
            nic.attach(TenantId(0), &a, 16_384, None).unwrap();
            nic.attach(TenantId(1), &b, 16_384, None).unwrap();
            let mut frame = Vec::new();
            for p in packets(800) {
                frame.clear();
                sw.process_into(&p, &mut frame);
                nic.push_all(frame.drain(..)).unwrap();
            }
            frame.clear();
            sw.flush_into(&mut frame);
            nic.push_all(frame.drain(..)).unwrap();
            let outs = nic.finish().unwrap();
            assert_eq!(outs.len(), 2);
            let solo_a = solo_run(&a, 800, workers);
            let solo_b = solo_run(&b, 800, workers);
            assert_eq!(outs[0].1.group_vectors, solo_a.group_vectors);
            assert_eq!(outs[1].1.group_vectors, solo_b.group_vectors);
            assert_eq!(outs[0].1.stats.records, solo_a.stats.records);
            assert_eq!(outs[1].1.stats.records, solo_b.stats.records);
        }
    }

    #[test]
    fn detach_handshake_returns_output_and_isolates_survivor() {
        let a = host_sum();
        let b = flow_tcp();
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        sw.attach(
            TenantId(1),
            b.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        nic.attach(TenantId(1), &b, 16_384, None).unwrap();
        let mut frame = Vec::new();
        for (i, p) in packets(1000).enumerate() {
            if i == 500 {
                // Epoch: drain tenant 1 out of switch and NIC mid-stream.
                sw.detach_into(TenantId(1), &mut frame);
                nic.push_all(frame.drain(..)).unwrap();
                let gone = nic.detach(TenantId(1)).unwrap();
                assert!(gone.stats.records > 0);
            }
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        let outs = nic.finish().unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, TenantId(0));
        // The survivor is bit-identical to its solo run.
        let solo = solo_run(&a, 1000, 2);
        assert_eq!(outs[0].1.group_vectors, solo.group_vectors);
    }

    #[test]
    fn fused_unit_demuxes_members_bitwise() {
        for workers in [1usize, 3] {
            let a = host_sum();
            let mut sw = SharedSwitch::new();
            sw.attach(
                TenantId(0),
                a.switch.clone(),
                MgpvConfig::default(),
                CacheMode::Mgpv,
            );
            let mut nic = SharedStreamingNic::new(workers);
            nic.attach(TenantId(0), &a, 16_384, None).unwrap();
            nic.join(TenantId(0), TenantId(1), None).unwrap();
            nic.join(TenantId(0), TenantId(2), None).unwrap();
            let mut frame = Vec::new();
            for p in packets(800) {
                frame.clear();
                sw.process_into(&p, &mut frame);
                nic.push_all(frame.drain(..)).unwrap();
            }
            frame.clear();
            sw.flush_into(&mut frame);
            nic.push_all(frame.drain(..)).unwrap();
            let outs = nic.finish().unwrap();
            assert_eq!(outs.len(), 3);
            let solo = solo_run(&a, 800, workers);
            for (id, out) in &outs {
                assert_eq!(
                    out.group_vectors, solo.group_vectors,
                    "member {id} diverged at {workers} workers"
                );
                assert_eq!(out.stats.records, solo.stats.records);
            }
        }
    }

    #[test]
    fn snapshot_detach_is_bitwise_solo_and_spares_survivors() {
        let a = host_sum();
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        nic.join(TenantId(0), TenantId(1), None).unwrap();
        let mut frame = Vec::new();
        let mut gone = None;
        for (i, p) in packets(1000).enumerate() {
            if i == 500 {
                // Member detach: snapshot the switch partition (live state
                // untouched) and finalize member 1 against it.
                frame.clear();
                sw.snapshot_into(TenantId(0), &mut frame);
                let events: Vec<TaggedEvent> = std::mem::take(&mut frame);
                gone = Some(nic.snapshot_detach(TenantId(1), events).unwrap());
            }
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        let outs = nic.finish().unwrap();
        // The departed member equals a solo run over its window; the
        // survivor equals a solo run over the whole trace.
        let solo_half = solo_run(&a, 500, 2);
        let solo_full = solo_run(&a, 1000, 2);
        let gone = gone.unwrap();
        assert_eq!(gone.group_vectors, solo_half.group_vectors);
        assert_eq!(gone.packet_vectors, solo_half.packet_vectors);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, TenantId(0));
        assert_eq!(outs[0].1.group_vectors, solo_full.group_vectors);
    }

    #[test]
    fn join_guards_stream_position_and_detach_kind() {
        let a = host_sum();
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        nic.join(TenantId(0), TenantId(1), None).unwrap();
        // A shared member cannot take the draining detach path, and a sole
        // member cannot take the snapshot path.
        assert!(nic.detach(TenantId(1)).is_err());
        assert!(nic.snapshot_detach(TenantId(1), Vec::new()).is_ok());
        assert!(nic.snapshot_detach(TenantId(0), Vec::new()).is_err());
        // Once the unit has routed events, late joins are refused.
        let mut frame = Vec::new();
        for p in packets(50) {
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        assert!(nic.join(TenantId(0), TenantId(2), None).is_err());
        assert!(nic.join(TenantId(9), TenantId(3), None).is_err());
        nic.finish().unwrap();
    }

    #[test]
    fn prefix_group_units_match_their_solo_runs() {
        // Two tenants sharing one switch partition (same prefix: no
        // filter, groupby host) but running different reduce tails: each
        // unit's output must be bitwise identical to a solo run of its own
        // full policy.
        for workers in [1usize, 3] {
            let a = host_sum();
            let b = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_max])\n.collect(host)");
            let mut sw = SharedSwitch::new();
            // One partition, attached under the group id (tenant 0).
            sw.attach(
                TenantId(0),
                a.switch.clone(),
                MgpvConfig::default(),
                CacheMode::Mgpv,
            );
            let mut nic = SharedStreamingNic::new(workers);
            nic.attach(TenantId(0), &a, 16_384, None).unwrap();
            nic.attach_to_group(TenantId(0), TenantId(1), &b, 16_384, None)
                .unwrap();
            let mut frame = Vec::new();
            for p in packets(800) {
                frame.clear();
                sw.process_into(&p, &mut frame);
                nic.push_all(frame.drain(..)).unwrap();
            }
            frame.clear();
            sw.flush_into(&mut frame);
            nic.push_all(frame.drain(..)).unwrap();
            let outs = nic.finish().unwrap();
            assert_eq!(outs.len(), 2);
            let solo_a = solo_run(&a, 800, workers);
            let solo_b = solo_run(&b, 800, workers);
            assert_eq!(outs[0].1.group_vectors, solo_a.group_vectors);
            assert_eq!(outs[1].1.group_vectors, solo_b.group_vectors);
            assert_eq!(outs[0].1.stats.records, solo_a.stats.records);
            assert_eq!(outs[1].1.stats.records, solo_b.stats.records);
        }
    }

    #[test]
    fn prefix_detach_is_bitwise_solo_and_spares_survivors() {
        let a = host_sum();
        let b = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_max])\n.collect(host)");
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        nic.attach_to_group(TenantId(0), TenantId(1), &b, 16_384, None)
            .unwrap();
        let mut frame = Vec::new();
        let mut gone = None;
        for (i, p) in packets(1000).enumerate() {
            if i == 500 {
                // The shared partition stays live for tenant 0; tenant 1
                // finalizes against the partition's snapshot flush.
                frame.clear();
                sw.snapshot_into(TenantId(0), &mut frame);
                let events: Vec<TaggedEvent> = std::mem::take(&mut frame);
                gone = Some(nic.prefix_detach(TenantId(1), events).unwrap());
            }
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        let outs = nic.finish().unwrap();
        let solo_half = solo_run(&b, 500, 2);
        let solo_full = solo_run(&a, 1000, 2);
        let gone = gone.unwrap();
        assert_eq!(gone.group_vectors, solo_half.group_vectors);
        assert_eq!(gone.packet_vectors, solo_half.packet_vectors);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, TenantId(0));
        assert_eq!(outs[0].1.group_vectors, solo_full.group_vectors);
    }

    #[test]
    fn prefix_group_guards_position_and_detach_kind() {
        let a = host_sum();
        let b = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_max])\n.collect(host)");
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        // Unknown group, and duplicate members, are refused.
        assert!(nic
            .attach_to_group(TenantId(9), TenantId(1), &b, 16_384, None)
            .is_err());
        nic.attach_to_group(TenantId(0), TenantId(1), &b, 16_384, None)
            .unwrap();
        assert!(nic
            .attach_to_group(TenantId(0), TenantId(1), &b, 16_384, None)
            .is_err());
        // A partition-sharing unit cannot take the draining detach path; a
        // partition's sole consumer cannot take the prefix path.
        assert!(nic.detach(TenantId(1)).is_err());
        assert!(nic.prefix_detach(TenantId(1), Vec::new()).is_ok());
        assert!(nic.prefix_detach(TenantId(0), Vec::new()).is_err());
        // Once the group has routed events, late prefix shares are refused.
        let mut frame = Vec::new();
        for p in packets(50) {
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        assert!(nic
            .attach_to_group(TenantId(0), TenantId(2), &b, 16_384, None)
            .is_err());
        nic.finish().unwrap();
    }

    #[test]
    fn attach_rejects_duplicates_and_bad_sink_counts() {
        let a = host_sum();
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(7), &a, 16_384, None).unwrap();
        assert!(nic.attach(TenantId(7), &a, 16_384, None).is_err());
        assert!(nic
            .attach(TenantId(8), &a, 16_384, Some(Vec::new()))
            .is_err());
        assert!(nic.detach(TenantId(9)).is_err());
        assert!(nic.join(TenantId(7), TenantId(7), None).is_err());
        nic.finish().unwrap();
    }

    #[test]
    fn dump_restore_resumes_bitwise_identically() {
        // Run half the stream, dump every unit, rebuild a fresh executor
        // (replayed attach), restore the dumped state, run the rest: every
        // member's output must be bitwise what the uninterrupted run made.
        for workers in [1usize, 4] {
            let a = host_sum();
            let b = flow_tcp();
            let drive = |nic: &mut SharedStreamingNic,
                         sw: &mut SharedSwitch,
                         range: std::ops::Range<u64>,
                         flush: bool| {
                let mut frame = Vec::new();
                for p in packets(1000)
                    .skip(range.start as usize)
                    .take((range.end - range.start) as usize)
                {
                    frame.clear();
                    sw.process_into(&p, &mut frame);
                    nic.push_all(frame.drain(..)).unwrap();
                }
                if flush {
                    frame.clear();
                    sw.flush_into(&mut frame);
                    nic.push_all(frame.drain(..)).unwrap();
                }
            };
            let attach_both = |sw: &mut SharedSwitch, nic: &mut SharedStreamingNic| {
                sw.attach(
                    TenantId(0),
                    a.switch.clone(),
                    MgpvConfig::default(),
                    CacheMode::Mgpv,
                );
                sw.attach(
                    TenantId(1),
                    b.switch.clone(),
                    MgpvConfig::default(),
                    CacheMode::Mgpv,
                );
                nic.attach(TenantId(0), &a, 16_384, None).unwrap();
                nic.attach(TenantId(1), &b, 16_384, None).unwrap();
            };
            // Uninterrupted reference.
            let mut sw = SharedSwitch::new();
            let mut nic = SharedStreamingNic::new(workers);
            attach_both(&mut sw, &mut nic);
            drive(&mut nic, &mut sw, 0..1000, true);
            let full = nic.finish().unwrap();
            // Interrupted run: dump at the half-way cut...
            let mut sw1 = SharedSwitch::new();
            let mut nic1 = SharedStreamingNic::new(workers);
            attach_both(&mut sw1, &mut nic1);
            drive(&mut nic1, &mut sw1, 0..500, false);
            let dumps = nic1.dump_state().unwrap();
            let positions = nic1.group_positions();
            assert_eq!(dumps.len(), 2);
            assert!(dumps.iter().all(|d| d.shards.len() == workers));
            drop(nic1.finish().unwrap());
            // ...then rebuild structurally and refill the dumped state.
            // The switch side keeps running (sw1 still holds its state).
            let mut nic2 = SharedStreamingNic::new(workers);
            nic2.attach(TenantId(0), &a, 16_384, None).unwrap();
            nic2.attach(TenantId(1), &b, 16_384, None).unwrap();
            for d in dumps {
                nic2.restore_unit(d.unit, d.shards).unwrap();
            }
            for (g, n) in positions {
                assert!(nic2.set_group_position(g, n));
            }
            drive(&mut nic2, &mut sw1, 500..1000, true);
            let resumed = nic2.finish().unwrap();
            assert_eq!(full.len(), resumed.len());
            for ((t1, o1), (t2, o2)) in full.iter().zip(&resumed) {
                assert_eq!(t1, t2);
                assert_eq!(
                    o1.group_vectors, o2.group_vectors,
                    "tenant {t1} diverged at {workers} workers"
                );
                assert_eq!(o1.packet_vectors, o2.packet_vectors);
                assert_eq!(o1.stats.records, o2.stats.records);
                assert_eq!(o1.stats.vectors, o2.stats.vectors);
            }
        }
    }

    #[test]
    fn restore_guards_roster_and_shard_count() {
        let a = host_sum();
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        let dumps = nic.dump_state().unwrap();
        let shards = dumps.into_iter().next().unwrap().shards;
        // Wrong unit id: the roster check rejects it.
        assert!(nic.restore_unit(TenantId(9), shards).is_err());
        // Wrong shard count.
        let dumps = nic.dump_state().unwrap();
        let mut shards = dumps.into_iter().next().unwrap().shards;
        shards.pop();
        assert!(nic.restore_unit(TenantId(0), shards).is_err());
        nic.finish().unwrap();
    }

    #[test]
    fn state_pressure_reports_populations() {
        let a = host_sum();
        let b = flow_tcp();
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        sw.attach(
            TenantId(1),
            b.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        nic.attach(TenantId(1), &b, 16_384, None).unwrap();
        let mut frame = Vec::new();
        for p in packets(600) {
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        let pressure = nic.state_pressure().unwrap();
        assert_eq!(pressure.len(), 2);
        for p in &pressure {
            let total: usize = p.groups_per_level.iter().map(|(_, n)| n).sum();
            assert!(total > 0, "unit {} reports no resident groups", p.unit);
            // Default budgets are far above this workload: no evictions.
            assert_eq!(p.overflow_drops, 0);
            assert_eq!(p.evicted_groups, 0);
        }
        nic.finish().unwrap();
    }

    #[test]
    fn routed_counters_account_per_tenant() {
        let a = host_sum();
        let b = flow_tcp();
        let mut sw = SharedSwitch::new();
        sw.attach(
            TenantId(0),
            a.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        sw.attach(
            TenantId(1),
            b.switch.clone(),
            MgpvConfig::default(),
            CacheMode::Mgpv,
        );
        let mut nic = SharedStreamingNic::new(2);
        nic.attach(TenantId(0), &a, 16_384, None).unwrap();
        nic.attach(TenantId(1), &b, 16_384, None).unwrap();
        let mut frame = Vec::new();
        for p in packets(600) {
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        let tenants = nic.tenants();
        assert_eq!(tenants.len(), 2);
        assert!(tenants.iter().all(|(_, n)| *n > 0));
        nic.finish().unwrap();
    }
}
