//! The NIC group table: fixed-length chaining over 64-byte buckets with
//! DRAM overflow (§6.2 "group table implementation").
//!
//! The 512-bit data bus loads a whole bucket in one access, so a bucket
//! holds `width` entries and a lookup scans them in registers. Entries that
//! do not fit their bucket spill into external DRAM — slower, but harmless
//! while the collision rate stays low, which the paper (and our tests)
//! verify.

use superfe_net::{FxHashMap, GroupKey};

/// Lookup/insert statistics, used to validate the low-collision-rate claim.
#[derive(Clone, Copy, Debug, Default)]
pub struct TableStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups satisfied from the bucket array.
    pub fast_hits: u64,
    /// Lookups that had to touch the DRAM overflow.
    pub dram_lookups: u64,
    /// Entries currently spilled to DRAM.
    pub dram_entries: usize,
}

impl TableStats {
    /// Fraction of lookups that touched DRAM.
    pub fn collision_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.dram_lookups as f64 / self.lookups as f64
        }
    }
}

/// A hash table with fixed-length chains and DRAM overflow.
#[derive(Clone, Debug)]
pub struct GroupTable<V> {
    buckets: Vec<Vec<(GroupKey, V)>>,
    width: usize,
    /// DRAM spill. Keyed with the vendored Fx hasher: the std SipHash
    /// default is DoS-hardened but several times slower, and the keys
    /// reaching this map are already CRC-dispersed by the switch.
    overflow: FxHashMap<GroupKey, V>,
    stats: TableStats,
}

impl<V> GroupTable<V> {
    /// Creates a table with `buckets` buckets of `width` entries each.
    ///
    /// Returns `None` when either dimension is zero.
    pub fn new(buckets: usize, width: usize) -> Option<Self> {
        if buckets == 0 || width == 0 {
            return None;
        }
        Some(GroupTable {
            buckets: (0..buckets).map(|_| Vec::with_capacity(width)).collect(),
            width,
            overflow: FxHashMap::default(),
            stats: TableStats::default(),
        })
    }

    /// Number of resident groups (bucket array + overflow).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum::<usize>() + self.overflow.len()
    }

    /// Whether the table holds no groups.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup/insert statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            dram_entries: self.overflow.len(),
            ..self.stats
        }
    }

    /// Returns the group's value, inserting `default()` on first sight.
    ///
    /// `hash` is the (possibly switch-provided) 32-bit key hash.
    pub fn get_or_insert_with(
        &mut self,
        key: GroupKey,
        hash: u32,
        default: impl FnOnce() -> V,
    ) -> &mut V {
        self.stats.lookups += 1;
        let b = (hash as usize) % self.buckets.len();
        // Fixed-length chain scan (one bus access on hardware).
        if let Some(pos) = self.buckets[b].iter().position(|(k, _)| *k == key) {
            self.stats.fast_hits += 1;
            return &mut self.buckets[b][pos].1;
        }
        if self.buckets[b].len() < self.width && !self.overflow.contains_key(&key) {
            self.stats.fast_hits += 1;
            self.buckets[b].push((key, default()));
            let last = self.buckets[b].len() - 1;
            return &mut self.buckets[b][last].1;
        }
        // Collision: go to DRAM.
        self.stats.dram_lookups += 1;
        self.overflow.entry(key).or_insert_with(default)
    }

    /// Iterates all `(key, value)` pairs (bucket array first, then DRAM).
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (k, v)))
            .chain(self.overflow.iter())
    }

    /// Removes every group, keeping the structure.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> GroupKey {
        GroupKey::Host(i)
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(GroupTable::<u32>::new(0, 4).is_none());
        assert!(GroupTable::<u32>::new(4, 0).is_none());
    }

    #[test]
    fn insert_and_update() {
        let mut t = GroupTable::<u64>::new(16, 4).unwrap();
        *t.get_or_insert_with(key(1), 1, || 0) += 5;
        *t.get_or_insert_with(key(1), 1, || 0) += 5;
        assert_eq!(*t.get_or_insert_with(key(1), 1, || 0), 10);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bucket_overflow_spills_to_dram() {
        let mut t = GroupTable::<u32>::new(1, 2).unwrap();
        // All keys land in bucket 0 (1 bucket); width 2 -> 3rd key spills.
        for i in 0..3 {
            t.get_or_insert_with(key(i), 0, || i);
        }
        let s = t.stats();
        assert_eq!(t.len(), 3);
        assert_eq!(s.dram_entries, 1);
        assert!(s.dram_lookups >= 1);
        // The spilled key stays reachable and distinct.
        assert_eq!(*t.get_or_insert_with(key(2), 0, || 99), 2);
    }

    #[test]
    fn spilled_key_never_duplicates_into_bucket() {
        let mut t = GroupTable::<u32>::new(1, 1).unwrap();
        t.get_or_insert_with(key(1), 0, || 1);
        t.get_or_insert_with(key(2), 0, || 2); // spills
                                               // key(1) evicted scenario does not exist (no eviction); but key(2)
                                               // must not re-enter the bucket even if the bucket had space later.
        assert_eq!(t.len(), 2);
        t.get_or_insert_with(key(2), 0, || 99);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn collision_rate_low_when_sized_correctly() {
        let mut t = GroupTable::<u32>::new(1024, 4).unwrap();
        for i in 0..1000u32 {
            let k = key(i);
            t.get_or_insert_with(k, k.hash32(), || 0);
        }
        assert!(
            t.stats().collision_rate() < 0.05,
            "{}",
            t.stats().collision_rate()
        );
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut t = GroupTable::<u32>::new(2, 1).unwrap();
        for i in 0..6 {
            t.get_or_insert_with(key(i), i, || i);
        }
        let mut seen: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn clear_empties_table() {
        let mut t = GroupTable::<u32>::new(4, 1).unwrap();
        for i in 0..8 {
            t.get_or_insert_with(key(i), i, || i);
        }
        t.clear();
        assert!(t.is_empty());
    }
}
