//! The NIC group table: fixed-length chaining over 64-byte buckets with
//! size-capped DRAM overflow (§6.2 "group table implementation").
//!
//! The 512-bit data bus loads a whole bucket in one access, so a bucket
//! holds `width` entries and a lookup scans them in registers. Entries that
//! do not fit their bucket spill into external DRAM — slower, but harmless
//! while the collision rate stays low, which the paper (and our tests)
//! verify.
//!
//! The DRAM spill is **bounded**: a [`TableBudget`] caps the number of
//! spilled entries under the memory the admission controller granted, and a
//! pluggable [`EvictionPolicy`] decides what happens at the cap. Evicted
//! groups are returned to the caller as typed `(key, value)` records — the
//! engine finalizes them into explicit `Evicted` feature vectors instead of
//! silently growing (the pre-budget behavior) or silently dropping state.

use std::collections::VecDeque;

use superfe_net::{FxHashMap, GroupKey};

/// Default DRAM overflow cap (entries). Large enough that the bundled
/// test workloads (≤ 60k packets) never evict — bounded-state defaults must
/// keep the keystone differentials bitwise — while still making adversarial
/// key cardinality a hard bound instead of an OOM.
pub const DEFAULT_DRAM_CAP: usize = 1 << 22;

/// What to do when a new group arrives and the DRAM overflow is at its cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Refuse the new group (its updates are dropped and counted). The
    /// resident working set is preserved — right when early flows matter
    /// more than late ones (e.g. under a flood of spoofed sources).
    DropNew,
    /// Evict the oldest spilled group (insertion order — an LRU
    /// approximation without per-access bookkeeping) to admit the new one.
    EvictOldest,
    /// Evict a uniformly random spilled group (seeded, deterministic) —
    /// the hardware-cheap policy: no order maintenance at all.
    RandomWay {
        /// Seed of the deterministic victim sequence.
        seed: u64,
    },
    /// True access-ordered LRU: every DRAM hit refreshes the group's
    /// recency, and the least-recently-*used* (not least-recently-inserted)
    /// group is evicted. Costs a per-access tick plus a lazily compacted
    /// recency queue — the upper bound `EvictOldest` approximates.
    Lru,
}

/// Memory budget of one group table's DRAM overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableBudget {
    /// Maximum spilled entries resident at once.
    pub max_dram_entries: usize,
    /// Policy applied when a new group arrives at the cap.
    pub policy: EvictionPolicy,
}

impl Default for TableBudget {
    fn default() -> Self {
        TableBudget {
            max_dram_entries: DEFAULT_DRAM_CAP,
            policy: EvictionPolicy::DropNew,
        }
    }
}

impl TableBudget {
    /// A budget capping DRAM at `entries` with the given policy.
    pub fn capped(entries: usize, policy: EvictionPolicy) -> Self {
        TableBudget {
            max_dram_entries: entries.max(1),
            policy,
        }
    }
}

/// Lookup/insert statistics, used to validate the low-collision-rate claim
/// and to observe budget pressure.
#[derive(Clone, Copy, Debug, Default)]
pub struct TableStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups satisfied from the bucket array.
    pub fast_hits: u64,
    /// Lookups that had to touch the DRAM overflow.
    pub dram_lookups: u64,
    /// Entries currently spilled to DRAM.
    pub dram_entries: usize,
    /// New groups refused at the cap ([`EvictionPolicy::DropNew`]); counted
    /// once per refused update.
    pub overflow_drops: u64,
    /// Resident groups evicted at the cap (the other policies).
    pub overflow_evictions: u64,
}

impl TableStats {
    /// Fraction of lookups that touched DRAM.
    pub fn collision_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.dram_lookups as f64 / self.lookups as f64
        }
    }

    /// Folds another table's counters into this one.
    pub fn absorb(&mut self, other: &TableStats) {
        self.lookups += other.lookups;
        self.fast_hits += other.fast_hits;
        self.dram_lookups += other.dram_lookups;
        self.dram_entries += other.dram_entries;
        self.overflow_drops += other.overflow_drops;
        self.overflow_evictions += other.overflow_evictions;
    }
}

/// A hash table with fixed-length chains and size-capped DRAM overflow.
#[derive(Clone, Debug)]
pub struct GroupTable<V> {
    buckets: Vec<Vec<(GroupKey, V)>>,
    width: usize,
    /// DRAM spill values. Keyed with the vendored Fx hasher: the std
    /// SipHash default is DoS-hardened but several times slower, and the
    /// keys reaching this map are already CRC-dispersed by the switch.
    overflow: FxHashMap<GroupKey, V>,
    /// Order of the spilled keys — the iteration order (so output is
    /// deterministic and serializable) and the eviction order for
    /// [`EvictionPolicy::EvictOldest`] and [`EvictionPolicy::Lru`]. Each
    /// entry carries the tick it was pushed at; under `Lru` a key is
    /// re-pushed on every DRAM access and only the entry matching
    /// `ticks[key]` is live (lazy invalidation — no mid-queue removal).
    /// Under every other policy entries are unique and always live.
    order: VecDeque<(GroupKey, u64)>,
    /// Latest access tick per resident spilled key (`Lru` only).
    ticks: FxHashMap<GroupKey, u64>,
    /// Monotonic access counter feeding `order`/`ticks`.
    clock: u64,
    budget: TableBudget,
    /// splitmix64 state for [`EvictionPolicy::RandomWay`] victims.
    rng: u64,
    stats: TableStats,
}

impl<V> GroupTable<V> {
    /// Creates a table with `buckets` buckets of `width` entries each and
    /// the default (effectively unbounded for test workloads) budget.
    ///
    /// Returns `None` when either dimension is zero.
    pub fn new(buckets: usize, width: usize) -> Option<Self> {
        Self::with_budget(buckets, width, TableBudget::default())
    }

    /// Creates a table with an explicit DRAM overflow budget.
    pub fn with_budget(buckets: usize, width: usize, budget: TableBudget) -> Option<Self> {
        if buckets == 0 || width == 0 {
            return None;
        }
        let rng = match budget.policy {
            EvictionPolicy::RandomWay { seed } => seed,
            _ => 0,
        };
        Some(GroupTable {
            buckets: (0..buckets).map(|_| Vec::with_capacity(width)).collect(),
            width,
            overflow: FxHashMap::default(),
            order: VecDeque::new(),
            ticks: FxHashMap::default(),
            clock: 0,
            budget,
            rng,
            stats: TableStats::default(),
        })
    }

    /// The table's DRAM budget.
    pub fn budget(&self) -> TableBudget {
        self.budget
    }

    /// Number of resident groups (bucket array + overflow).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum::<usize>() + self.overflow.len()
    }

    /// Whether the table holds no groups.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup/insert statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            dram_entries: self.overflow.len(),
            ..self.stats
        }
    }

    /// Returns the group's value, inserting `default()` on first sight.
    ///
    /// `hash` is the (possibly switch-provided) 32-bit key hash. A group
    /// evicted to make room is pushed onto `evicted` for the caller to
    /// finalize. Returns `None` when the budget refused the new group
    /// ([`EvictionPolicy::DropNew`] at the cap) — the caller drops the
    /// update and the refusal is counted in [`TableStats::overflow_drops`].
    pub fn get_or_insert_with(
        &mut self,
        key: GroupKey,
        hash: u32,
        default: impl FnOnce() -> V,
        evicted: &mut Vec<(GroupKey, V)>,
    ) -> Option<&mut V> {
        self.stats.lookups += 1;
        let b = (hash as usize) % self.buckets.len();
        // Fixed-length chain scan (one bus access on hardware).
        if let Some(pos) = self.buckets[b].iter().position(|(k, _)| *k == key) {
            self.stats.fast_hits += 1;
            return Some(&mut self.buckets[b][pos].1);
        }
        if self.buckets[b].len() < self.width && !self.overflow.contains_key(&key) {
            self.stats.fast_hits += 1;
            self.buckets[b].push((key, default()));
            let last = self.buckets[b].len() - 1;
            return Some(&mut self.buckets[b][last].1);
        }
        // Collision: go to DRAM.
        self.stats.dram_lookups += 1;
        if self.overflow.contains_key(&key) {
            self.note_access(key);
        } else {
            if self.overflow.len() >= self.budget.max_dram_entries && !self.make_room(evicted) {
                self.stats.overflow_drops += 1;
                return None;
            }
            self.note_insert(key);
            self.overflow.insert(key, default());
        }
        self.overflow.get_mut(&key)
    }

    /// Records a first-sight spill: one live `order` entry for the key.
    fn note_insert(&mut self, key: GroupKey) {
        self.clock += 1;
        if self.budget.policy == EvictionPolicy::Lru {
            self.ticks.insert(key, self.clock);
        }
        self.order.push_back((key, self.clock));
    }

    /// Refreshes a spilled key's recency on a DRAM hit (`Lru` only): the
    /// old `order` entry goes stale and a fresh one is appended. The queue
    /// is compacted once stale entries dominate, keeping the amortized cost
    /// O(1) per access.
    fn note_access(&mut self, key: GroupKey) {
        if self.budget.policy != EvictionPolicy::Lru {
            return;
        }
        self.clock += 1;
        self.ticks.insert(key, self.clock);
        self.order.push_back((key, self.clock));
        if self.order.len() > 2 * self.overflow.len() + 64 {
            let ticks = &self.ticks;
            self.order.retain(|(k, t)| ticks.get(k) == Some(t));
        }
    }

    /// Whether an `order` entry is live (non-`Lru` entries always are).
    fn is_fresh(&self, key: &GroupKey, tick: u64) -> bool {
        self.budget.policy != EvictionPolicy::Lru || self.ticks.get(key) == Some(&tick)
    }

    /// Applies the eviction policy once; returns `false` when the policy
    /// refuses to evict (`DropNew`).
    fn make_room(&mut self, evicted: &mut Vec<(GroupKey, V)>) -> bool {
        let victim = match self.budget.policy {
            EvictionPolicy::DropNew => return false,
            EvictionPolicy::EvictOldest => self.order.pop_front().map(|(k, _)| k),
            EvictionPolicy::RandomWay { .. } => {
                // splitmix64 step — deterministic victim sequence per seed.
                self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let idx = (z % self.order.len().max(1) as u64) as usize;
                self.order.swap_remove_back(idx).map(|(k, _)| k)
            }
            EvictionPolicy::Lru => {
                // Pop stale entries until the front is live: the live entry
                // with the smallest tick belongs to the key whose *latest*
                // access is oldest — the true LRU victim.
                let mut victim = None;
                while let Some((k, t)) = self.order.pop_front() {
                    if self.ticks.get(&k) == Some(&t) {
                        victim = Some(k);
                        break;
                    }
                }
                if let Some(k) = victim {
                    self.ticks.remove(&k);
                }
                victim
            }
        };
        let Some(k) = victim else { return false };
        if let Some(v) = self.overflow.remove(&k) {
            self.stats.overflow_evictions += 1;
            evicted.push((k, v));
        }
        true
    }

    /// Iterates all `(key, value)` pairs: bucket array first, then DRAM in
    /// insertion order (recency order under [`EvictionPolicy::Lru`]) —
    /// deterministic, matching the serialized layout.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (k, v)))
            .chain(self.order.iter().filter_map(|(k, t)| {
                if !self.is_fresh(k, *t) {
                    return None;
                }
                let v = self.overflow.get(k).expect("live order entry is resident");
                Some((k, v))
            }))
    }

    /// Removes every group, keeping the structure and budget.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.order.clear();
        self.ticks.clear();
    }

    /// Serializes the table's dynamic contents (chain and spill order
    /// preserved) with `save_v` writing each value.
    pub fn save_state(
        &self,
        w: &mut superfe_net::snap::StateWriter,
        mut save_v: impl FnMut(&V, &mut superfe_net::snap::StateWriter),
    ) {
        w.put_u32(self.buckets.len() as u32);
        w.put_u32(self.width as u32);
        for b in &self.buckets {
            w.put_u16(b.len() as u16);
            for (k, v) in b {
                k.save_state(w);
                save_v(v, w);
            }
        }
        w.put_u32(self.overflow.len() as u32);
        for (k, t) in &self.order {
            if !self.is_fresh(k, *t) {
                continue;
            }
            k.save_state(w);
            save_v(&self.overflow[k], w);
        }
        w.put_u64(self.rng);
        let s = self.stats;
        for c in [
            s.lookups,
            s.fast_hits,
            s.dram_lookups,
            s.overflow_drops,
            s.overflow_evictions,
        ] {
            w.put_u64(c);
        }
    }

    /// Restores dynamic contents saved by [`GroupTable::save_state`] into
    /// this (freshly constructed, same-geometry) table. Returns `None` on a
    /// geometry mismatch or truncated input.
    pub fn load_state(
        &mut self,
        r: &mut superfe_net::snap::StateReader<'_>,
        mut load_v: impl FnMut(&mut superfe_net::snap::StateReader<'_>) -> Option<V>,
    ) -> Option<()> {
        if r.get_u32()? as usize != self.buckets.len() || r.get_u32()? as usize != self.width {
            return None;
        }
        self.clear();
        for b in 0..self.buckets.len() {
            let n = r.get_u16()? as usize;
            for _ in 0..n {
                let k = GroupKey::load_state(r)?;
                let v = load_v(r)?;
                self.buckets[b].push((k, v));
            }
        }
        let spilled = r.get_u32()? as usize;
        for _ in 0..spilled {
            let k = GroupKey::load_state(r)?;
            let v = load_v(r)?;
            // Spill entries were saved in live order, so re-ticking them in
            // sequence reproduces the relative recency exactly.
            self.note_insert(k);
            self.overflow.insert(k, v);
        }
        self.rng = r.get_u64()?;
        self.stats.lookups = r.get_u64()?;
        self.stats.fast_hits = r.get_u64()?;
        self.stats.dram_lookups = r.get_u64()?;
        self.stats.overflow_drops = r.get_u64()?;
        self.stats.overflow_evictions = r.get_u64()?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> GroupKey {
        GroupKey::Host(i)
    }

    fn put(t: &mut GroupTable<u32>, i: u32, h: u32) -> Option<u32> {
        let mut ev = Vec::new();
        t.get_or_insert_with(key(i), h, || i, &mut ev).copied()
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(GroupTable::<u32>::new(0, 4).is_none());
        assert!(GroupTable::<u32>::new(4, 0).is_none());
    }

    #[test]
    fn insert_and_update() {
        let mut t = GroupTable::<u64>::new(16, 4).unwrap();
        let mut ev = Vec::new();
        *t.get_or_insert_with(key(1), 1, || 0, &mut ev).unwrap() += 5;
        *t.get_or_insert_with(key(1), 1, || 0, &mut ev).unwrap() += 5;
        assert_eq!(*t.get_or_insert_with(key(1), 1, || 0, &mut ev).unwrap(), 10);
        assert_eq!(t.len(), 1);
        assert!(ev.is_empty());
    }

    #[test]
    fn bucket_overflow_spills_to_dram() {
        let mut t = GroupTable::<u32>::new(1, 2).unwrap();
        // All keys land in bucket 0 (1 bucket); width 2 -> 3rd key spills.
        for i in 0..3 {
            put(&mut t, i, 0);
        }
        let s = t.stats();
        assert_eq!(t.len(), 3);
        assert_eq!(s.dram_entries, 1);
        assert!(s.dram_lookups >= 1);
        // The spilled key stays reachable and distinct.
        assert_eq!(put(&mut t, 2, 0), Some(2));
    }

    #[test]
    fn spilled_key_never_duplicates_into_bucket() {
        let mut t = GroupTable::<u32>::new(1, 1).unwrap();
        put(&mut t, 1, 0);
        put(&mut t, 2, 0); // spills
        assert_eq!(t.len(), 2);
        put(&mut t, 2, 0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn collision_rate_low_when_sized_correctly() {
        let mut t = GroupTable::<u32>::new(1024, 4).unwrap();
        for i in 0..1000u32 {
            let k = key(i);
            put(&mut t, i, k.hash32());
        }
        assert!(
            t.stats().collision_rate() < 0.05,
            "{}",
            t.stats().collision_rate()
        );
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut t = GroupTable::<u32>::new(2, 1).unwrap();
        for i in 0..6 {
            put(&mut t, i, i);
        }
        let mut seen: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn iter_spill_order_is_insertion_order() {
        let mut t = GroupTable::<u32>::new(1, 1).unwrap();
        for i in 0..5 {
            put(&mut t, i, 0);
        }
        // Key 0 sits in the bucket; 1..5 spilled in order.
        let seen: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_empties_table() {
        let mut t = GroupTable::<u32>::new(4, 1).unwrap();
        for i in 0..8 {
            put(&mut t, i, i);
        }
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn drop_new_refuses_at_cap() {
        let budget = TableBudget::capped(2, EvictionPolicy::DropNew);
        let mut t = GroupTable::<u32>::with_budget(1, 1, budget).unwrap();
        let mut ev = Vec::new();
        for i in 0..5 {
            t.get_or_insert_with(key(i), 0, || i, &mut ev);
        }
        // Bucket holds key 0; keys 1, 2 spilled; 3, 4 refused.
        assert_eq!(t.len(), 3);
        assert!(ev.is_empty());
        let s = t.stats();
        assert_eq!(s.overflow_drops, 2);
        assert_eq!(s.overflow_evictions, 0);
        // A refused key returns None; resident keys still resolve.
        assert!(t.get_or_insert_with(key(4), 0, || 4, &mut ev).is_none());
        assert_eq!(put(&mut t, 1, 0), Some(1));
    }

    #[test]
    fn evict_oldest_rotates_fifo() {
        let budget = TableBudget::capped(2, EvictionPolicy::EvictOldest);
        let mut t = GroupTable::<u32>::with_budget(1, 1, budget).unwrap();
        let mut ev = Vec::new();
        for i in 0..5 {
            assert!(t.get_or_insert_with(key(i), 0, || i, &mut ev).is_some());
        }
        // Spill order: 1,2 -> evict 1 for 3 -> evict 2 for 4.
        assert_eq!(t.len(), 3);
        let evicted: Vec<u32> = ev.iter().map(|(_, v)| *v).collect();
        assert_eq!(evicted, vec![1, 2]);
        assert_eq!(t.stats().overflow_evictions, 2);
        // An evicted key re-inserts as a fresh group (evicting in turn).
        let before = ev.len();
        assert!(t.get_or_insert_with(key(1), 0, || 99, &mut ev).is_some());
        assert_eq!(ev.len(), before + 1);
    }

    #[test]
    fn lru_evicts_by_access_not_insertion() {
        let budget = TableBudget::capped(2, EvictionPolicy::Lru);
        let mut t = GroupTable::<u32>::with_budget(1, 1, budget).unwrap();
        let mut ev = Vec::new();
        // key 0 fills the single bucket; 1 and 2 spill to DRAM (cap 2).
        for i in 0..3 {
            assert!(t.get_or_insert_with(key(i), 0, || i, &mut ev).is_some());
        }
        // Touch 1 (the older spill): under EvictOldest, 1 would be the
        // next victim; under true LRU it is now the most recent.
        assert!(t.get_or_insert_with(key(1), 0, || 99, &mut ev).is_some());
        assert!(t.get_or_insert_with(key(3), 0, || 3, &mut ev).is_some());
        let evicted: Vec<u32> = ev.iter().map(|(_, v)| *v).collect();
        assert_eq!(evicted, vec![2], "LRU must evict the untouched key 2");
        // Iteration visits each resident spill exactly once, in recency
        // order (1 was touched after 3's insertion replaced 2... 1 then 3).
        let spilled: Vec<u32> = t
            .iter()
            .filter(|(k, _)| **k != key(0))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(spilled, vec![1, 3]);
    }

    #[test]
    fn lru_recency_queue_compacts_and_stays_exact() {
        let budget = TableBudget::capped(4, EvictionPolicy::Lru);
        let mut t = GroupTable::<u32>::with_budget(1, 1, budget).unwrap();
        let mut ev = Vec::new();
        for i in 0..5 {
            assert!(t.get_or_insert_with(key(i), 0, || i, &mut ev).is_some());
        }
        // Hammer one spilled key far past the compaction threshold.
        for _ in 0..10_000 {
            assert!(t.get_or_insert_with(key(2), 0, || 0, &mut ev).is_some());
        }
        assert!(
            t.order.len() <= 2 * t.overflow.len() + 65,
            "queue unbounded"
        );
        // Evictions still pick true LRU victims in order: 1, 3, 4, then 2.
        for i in 10..14 {
            assert!(t.get_or_insert_with(key(i), 0, || i, &mut ev).is_some());
        }
        let evicted: Vec<u32> = ev.iter().map(|(_, v)| *v).collect();
        assert_eq!(evicted, vec![1, 3, 4, 2]);
    }

    #[test]
    fn lru_state_survives_snapshot_roundtrip() {
        let budget = TableBudget::capped(3, EvictionPolicy::Lru);
        let mut t = GroupTable::<u32>::with_budget(1, 1, budget).unwrap();
        let mut ev = Vec::new();
        for i in 0..4 {
            t.get_or_insert_with(key(i), 0, || i, &mut ev).unwrap();
        }
        t.get_or_insert_with(key(1), 0, || 0, &mut ev).unwrap(); // refresh 1
        let mut w = superfe_net::snap::StateWriter::new();
        t.save_state(&mut w, |v, w| w.put_u32(*v));
        let bytes = w.into_bytes();
        let mut u = GroupTable::<u32>::with_budget(1, 1, budget).unwrap();
        let mut r = superfe_net::snap::StateReader::new(&bytes);
        #[allow(clippy::redundant_closure_for_method_calls)]
        u.load_state(&mut r, |r| r.get_u32()).unwrap();
        // Same residents, and the restored recency keeps 2 as the victim.
        let mut ev_t = Vec::new();
        let mut ev_u = Vec::new();
        t.get_or_insert_with(key(9), 0, || 9, &mut ev_t).unwrap();
        u.get_or_insert_with(key(9), 0, || 9, &mut ev_u).unwrap();
        let vt: Vec<u32> = ev_t.iter().map(|(_, v)| *v).collect();
        let vu: Vec<u32> = ev_u.iter().map(|(_, v)| *v).collect();
        assert_eq!(vt, vu, "restored table must evict the same victim");
        assert_eq!(vt, vec![2]);
    }

    #[test]
    fn random_way_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let budget = TableBudget::capped(4, EvictionPolicy::RandomWay { seed });
            let mut t = GroupTable::<u32>::with_budget(1, 1, budget).unwrap();
            let mut ev = Vec::new();
            for i in 0..64 {
                t.get_or_insert_with(key(i), 0, || i, &mut ev);
            }
            assert_eq!(t.stats().dram_entries, 4);
            ev.into_iter().map(|(_, v)| v).collect::<Vec<u32>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
        assert_eq!(run(1).len(), 64 - 1 - 4);
    }

    #[test]
    fn save_load_round_trips_contents_and_order() {
        let budget = TableBudget::capped(8, EvictionPolicy::EvictOldest);
        let mut t = GroupTable::<u32>::with_budget(4, 2, budget).unwrap();
        let mut ev = Vec::new();
        for i in 0..20 {
            t.get_or_insert_with(key(i), i % 4, || i * 3, &mut ev);
        }
        let mut w = superfe_net::snap::StateWriter::new();
        t.save_state(&mut w, |v, w| w.put_u32(*v));
        let bytes = w.into_bytes();

        let mut u = GroupTable::<u32>::with_budget(4, 2, budget).unwrap();
        let mut r = superfe_net::snap::StateReader::new(&bytes);
        #[allow(clippy::redundant_closure_for_method_calls)]
        #[allow(clippy::redundant_closure_for_method_calls)]
        u.load_state(&mut r, |r| r.get_u32()).unwrap();
        assert!(r.is_empty());
        let a: Vec<(GroupKey, u32)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(GroupKey, u32)> = u.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
        assert_eq!(t.stats().dram_lookups, u.stats().dram_lookups);
    }
}
