//! The group-table placement ILP (§6.2, Eq. 3–5), solved exactly.
//!
//! Each policy state `s` (size `b_s` bytes, `t_s` accesses per packet) must
//! be placed into exactly one memory level `m` (latency `l_m`, bus width
//! `w_m`), minimizing total access latency `Σ p_{s,m} · t_s · l_m` subject to
//! the bus constraint `n_m · Σ_{s∈m} b_s ≤ w_m`, where `n_m` is the group
//! table's width (entries per 64-byte bucket). DRAM is the escape hatch: it
//! is not bus-constrained (multi-beat bulk access) but is the slowest level.
//!
//! The paper calls Gurobi; the instances are tiny (|S|·|M| ≲ 150 binary
//! variables), so a branch-and-bound search finds the provable optimum in
//! microseconds, with a greedy fallback for adversarially large inputs.

use superfe_policy::compile::StateSpec;

use crate::arch::{MemLevel, NfpModel};

/// A solved placement.
#[derive(Clone, Debug)]
pub struct Placement {
    /// `(state name, memory level)` for every input state, in input order.
    pub assignment: Vec<(String, MemLevel)>,
    /// The objective value `Σ t_s · l_m` (cycles per packet spent on state
    /// access, before thread-level latency hiding).
    pub total_cost: f64,
    /// Whether the solution is the proven optimum (false = greedy fallback).
    pub optimal: bool,
}

impl Placement {
    /// The level a named state was placed into.
    pub fn level_of(&self, name: &str) -> Option<MemLevel> {
        self.assignment
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
    }

    /// Total state bytes placed per memory level.
    pub fn bytes_per_level(&self, states: &[StateSpec]) -> Vec<(MemLevel, usize)> {
        MemLevel::all()
            .iter()
            .map(|&lvl| {
                let bytes = self
                    .assignment
                    .iter()
                    .zip(states)
                    .filter(|((_, m), _)| *m == lvl)
                    .map(|(_, s)| s.bytes)
                    .sum();
                (lvl, bytes)
            })
            .collect()
    }
}

/// Node budget before falling back to the greedy heuristic.
const MAX_NODES: u64 = 2_000_000;

/// Solves the placement problem for `states` on `model` with a group table
/// of `table_width` entries per bucket.
///
/// Returns `None` when `table_width == 0` or the model has no memories.
pub fn solve_placement(
    states: &[StateSpec],
    model: &NfpModel,
    table_width: usize,
) -> Option<Placement> {
    if table_width == 0 || model.memories.is_empty() {
        return None;
    }
    if states.is_empty() {
        return Some(Placement {
            assignment: Vec::new(),
            total_cost: 0.0,
            optimal: true,
        });
    }

    // Per-memory byte budget for the per-group state block: w_m / n_m.
    // DRAM is unconstrained.
    let budgets: Vec<f64> = model
        .memories
        .iter()
        .map(|m| {
            if m.level == MemLevel::Dram {
                f64::INFINITY
            } else {
                m.bus_bytes as f64 / table_width as f64
            }
        })
        .collect();
    let latencies: Vec<f64> = model
        .memories
        .iter()
        .map(|m| m.latency_cycles as f64)
        .collect();

    // Order states by access weight descending for effective pruning.
    let mut order: Vec<usize> = (0..states.len()).collect();
    order.sort_by(|&a, &b| {
        (states[b].accesses_per_pkt * states[b].bytes as f64)
            .partial_cmp(&(states[a].accesses_per_pkt * states[a].bytes as f64))
            .expect("finite weights")
    });

    // Memories fastest-first, used both for branching and for the bound.
    let mut mem_order: Vec<usize> = (0..latencies.len()).collect();
    mem_order.sort_by(|&a, &b| latencies[a].partial_cmp(&latencies[b]).expect("finite"));

    // Density order (t_s / b_s descending) for the fractional bound.
    let mut density_order: Vec<usize> = (0..states.len()).collect();
    density_order.sort_by(|&a, &b| {
        let da = states[a].accesses_per_pkt / states[a].bytes.max(1) as f64;
        let db = states[b].accesses_per_pkt / states[b].bytes.max(1) as f64;
        db.partial_cmp(&da).expect("finite densities")
    });
    // position in `order` (branching order) of each state index.
    let mut pos_in_order = vec![0usize; states.len()];
    for (d, &i) in order.iter().enumerate() {
        pos_in_order[i] = d;
    }

    // Symmetry breaking: identical consecutive states (same bytes, same
    // accesses) are interchangeable, so force their memory ranks to be
    // non-decreasing along the branching order.
    let same_as_prev: Vec<bool> = order
        .iter()
        .enumerate()
        .map(|(d, &i)| {
            d > 0 && {
                let p = &states[order[d - 1]];
                let s = &states[i];
                p.bytes == s.bytes && p.accesses_per_pkt == s.accesses_per_pkt
            }
        })
        .collect();

    struct Ctx<'a> {
        states: &'a [StateSpec],
        order: &'a [usize],
        mem_order: &'a [usize],
        density_order: &'a [usize],
        pos_in_order: &'a [usize],
        same_as_prev: &'a [bool],
        latencies: &'a [f64],
        best_cost: f64,
        best: Vec<usize>,
        current: Vec<usize>,
        current_rank: Vec<usize>,
        nodes: u64,
    }

    /// Fractional transport relaxation: unassigned states, in density order,
    /// fill the remaining capacities fastest-first, splitting freely. This
    /// is the LP optimum of the relaxed problem, hence a valid lower bound.
    fn frac_bound(ctx: &Ctx<'_>, depth: usize, remaining: &[f64]) -> f64 {
        let mut cap: Vec<f64> = ctx.mem_order.iter().map(|&m| remaining[m]).collect();
        let mut mi = 0usize;
        let mut bound = 0.0;
        for &i in ctx.density_order {
            if ctx.pos_in_order[i] < depth {
                continue; // already assigned on this path
            }
            let s = &ctx.states[i];
            let mut left = s.bytes as f64;
            while left > 0.0 {
                if mi >= cap.len() {
                    return f64::INFINITY; // cannot happen: DRAM is infinite
                }
                let take = left.min(cap[mi]);
                if take > 0.0 {
                    let m = ctx.mem_order[mi];
                    bound += s.accesses_per_pkt * ctx.latencies[m] * take / s.bytes as f64;
                    cap[mi] -= take;
                    left -= take;
                }
                if cap[mi] <= 0.0 {
                    mi += 1;
                }
            }
        }
        bound
    }

    fn dfs(ctx: &mut Ctx<'_>, depth: usize, remaining: &mut [f64], cost: f64) {
        ctx.nodes += 1;
        if ctx.nodes > MAX_NODES {
            return;
        }
        if depth == ctx.order.len() {
            if cost < ctx.best_cost {
                ctx.best_cost = cost;
                ctx.best = ctx.current.clone();
            }
            return;
        }
        if cost + frac_bound(ctx, depth, remaining) >= ctx.best_cost {
            return;
        }
        let s = &ctx.states[ctx.order[depth]];
        let start_rank = if ctx.same_as_prev[depth] {
            ctx.current_rank[ctx.order[depth - 1]]
        } else {
            0
        };
        for mo in start_rank..ctx.mem_order.len() {
            let m = ctx.mem_order[mo];
            if (s.bytes as f64) <= remaining[m] {
                remaining[m] -= s.bytes as f64;
                ctx.current[ctx.order[depth]] = m;
                ctx.current_rank[ctx.order[depth]] = mo;
                dfs(
                    ctx,
                    depth + 1,
                    remaining,
                    cost + s.accesses_per_pkt * ctx.latencies[m],
                );
                remaining[m] += s.bytes as f64;
            }
        }
    }

    let mut ctx = Ctx {
        states,
        order: &order,
        mem_order: &mem_order,
        density_order: &density_order,
        pos_in_order: &pos_in_order,
        latencies: &latencies,
        same_as_prev: &same_as_prev,
        best_cost: f64::INFINITY,
        best: vec![model.memories.len() - 1; states.len()],
        current: vec![0; states.len()],
        current_rank: vec![0; states.len()],
        nodes: 0,
    };
    let mut remaining = budgets.clone();
    dfs(&mut ctx, 0, &mut remaining, 0.0);

    let (choice, optimal) = if ctx.best_cost.is_finite() && ctx.nodes <= MAX_NODES {
        (ctx.best, true)
    } else {
        // Greedy fallback: hottest states into the fastest feasible level.
        let mut rem = budgets.clone();
        let mut choice = vec![model.memories.len() - 1; states.len()];
        for &i in &order {
            let s = &states[i];
            let mut mems: Vec<usize> = (0..latencies.len()).collect();
            mems.sort_by(|&a, &b| latencies[a].partial_cmp(&latencies[b]).expect("finite"));
            for m in mems {
                if (s.bytes as f64) <= rem[m] {
                    rem[m] -= s.bytes as f64;
                    choice[i] = m;
                    break;
                }
            }
        }
        (choice, false)
    };

    let total_cost = choice
        .iter()
        .zip(states)
        .map(|(&m, s)| s.accesses_per_pkt * latencies[m])
        .sum();
    let assignment = choice
        .iter()
        .zip(states)
        .map(|(&m, s)| (s.name.clone(), model.memories[m].level))
        .collect();
    Some(Placement {
        assignment,
        total_cost,
        optimal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(name: &str, bytes: usize, t: f64) -> StateSpec {
        StateSpec {
            name: name.into(),
            bytes,
            accesses_per_pkt: t,
        }
    }

    fn model() -> NfpModel {
        NfpModel::nfp4000()
    }

    #[test]
    fn empty_states_trivial() {
        let p = solve_placement(&[], &model(), 1).unwrap();
        assert_eq!(p.total_cost, 0.0);
        assert!(p.optimal);
    }

    #[test]
    fn rejects_zero_width() {
        assert!(solve_placement(&[state("a", 4, 1.0)], &model(), 0).is_none());
    }

    #[test]
    fn single_small_state_goes_to_cls() {
        let p = solve_placement(&[state("a", 12, 1.0)], &model(), 1).unwrap();
        assert_eq!(p.level_of("a"), Some(MemLevel::Cls));
        assert_eq!(p.total_cost, 30.0);
        assert!(p.optimal);
    }

    #[test]
    fn hottest_states_win_the_fast_memory() {
        // Width 1 -> 64 B per level. Two 40-byte states cannot share CLS;
        // the hotter one must get it.
        let states = [state("cold", 40, 1.0), state("hot", 40, 10.0)];
        let p = solve_placement(&states, &model(), 1).unwrap();
        assert_eq!(p.level_of("hot"), Some(MemLevel::Cls));
        assert_eq!(p.level_of("cold"), Some(MemLevel::Ctm));
        assert_eq!(p.total_cost, 10.0 * 30.0 + 80.0);
    }

    #[test]
    fn wide_tables_shrink_budgets() {
        // Width 4 -> 16 B per level: a 40-byte state only fits DRAM.
        let p = solve_placement(&[state("big", 40, 1.0)], &model(), 4).unwrap();
        assert_eq!(p.level_of("big"), Some(MemLevel::Dram));
    }

    #[test]
    fn oversized_states_fall_to_dram() {
        // A histogram of 400 bytes exceeds every bus-constrained level.
        let p = solve_placement(&[state("hist", 400, 1.0)], &model(), 1).unwrap();
        assert_eq!(p.level_of("hist"), Some(MemLevel::Dram));
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let states = [
            state("a", 20, 3.0),
            state("b", 30, 1.0),
            state("c", 16, 7.0),
            state("d", 50, 2.0),
        ];
        let m = model();
        let p = solve_placement(&states, &m, 1).unwrap();
        assert!(p.optimal);

        // Brute force over all 5^4 assignments.
        let budgets: Vec<f64> = m
            .memories
            .iter()
            .map(|mm| {
                if mm.level == MemLevel::Dram {
                    f64::INFINITY
                } else {
                    mm.bus_bytes as f64
                }
            })
            .collect();
        let lat: Vec<f64> = m
            .memories
            .iter()
            .map(|mm| mm.latency_cycles as f64)
            .collect();
        let mut best = f64::INFINITY;
        let n_mem = m.memories.len();
        for code in 0..n_mem.pow(4) {
            let mut c = code;
            let mut used = vec![0f64; n_mem];
            let mut cost = 0.0;
            let mut ok = true;
            for s in &states {
                let mi = c % n_mem;
                c /= n_mem;
                used[mi] += s.bytes as f64;
                if used[mi] > budgets[mi] {
                    ok = false;
                    break;
                }
                cost += s.accesses_per_pkt * lat[mi];
            }
            if ok && cost < best {
                best = cost;
            }
        }
        assert!(
            (p.total_cost - best).abs() < 1e-9,
            "{} vs {best}",
            p.total_cost
        );
    }

    #[test]
    fn bytes_per_level_partitions_states() {
        let states = [state("a", 20, 1.0), state("b", 400, 1.0)];
        let p = solve_placement(&states, &model(), 1).unwrap();
        let per: usize = p.bytes_per_level(&states).iter().map(|&(_, b)| b).sum();
        assert_eq!(per, 420);
    }

    #[test]
    fn kitsune_scale_instance_solves_optimally() {
        // ~20 states like a Kitsune deployment: damped triples and quads.
        let mut states = Vec::new();
        for i in 0..10 {
            states.push(state(&format!("d{i}"), 16, 1.0));
        }
        for i in 0..10 {
            states.push(state(&format!("q{i}"), 40, 1.0));
        }
        let p = solve_placement(&states, &model(), 1).unwrap();
        assert!(p.optimal, "expected optimal solve");
        // Fast memories should be saturated: CLS holds 64 bytes' worth.
        let per = p.bytes_per_level(&states);
        let cls = per.iter().find(|(l, _)| *l == MemLevel::Cls).unwrap().1;
        assert!(cls > 0 && cls <= 64, "CLS bytes {cls}");
    }
}
