//! Errors of the NIC-side executors.

/// Why a NIC engine or multi-core executor failed.
///
/// Engine-instantiation failures used to collapse to `None`, which told the
/// caller nothing; every failure now carries a diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NicError {
    /// The [`crate::FeNic`] engine could not be instantiated for the
    /// compiled policy (degenerate table geometry).
    Engine(String),
    /// A worker thread died mid-run (it panicked while processing events).
    WorkerLost {
        /// Shard index of the lost worker.
        worker: usize,
    },
}

impl std::fmt::Display for NicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NicError::Engine(msg) => write!(f, "NIC engine instantiation failed: {msg}"),
            NicError::WorkerLost { worker } => {
                write!(f, "NIC worker {worker} terminated unexpectedly")
            }
        }
    }
}

impl std::error::Error for NicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_diagnostics() {
        let e = NicError::Engine("zero-width group table".into());
        assert!(e.to_string().contains("zero-width group table"));
        assert!(NicError::WorkerLost { worker: 3 }.to_string().contains('3'));
    }
}
