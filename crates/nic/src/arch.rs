//! The Netronome NFP-4000 architecture model (Fig. 8 of the paper).

/// One level of the NFP's hierarchical memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Cluster Local Scratch: tiny, per-island, fastest.
    Cls,
    /// Cluster Target Memory: per-island.
    Ctm,
    /// Internal memory: shared by all islands.
    Imem,
    /// External memory cache: shared, backed by DRAM.
    Emem,
    /// External DRAM: effectively unbounded, slowest.
    Dram,
}

impl MemLevel {
    /// All levels, fastest first.
    pub fn all() -> [MemLevel; 5] {
        [
            MemLevel::Cls,
            MemLevel::Ctm,
            MemLevel::Imem,
            MemLevel::Emem,
            MemLevel::Dram,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MemLevel::Cls => "CLS",
            MemLevel::Ctm => "CTM",
            MemLevel::Imem => "IMEM",
            MemLevel::Emem => "EMEM",
            MemLevel::Dram => "DRAM",
        }
    }
}

/// Properties of one memory level as seen by a processing core.
#[derive(Clone, Copy, Debug)]
pub struct MemSpec {
    /// Which level this is.
    pub level: MemLevel,
    /// Access latency in core cycles (`l_m` in Eq. 3).
    pub latency_cycles: u64,
    /// Capacity in bytes (per island for CLS/CTM; total otherwise).
    pub capacity_bytes: usize,
    /// Maximum data-bus width per access in bytes (`w_m` in Eq. 5).
    pub bus_bytes: usize,
}

/// The SoC model: cores, threads, clock, and the memory hierarchy.
#[derive(Clone, Debug)]
pub struct NfpModel {
    /// Processing islands on one NIC.
    pub islands: usize,
    /// Flow-processing cores per island.
    pub cores_per_island: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Core clock in Hz.
    pub freq_hz: f64,
    /// Cycles for a hardware context switch (§6.2: 2 cycles).
    pub ctx_switch_cycles: u64,
    /// Cycles for the compiler's soft division (§6.2: ~1500).
    pub soft_div_cycles: u64,
    /// The memory hierarchy, fastest first.
    pub memories: Vec<MemSpec>,
}

impl NfpModel {
    /// The NFP-4000 as configured in the paper's testbed (one NIC:
    /// 60 flow-processing cores; two NICs give the 120-core Fig. 16 sweep).
    pub fn nfp4000() -> Self {
        NfpModel {
            islands: 5,
            cores_per_island: 12,
            threads_per_core: 8,
            freq_hz: 800e6,
            ctx_switch_cycles: 2,
            soft_div_cycles: 1500,
            memories: vec![
                MemSpec {
                    level: MemLevel::Cls,
                    latency_cycles: 30,
                    capacity_bytes: 64 * 1024,
                    bus_bytes: 64,
                },
                MemSpec {
                    level: MemLevel::Ctm,
                    latency_cycles: 80,
                    capacity_bytes: 256 * 1024,
                    bus_bytes: 64,
                },
                MemSpec {
                    level: MemLevel::Imem,
                    latency_cycles: 200,
                    capacity_bytes: 4 * 1024 * 1024,
                    bus_bytes: 64,
                },
                MemSpec {
                    level: MemLevel::Emem,
                    latency_cycles: 300,
                    capacity_bytes: 3 * 1024 * 1024,
                    bus_bytes: 64,
                },
                MemSpec {
                    level: MemLevel::Dram,
                    latency_cycles: 500,
                    capacity_bytes: 2 * 1024 * 1024 * 1024,
                    bus_bytes: 64,
                },
            ],
        }
    }

    /// Total cores on one NIC.
    pub fn total_cores(&self) -> usize {
        self.islands * self.cores_per_island
    }

    /// Looks up a memory level's spec.
    pub fn memory(&self, level: MemLevel) -> Option<&MemSpec> {
        self.memories.iter().find(|m| m.level == level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfp4000_matches_paper_parameters() {
        let m = NfpModel::nfp4000();
        assert_eq!(m.total_cores(), 60);
        assert_eq!(m.threads_per_core, 8);
        assert_eq!(m.freq_hz, 800e6);
        assert_eq!(m.ctx_switch_cycles, 2);
        assert_eq!(m.soft_div_cycles, 1500);
    }

    #[test]
    fn memory_hierarchy_latency_increases() {
        let m = NfpModel::nfp4000();
        let lats: Vec<u64> = m.memories.iter().map(|s| s.latency_cycles).collect();
        assert!(lats.windows(2).all(|w| w[0] < w[1]), "{lats:?}");
    }

    #[test]
    fn memory_capacities_span_the_hierarchy() {
        // CLS is the smallest, DRAM the largest; EMEM is a 3 MB cache in
        // front of DRAM, so capacity is not strictly monotone in the middle.
        let m = NfpModel::nfp4000();
        let cls = m.memory(MemLevel::Cls).unwrap().capacity_bytes;
        let dram = m.memory(MemLevel::Dram).unwrap().capacity_bytes;
        assert!(m.memories.iter().all(|s| s.capacity_bytes >= cls));
        assert!(m.memories.iter().all(|s| s.capacity_bytes <= dram));
    }

    #[test]
    fn lookup_by_level() {
        let m = NfpModel::nfp4000();
        assert_eq!(m.memory(MemLevel::Cls).unwrap().latency_cycles, 30);
        assert_eq!(m.memory(MemLevel::Dram).unwrap().latency_cycles, 500);
        assert_eq!(MemLevel::all().len(), 5);
        assert_eq!(MemLevel::Imem.name(), "IMEM");
    }
}
