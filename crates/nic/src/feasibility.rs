//! NIC-side feasibility diagnostics (`SF04xx`).
//!
//! Two models feed this pass. The per-group placement ILP
//! ([`placement`](crate::placement)) decides whether a single group's state
//! block can be served within the 64-byte bus at all and at what latency
//! cost; the capacity model ([`resources`](crate::resources)) projects the
//! aggregate footprint of the expected concurrent group population across
//! the CLS/CTM/IMEM/EMEM hierarchy. The findings: errors when no placement
//! exists or the projected demand outruns even DRAM, a warning when the
//! solver had to settle for the greedy fallback or on-chip memory is above
//! the headroom threshold, and a note when states spill to DRAM (expected
//! for big-array policies, but worth surfacing — DRAM access costs ~500
//! cycles against CLS's 30).

use superfe_policy::analyze::{codes, Diagnostic};
use superfe_policy::NicProgram;

use crate::arch::{MemLevel, NfpModel};
use crate::placement::solve_placement;
use crate::resources::model;

/// Checks `program` against the NFP memory system.
///
/// `table_width` is the group-table width (entries per 64-byte bucket),
/// `groups_per_level` the expected concurrent group population at each
/// granularity level, and `headroom_pct` the on-chip warning threshold.
pub fn check_nic(
    program: &NicProgram,
    nfp: &NfpModel,
    table_width: usize,
    groups_per_level: &[usize],
    headroom_pct: f64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Per-group bus feasibility (Eq. 3-5).
    match solve_placement(&program.states(), nfp, table_width) {
        None => {
            out.push(
                Diagnostic::error(
                    codes::NIC_PLACEMENT_INFEASIBLE,
                    format!(
                        "no state placement exists for a group table of width {table_width} \
                         on this memory model"
                    ),
                )
                .with_suggestion("use a non-zero table width and a model with memories"),
            );
            return out;
        }
        Some(p) => {
            if !p.optimal {
                out.push(Diagnostic::warning(
                    codes::NIC_PLACEMENT_FALLBACK,
                    format!(
                        "placement solver exceeded its node budget and fell back to the \
                         greedy heuristic ({:.0} cycles/packet, optimality unproven)",
                        p.total_cost
                    ),
                ));
            }
        }
    }

    // Aggregate capacity at the projected concurrent-group scale.
    out.extend(check_capacity(
        &model(program, groups_per_level, nfp),
        nfp,
        headroom_pct,
    ));
    out
}

/// Checks already-modeled aggregate usage against the NFP memory system —
/// the capacity half of [`check_nic`], shared with the multi-tenant
/// admission controller, which models several tenants jointly
/// ([`crate::resources::model_many`]) before checking the shared NIC.
pub fn check_capacity(
    usage: &crate::resources::NicResources,
    nfp: &NfpModel,
    headroom_pct: f64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let dram_cap = nfp
        .memory(MemLevel::Dram)
        .map(|m| m.capacity_bytes)
        .unwrap_or(0);
    if usage.dram_bytes > dram_cap {
        let pct = 100.0 * usage.dram_bytes as f64 / dram_cap.max(1) as f64;
        out.push(
            Diagnostic::error(
                codes::NIC_CAPACITY_EXCEEDED,
                format!(
                    "projected state demand overflows even DRAM: {} bytes spill against a \
                     {} byte DRAM ({pct:.1}% utilization)",
                    usage.dram_bytes, dram_cap
                ),
            )
            .with_suggestion(
                "reduce per-group state (smaller arrays/histograms) or the group population",
            ),
        );
    } else if usage.dram_bytes > 0 {
        out.push(Diagnostic::note(
            codes::NIC_DRAM_SPILL,
            format!(
                "{} bytes of per-group state spill to DRAM (~500-cycle access); on-chip \
                 memory holds {} of {} bytes ({:.1}% utilization)",
                usage.dram_bytes,
                usage.used_bytes,
                usage.capacity_bytes,
                usage.utilization_pct()
            ),
        ));
    }

    let pct = usage.utilization_pct();
    if usage.dram_bytes <= dram_cap && pct >= headroom_pct {
        out.push(Diagnostic::warning(
            codes::NIC_HEADROOM,
            format!(
                "NIC on-chip memory at {pct:.1}% utilization ({} of {} bytes), above the \
                 {headroom_pct:.0}% headroom threshold",
                usage.used_bytes, usage.capacity_bytes
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_policy::compile;
    use superfe_policy::dsl;

    fn program(src: &str) -> NicProgram {
        compile(&dsl::parse(src).unwrap()).unwrap().nic
    }

    fn mean_var() -> NicProgram {
        program("pktstream\n.groupby(host)\n.reduce(size, [f_mean, f_var])\n.collect(host)")
    }

    fn big_array() -> NicProgram {
        program(
            "pktstream\n.groupby(flow)\n.map(one, _, f_one)\n.map(d, one, f_direction)\n\
             .reduce(d, [f_array{5000}])\n.collect(flow)",
        )
    }

    #[test]
    fn modest_policy_is_clean() {
        let ds = check_nic(&mean_var(), &NfpModel::nfp4000(), 1, &[10_000], 90.0);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn sf0401_zero_width_table() {
        let ds = check_nic(&mean_var(), &NfpModel::nfp4000(), 0, &[10_000], 90.0);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::NIC_PLACEMENT_INFEASIBLE);
    }

    #[test]
    fn sf0403_big_arrays_spill_to_dram_as_note() {
        let ds = check_nic(&big_array(), &NfpModel::nfp4000(), 1, &[10_000], 90.0);
        let d = ds.iter().find(|d| d.code == codes::NIC_DRAM_SPILL).unwrap();
        assert!(d.message.contains("DRAM"), "{}", d.message);
        assert!(
            !ds.iter().any(|d| d.code == codes::NIC_CAPACITY_EXCEEDED),
            "spill within DRAM capacity is a note, not an error"
        );
    }

    #[test]
    fn sf0404_demand_beyond_dram() {
        // 20 KB per group × 200M groups ≈ 4 TB >> the 2 GB DRAM.
        let ds = check_nic(&big_array(), &NfpModel::nfp4000(), 1, &[200_000_000], 90.0);
        let d = ds
            .iter()
            .find(|d| d.code == codes::NIC_CAPACITY_EXCEEDED)
            .expect("SF0404 emitted");
        assert!(d.message.contains("% utilization"));
    }

    #[test]
    fn sf0405_headroom_scales_with_population() {
        // A population that fills on-chip memory past 50% but below
        // capacity (larger ones spill wholesale to DRAM instead): the
        // headroom warning fires at a 50% threshold and not at 99.9%.
        let p = mean_var();
        let nfp = NfpModel::nfp4000();
        let groups = 250_000;
        let usage = model(&p, &[groups], &nfp);
        assert!(
            usage.utilization_pct() > 50.0,
            "{}",
            usage.utilization_pct()
        );
        let ds = check_nic(&p, &nfp, 1, &[groups], 50.0);
        assert!(ds.iter().any(|d| d.code == codes::NIC_HEADROOM), "{ds:?}");
        let quiet = check_nic(&p, &nfp, 1, &[groups], 99.9);
        assert!(!quiet.iter().any(|d| d.code == codes::NIC_HEADROOM));
    }
}
