//! Real multi-threaded feature computation with per-IP sharding.
//!
//! On the NFP, the ingress NBI distributes packets to cores on a per-IP
//! basis so cores never contend on the same group state (§6.2). The software
//! analogue shards the switch's event stream by CG-key hash across worker
//! threads, each owning a private [`FeNic`]; results are merged afterwards.
//! Because groups never span shards, this is deterministic and lock-free.

use std::time::{Duration, Instant};

use superfe_policy::CompiledPolicy;
use superfe_switch::SwitchEvent;

use crate::engine::{FeNic, FeatureVector, NicStats};

/// What one worker shard produces: group vectors, packet vectors, counters.
type ShardOutput = (Vec<FeatureVector>, Vec<FeatureVector>, NicStats);

/// Output of a parallel run.
#[derive(Debug)]
pub struct ParallelOutput {
    /// Per-group feature vectors from every shard.
    pub group_vectors: Vec<FeatureVector>,
    /// Per-packet feature vectors from every shard.
    pub packet_vectors: Vec<FeatureVector>,
    /// Aggregated engine counters.
    pub stats: NicStats,
    /// Wall-clock compute time (excludes sharding).
    pub elapsed: Duration,
}

/// A parallel FE-NIC executor.
pub struct ParallelNic {
    workers: usize,
}

impl ParallelNic {
    /// Creates an executor with `workers` shards (≥ 1).
    pub fn new(workers: usize) -> Self {
        ParallelNic {
            workers: workers.max(1),
        }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shards `events` by CG-key hash and processes each shard on its own
    /// thread. FG updates are broadcast to every shard (the switch control
    /// channel does the same).
    ///
    /// Returns `None` if the engine cannot be instantiated for `compiled`.
    pub fn run(
        &self,
        compiled: &CompiledPolicy,
        events: &[SwitchEvent],
        fg_table_size: usize,
    ) -> Option<ParallelOutput> {
        // Shard: each worker receives FG updates plus its own MGPVs.
        let mut shards: Vec<Vec<&SwitchEvent>> = vec![Vec::new(); self.workers];
        for e in events {
            match e {
                SwitchEvent::FgUpdate(_) => {
                    for s in &mut shards {
                        s.push(e);
                    }
                }
                SwitchEvent::Mgpv(m) => {
                    let w = (m.hash as usize) % self.workers;
                    shards[w].push(e);
                }
            }
        }

        let start = Instant::now();
        let results: Vec<Option<ShardOutput>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        let mut nic = FeNic::new(compiled, fg_table_size)?;
                        for e in shard {
                            nic.handle(e);
                        }
                        let groups = nic.finish();
                        let pkts = nic.take_packet_vectors();
                        Some((groups, pkts, *nic.stats()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let elapsed = start.elapsed();

        let mut group_vectors = Vec::new();
        let mut packet_vectors = Vec::new();
        let mut stats = NicStats::default();
        for r in results {
            let (g, p, s) = r?;
            group_vectors.extend(g);
            packet_vectors.extend(p);
            stats.msgs += s.msgs;
            stats.records += s.records;
            stats.fg_updates += s.fg_updates;
            stats.unresolved_fg += s.unresolved_fg;
            stats.vectors += s.vectors;
            stats.hashes_reused += s.hashes_reused;
            stats.hashes_computed += s.hashes_computed;
        }
        Some(ParallelOutput {
            group_vectors,
            packet_vectors,
            stats,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::PacketRecord;
    use superfe_policy::compile;
    use superfe_policy::dsl::parse;
    use superfe_switch::FeSwitch;

    fn events_for(n: u32) -> (CompiledPolicy, Vec<SwitchEvent>) {
        let c = compile(
            &parse("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)").unwrap(),
        )
        .unwrap();
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut events = Vec::new();
        for i in 0..n {
            let p = PacketRecord::tcp(u64::from(i) * 100, 100, i % 31 + 1, 1000, 2, 80);
            events.extend(sw.process(&p));
        }
        events.extend(sw.flush());
        (c, events)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (c, events) = events_for(2000);
        let seq = ParallelNic::new(1).run(&c, &events, 16_384).unwrap();
        let par = ParallelNic::new(8).run(&c, &events, 16_384).unwrap();
        assert_eq!(seq.stats.records, 2000);
        assert_eq!(par.stats.records, 2000);
        // Same group results regardless of sharding.
        let norm = |mut v: Vec<FeatureVector>| {
            v.sort_by(|a, b| format!("{:?}", a.key).cmp(&format!("{:?}", b.key)));
            v
        };
        assert_eq!(norm(seq.group_vectors), norm(par.group_vectors));
    }

    #[test]
    fn worker_count_clamped() {
        assert_eq!(ParallelNic::new(0).workers(), 1);
    }

    #[test]
    fn shards_partition_messages() {
        let (c, events) = events_for(500);
        let out = ParallelNic::new(4).run(&c, &events, 16_384).unwrap();
        let total_msgs = events
            .iter()
            .filter(|e| matches!(e, SwitchEvent::Mgpv(_)))
            .count() as u64;
        assert_eq!(out.stats.msgs, total_msgs);
    }
}
