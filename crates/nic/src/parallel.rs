//! Batch façade over the streaming multi-core executor.
//!
//! [`ParallelNic`] keeps the original collect-then-fan-out API surface —
//! hand it a complete event slice, get merged results back — but the
//! execution now rides [`crate::stream::StreamingNic`]: events are routed
//! into CG-key shards over bounded channels while workers compute
//! concurrently, instead of materializing per-shard event copies up front.
//! Because groups never span shards, this is deterministic and lock-free.

use std::time::{Duration, Instant};

use superfe_policy::CompiledPolicy;
use superfe_switch::SwitchEvent;

use crate::engine::{FeatureVector, NicStats};
use crate::error::NicError;
use crate::stream::StreamingNic;

/// Output of a parallel run.
#[derive(Debug)]
pub struct ParallelOutput {
    /// Per-group feature vectors from every shard.
    pub group_vectors: Vec<FeatureVector>,
    /// Per-packet feature vectors from every shard.
    pub packet_vectors: Vec<FeatureVector>,
    /// Aggregated engine counters.
    pub stats: NicStats,
    /// Wall-clock time from first push to merged output.
    pub elapsed: Duration,
}

/// A parallel FE-NIC executor.
pub struct ParallelNic {
    workers: usize,
}

impl ParallelNic {
    /// Creates an executor with `workers` shards (≥ 1).
    pub fn new(workers: usize) -> Self {
        ParallelNic {
            workers: workers.max(1),
        }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Streams `events` through a [`StreamingNic`] with this executor's
    /// worker count and returns the merged output.
    ///
    /// FG updates are broadcast to every shard (the switch control channel
    /// does the same); MGPVs go to the shard owning their CG-key hash.
    ///
    /// # Errors
    ///
    /// [`NicError::Engine`] when the engine cannot be instantiated for
    /// `compiled`, [`NicError::WorkerLost`] when a shard thread dies
    /// mid-run.
    pub fn run(
        &self,
        compiled: &CompiledPolicy,
        events: &[SwitchEvent],
        fg_table_size: usize,
    ) -> Result<ParallelOutput, NicError> {
        let mut stream = StreamingNic::new(compiled, fg_table_size, self.workers)?;
        let start = Instant::now();
        for e in events {
            stream.push(e.clone())?;
        }
        let out = stream.finish()?;
        let elapsed = start.elapsed();
        Ok(ParallelOutput {
            group_vectors: out.group_vectors,
            packet_vectors: out.packet_vectors,
            stats: out.stats,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::PacketRecord;
    use superfe_policy::compile;
    use superfe_policy::dsl::parse;
    use superfe_switch::FeSwitch;

    fn events_for(n: u32) -> (CompiledPolicy, Vec<SwitchEvent>) {
        let c = compile(
            &parse("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)").unwrap(),
        )
        .unwrap();
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut events = Vec::new();
        for i in 0..n {
            let p = PacketRecord::tcp(u64::from(i) * 100, 100, i % 31 + 1, 1000, 2, 80);
            events.extend(sw.process(&p));
        }
        events.extend(sw.flush());
        (c, events)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (c, events) = events_for(2000);
        let seq = ParallelNic::new(1).run(&c, &events, 16_384).unwrap();
        let par = ParallelNic::new(8).run(&c, &events, 16_384).unwrap();
        assert_eq!(seq.stats.records, 2000);
        assert_eq!(par.stats.records, 2000);
        // Same group results regardless of sharding.
        let norm = |mut v: Vec<FeatureVector>| {
            v.sort_by(|a, b| format!("{:?}", a.key).cmp(&format!("{:?}", b.key)));
            v
        };
        assert_eq!(norm(seq.group_vectors), norm(par.group_vectors));
    }

    #[test]
    fn worker_count_clamped() {
        assert_eq!(ParallelNic::new(0).workers(), 1);
    }

    #[test]
    fn shards_partition_messages() {
        let (c, events) = events_for(500);
        let out = ParallelNic::new(4).run(&c, &events, 16_384).unwrap();
        let total_msgs = events
            .iter()
            .filter(|e| matches!(e, SwitchEvent::Mgpv(_)))
            .count() as u64;
        assert_eq!(out.stats.msgs, total_msgs);
    }
}
