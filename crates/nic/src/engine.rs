//! The FE-NIC execution engine.
//!
//! Consumes the switch's ordered event stream, mirrors the FG key table,
//! recovers every granularity level of each batched record (the MGPV
//! recovery step of §5.1), drives the compiled `map`/`reduce`/`synthesize`
//! program per group, and emits feature vectors per the policy's `collect`
//! units.

use superfe_net::snap::{StateReader, StateWriter};
use superfe_net::{Granularity, GroupKey};
use superfe_policy::ast::CollectUnit;
use superfe_policy::exec::{GroupExec, RecordView};
use superfe_policy::{CompiledPolicy, LevelProgram};
use superfe_streaming::FeatureValues;
use superfe_switch::{MgpvMessage, SwitchEvent};

use crate::table::{GroupTable, TableBudget, TableStats};

/// One emitted feature vector.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureVector {
    /// The key of the group (or finest-granularity key for per-packet
    /// vectors).
    pub key: GroupKey,
    /// The features, in policy order. Stored inline for short vectors (the
    /// common case) — no per-vector heap allocation on the `collect(pkt)`
    /// path.
    pub values: FeatureValues,
}

impl FeatureVector {
    /// The feature values as a plain slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Serializes the vector (key + feature block).
    pub fn save_state(&self, w: &mut StateWriter) {
        self.key.save_state(w);
        w.put_u16(self.values.len() as u16);
        for v in self.values.iter() {
            w.put_f64(*v);
        }
    }

    /// Reads a vector written by [`FeatureVector::save_state`].
    pub fn load_state(r: &mut StateReader<'_>) -> Option<Self> {
        let key = GroupKey::load_state(r)?;
        let n = r.get_u16()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(r.get_f64()?);
        }
        Some(FeatureVector {
            key,
            values: values.as_slice().into(),
        })
    }
}

/// A group finalized early because the DRAM budget evicted it — the typed
/// record the pipeline surfaces instead of silently losing state.
#[derive(Clone, Debug, PartialEq)]
pub struct EvictedVector {
    /// The level the group lived at.
    pub level: Granularity,
    /// The group's features at eviction time.
    pub vector: FeatureVector,
}

/// Engine counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NicStats {
    /// MGPV messages consumed.
    pub msgs: u64,
    /// Metadata records consumed.
    pub records: u64,
    /// FG table updates applied.
    pub fg_updates: u64,
    /// Records whose FG index could not be resolved (should stay 0).
    pub unresolved_fg: u64,
    /// Feature vectors emitted.
    pub vectors: u64,
    /// Group-key hashes taken from the switch (hash-reuse fast path).
    pub hashes_reused: u64,
    /// Group-key hashes computed locally.
    pub hashes_computed: u64,
    /// Groups finalized early by DRAM budget eviction.
    pub evicted_groups: u64,
    /// Record-level updates dropped because a new group was refused at the
    /// DRAM cap ([`crate::table::EvictionPolicy::DropNew`]).
    pub overflow_drops: u64,
}

impl NicStats {
    /// Adds `other`'s counters into `self` (merging per-shard engines).
    pub fn absorb(&mut self, other: &NicStats) {
        self.msgs += other.msgs;
        self.records += other.records;
        self.fg_updates += other.fg_updates;
        self.unresolved_fg += other.unresolved_fg;
        self.vectors += other.vectors;
        self.hashes_reused += other.hashes_reused;
        self.hashes_computed += other.hashes_computed;
        self.evicted_groups += other.evicted_groups;
        self.overflow_drops += other.overflow_drops;
    }

    /// Serializes the counters.
    pub fn save_state(&self, w: &mut StateWriter) {
        for c in [
            self.msgs,
            self.records,
            self.fg_updates,
            self.unresolved_fg,
            self.vectors,
            self.hashes_reused,
            self.hashes_computed,
            self.evicted_groups,
            self.overflow_drops,
        ] {
            w.put_u64(c);
        }
    }

    /// Reads counters written by [`NicStats::save_state`].
    pub fn load_state(r: &mut StateReader<'_>) -> Option<Self> {
        Some(NicStats {
            msgs: r.get_u64()?,
            records: r.get_u64()?,
            fg_updates: r.get_u64()?,
            unresolved_fg: r.get_u64()?,
            vectors: r.get_u64()?,
            hashes_reused: r.get_u64()?,
            hashes_computed: r.get_u64()?,
            evicted_groups: r.get_u64()?,
            overflow_drops: r.get_u64()?,
        })
    }
}

#[derive(Clone)]
struct LevelState {
    program: LevelProgram,
    table: GroupTable<GroupExec>,
}

/// The SmartNIC feature-computation engine for one deployed policy.
///
/// `Clone` snapshots the complete engine state (group tables, FG mirror,
/// accumulated vectors, counters) — the mechanism behind non-destructive
/// member finalization on shared (fused) engines.
#[derive(Clone)]
pub struct FeNic {
    cg: Granularity,
    levels: Vec<LevelState>,
    fg_mirror: Vec<Option<GroupKey>>,
    per_pkt: bool,
    pkt_vectors: Vec<FeatureVector>,
    /// Reused per-record feature scratch for the `collect(pkt)` path.
    pkt_scratch: Vec<f64>,
    /// Groups evicted by the DRAM budget, finalized and awaiting drain.
    evicted: Vec<EvictedVector>,
    /// Reused scratch receiving raw evictions from the group tables.
    evict_scratch: Vec<(GroupKey, GroupExec)>,
    stats: NicStats,
}

/// Group-table geometry: buckets per level.
const TABLE_BUCKETS: usize = 16_384;
/// Group-table width (entries per bucket).
const TABLE_WIDTH: usize = 4;

impl FeNic {
    /// Instantiates the engine for a compiled policy with the default
    /// (effectively unbounded for test workloads) DRAM budget.
    ///
    /// `fg_table_size` must match the switch's FG table configuration.
    pub fn new(compiled: &CompiledPolicy, fg_table_size: usize) -> Option<Self> {
        Self::with_budget(compiled, fg_table_size, TableBudget::default())
    }

    /// Instantiates the engine with an explicit per-level DRAM budget.
    pub fn with_budget(
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        budget: TableBudget,
    ) -> Option<Self> {
        let levels = compiled
            .nic
            .levels
            .iter()
            .map(|lp| {
                GroupTable::with_budget(TABLE_BUCKETS, TABLE_WIDTH, budget).map(|table| {
                    LevelState {
                        program: lp.clone(),
                        table,
                    }
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let per_pkt = compiled
            .nic
            .levels
            .iter()
            .any(|l| l.collect == Some(CollectUnit::Pkt));
        // Single-granularity policies run without an FG table on the switch;
        // mirror that so fg_idx = 0 placeholders are never "unresolved".
        let fg_size = if compiled.switch.needs_fg_table() {
            fg_table_size
        } else {
            0
        };
        Some(FeNic {
            cg: compiled.switch.cg(),
            levels,
            fg_mirror: vec![None; fg_size],
            per_pkt,
            pkt_vectors: Vec::new(),
            pkt_scratch: Vec::new(),
            evicted: Vec::new(),
            evict_scratch: Vec::new(),
            stats: NicStats::default(),
        })
    }

    /// Engine counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Per-level group-table statistics.
    pub fn table_stats(&self) -> Vec<(Granularity, TableStats)> {
        self.levels
            .iter()
            .map(|l| (l.program.granularity, l.table.stats()))
            .collect()
    }

    /// Number of live groups per level.
    pub fn groups_per_level(&self) -> Vec<(Granularity, usize)> {
        self.levels
            .iter()
            .map(|l| (l.program.granularity, l.table.len()))
            .collect()
    }

    /// Applies one switch event.
    pub fn handle(&mut self, event: &SwitchEvent) {
        match event {
            SwitchEvent::FgUpdate(u) => {
                let idx = u.idx as usize;
                if idx < self.fg_mirror.len() {
                    self.fg_mirror[idx] = Some(u.key);
                    self.stats.fg_updates += 1;
                }
            }
            SwitchEvent::Mgpv(msg) => self.consume_mgpv(msg),
        }
    }

    /// Applies a batch of events in order.
    pub fn handle_all<'a>(&mut self, events: impl IntoIterator<Item = &'a SwitchEvent>) {
        for e in events {
            self.handle(e);
        }
    }

    fn consume_mgpv(&mut self, msg: &MgpvMessage) {
        self.stats.msgs += 1;
        for rec in &msg.records {
            self.stats.records += 1;
            let view = RecordView {
                size: f64::from(rec.size),
                ts_ns: rec.ts_ns(),
                direction: rec.direction_factor(),
                tcp_flags: rec.dir_flags & 0x7F,
            };

            // Resolve the finest-granularity key once per record.
            let fg_key: Option<GroupKey> = if self.fg_mirror.is_empty() {
                None
            } else {
                let idx = rec.fg_idx as usize;
                match self.fg_mirror.get(idx).copied().flatten() {
                    Some(k) => Some(k),
                    None => {
                        self.stats.unresolved_fg += 1;
                        None
                    }
                }
            };

            let mut emit_pkt_vector = self.per_pkt;
            // Reuse one scratch buffer across records; the emitted vector
            // copies out of it (inline, for short feature blocks).
            let mut pkt_values = std::mem::take(&mut self.pkt_scratch);
            pkt_values.clear();
            let mut pkt_key: Option<GroupKey> = None;

            for level in &mut self.levels {
                let g = level.program.granularity;
                // MGPV recovery: the CG level uses the message key (and the
                // switch-computed hash); finer levels project the FG key.
                let (key, hash) = if g == self.cg {
                    self.stats.hashes_reused += 1;
                    (msg.cg_key, msg.hash)
                } else {
                    match fg_key.and_then(|k| k.project(g)) {
                        Some(k) => {
                            self.stats.hashes_computed += 1;
                            let h = k.hash32();
                            (k, h)
                        }
                        None => {
                            // Cannot place this record at this level.
                            emit_pkt_vector = false;
                            continue;
                        }
                    }
                };
                let program = &level.program;
                match level.table.get_or_insert_with(
                    key,
                    hash,
                    || GroupExec::new(program),
                    &mut self.evict_scratch,
                ) {
                    Some(exec) => {
                        exec.update(&view, hash);
                        if self.per_pkt {
                            exec.finalize_into(&mut pkt_values);
                            pkt_key.get_or_insert(key);
                        }
                    }
                    None => {
                        // Budget refused the new group: the update is
                        // dropped (counted) and no per-packet vector is
                        // emitted for this record.
                        self.stats.overflow_drops += 1;
                        emit_pkt_vector = false;
                    }
                }
                for (ekey, eexec) in self.evict_scratch.drain(..) {
                    self.stats.evicted_groups += 1;
                    let mut vals = Vec::new();
                    eexec.finalize_into(&mut vals);
                    self.evicted.push(EvictedVector {
                        level: g,
                        vector: FeatureVector {
                            key: ekey,
                            values: vals.as_slice().into(),
                        },
                    });
                }
            }

            if emit_pkt_vector {
                if let Some(key) = fg_key.or(pkt_key) {
                    self.stats.vectors += 1;
                    self.pkt_vectors.push(FeatureVector {
                        key,
                        values: pkt_values.as_slice().into(),
                    });
                }
            }
            self.pkt_scratch = pkt_values;
        }
    }

    /// Drains the per-packet feature vectors accumulated so far.
    pub fn take_packet_vectors(&mut self) -> Vec<FeatureVector> {
        std::mem::take(&mut self.pkt_vectors)
    }

    /// Drains the budget-evicted group vectors accumulated so far.
    pub fn take_evicted(&mut self) -> Vec<EvictedVector> {
        std::mem::take(&mut self.evicted)
    }

    /// Emits per-group feature vectors for every level that collects per
    /// group, in policy order.
    pub fn finish(&mut self) -> Vec<FeatureVector> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for level in &self.levels {
            if let Some(CollectUnit::Group(_)) = level.program.collect {
                for (key, exec) in level.table.iter() {
                    scratch.clear();
                    exec.finalize_into(&mut scratch);
                    out.push(FeatureVector {
                        key: *key,
                        values: scratch.as_slice().into(),
                    });
                }
            }
        }
        self.stats.vectors += out.len() as u64;
        out
    }

    /// Serializes the engine's dynamic state (group tables, FG mirror,
    /// pending vectors, counters). Structure — the compiled policy and
    /// table geometry — is *not* stored; [`FeNic::load_state`] validates it
    /// against a freshly constructed engine instead.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.cg.save_state(w);
        w.put_u16(self.levels.len() as u16);
        for level in &self.levels {
            level.program.granularity.save_state(w);
            w.put_section(|w| level.table.save_state(w, GroupExec::save_state));
        }
        w.put_u32(self.fg_mirror.len() as u32);
        for slot in &self.fg_mirror {
            match slot {
                Some(k) => {
                    w.put_bool(true);
                    k.save_state(w);
                }
                None => w.put_bool(false),
            }
        }
        w.put_u32(self.pkt_vectors.len() as u32);
        for v in &self.pkt_vectors {
            v.save_state(w);
        }
        w.put_u32(self.evicted.len() as u32);
        for e in &self.evicted {
            e.level.save_state(w);
            e.vector.save_state(w);
        }
        self.stats.save_state(w);
    }

    /// Restores dynamic state saved by [`FeNic::save_state`] into this
    /// freshly constructed engine. Returns `None` when the snapshot was
    /// taken against a different policy structure or is corrupt.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Option<()> {
        if Granularity::load_state(r)? != self.cg || r.get_u16()? as usize != self.levels.len() {
            return None;
        }
        for level in &mut self.levels {
            if Granularity::load_state(r)? != level.program.granularity {
                return None;
            }
            let program = &level.program;
            let table = &mut level.table;
            r.get_section(|r| table.load_state(r, |r| GroupExec::load_state(program, r)))?;
        }
        if r.get_u32()? as usize != self.fg_mirror.len() {
            return None;
        }
        for slot in &mut self.fg_mirror {
            *slot = if r.get_bool()? {
                Some(GroupKey::load_state(r)?)
            } else {
                None
            };
        }
        let n = r.get_u32()? as usize;
        self.pkt_vectors = (0..n)
            .map(|_| FeatureVector::load_state(r))
            .collect::<Option<Vec<_>>>()?;
        let n = r.get_u32()? as usize;
        self.evicted = (0..n)
            .map(|_| {
                Some(EvictedVector {
                    level: Granularity::load_state(r)?,
                    vector: FeatureVector::load_state(r)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        self.stats = NicStats::load_state(r)?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::{Direction, PacketRecord};
    use superfe_policy::dsl::parse;
    use superfe_policy::{compile, CompiledPolicy};
    use superfe_switch::FeSwitch;

    fn compiled(src: &str) -> CompiledPolicy {
        compile(&parse(src).unwrap()).unwrap()
    }

    /// Runs packets through a real switch into the NIC engine.
    fn run_pipeline(
        c: &CompiledPolicy,
        packets: &[PacketRecord],
    ) -> (FeNic, Vec<FeatureVector>, Vec<FeatureVector>) {
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut nic = FeNic::new(c, 16_384).unwrap();
        for p in packets {
            for e in sw.process(p) {
                nic.handle(&e);
            }
        }
        for e in sw.flush() {
            nic.handle(&e);
        }
        let group_vectors = nic.finish();
        let pkt_vectors = nic.take_packet_vectors();
        (nic, group_vectors, pkt_vectors)
    }

    #[test]
    fn flow_statistics_end_to_end() {
        let c = compiled(
            "pktstream\n.groupby(flow)\n.reduce(size, [f_mean, f_min, f_max])\n.collect(flow)",
        );
        let pkts: Vec<PacketRecord> = (0..10)
            .map(|i| PacketRecord::tcp(i * 1000, (100 + i * 10) as u16, 1, 1000, 2, 80))
            .collect();
        let (nic, groups, _) = run_pipeline(&c, &pkts);
        assert_eq!(nic.stats().records, 10);
        assert_eq!(groups.len(), 1);
        let f = &groups[0].values;
        assert!((f[0] - 145.0).abs() < 1e-9, "mean {}", f[0]);
        assert_eq!(f[1], 100.0);
        assert_eq!(f[2], 190.0);
    }

    #[test]
    fn multi_granularity_recovery() {
        // Group at socket (fine) and host (coarse); the switch groups by
        // host and the NIC recovers sockets from the FG table.
        let c = compiled(
            "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
             .groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        );
        // Host 1 has two sockets (ports 1000, 2000), host 5 has one.
        let pkts = vec![
            PacketRecord::tcp(0, 100, 1, 1000, 2, 80),
            PacketRecord::tcp(1_000, 100, 1, 2000, 2, 80),
            PacketRecord::tcp(2_000, 100, 1, 1000, 2, 80),
            PacketRecord::tcp(3_000, 100, 5, 3000, 2, 80),
        ];
        let (nic, groups, _) = run_pipeline(&c, &pkts);
        assert_eq!(nic.stats().unresolved_fg, 0);
        // 3 socket groups + 2 host groups.
        assert_eq!(groups.len(), 5);
        let host1: Vec<_> = groups
            .iter()
            .filter(|v| v.key == GroupKey::Host(1))
            .collect();
        assert_eq!(host1.len(), 1);
        assert_eq!(host1[0].values, vec![300.0]);
        let sock1000: Vec<_> = groups
            .iter()
            .filter(|v| matches!(v.key, GroupKey::Socket(ft) if ft.src_port == 1000))
            .collect();
        assert_eq!(sock1000[0].values, vec![200.0]);
    }

    #[test]
    fn per_packet_collect_emits_one_vector_per_record() {
        let c =
            compiled("pktstream\n.groupby(host)\n.reduce(size, [f_damped{0.1}])\n.collect(pkt)");
        let pkts: Vec<PacketRecord> = (0..5)
            .map(|i| PacketRecord::tcp(i * 1_000_000, 100, 1, 1000, 2, 80))
            .collect();
        let (nic, groups, pkt_vecs) = run_pipeline(&c, &pkts);
        assert_eq!(groups.len(), 0, "collect(pkt) emits no group vectors");
        assert_eq!(pkt_vecs.len(), 5);
        assert_eq!(nic.stats().vectors, 5);
        // Damped triple per vector.
        assert!(pkt_vecs.iter().all(|v| v.values.len() == 3));
        // Weight grows with each packet of the host.
        assert!(pkt_vecs[4].values[0] > pkt_vecs[0].values[0]);
    }

    #[test]
    fn hash_reuse_counted_for_cg_level() {
        let c = compiled("pktstream\n.groupby(flow)\n.reduce(size, [f_sum])\n.collect(flow)");
        let pkts: Vec<PacketRecord> = (0..7)
            .map(|i| PacketRecord::tcp(i, 100, 1, 1000, 2, 80))
            .collect();
        let (nic, _, _) = run_pipeline(&c, &pkts);
        assert_eq!(nic.stats().hashes_reused, 7);
        assert_eq!(nic.stats().hashes_computed, 0);
    }

    #[test]
    fn fg_updates_are_mirrored() {
        let c = compiled(
            "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
             .groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        );
        let pkts: Vec<PacketRecord> = (0..4)
            .map(|i| PacketRecord::tcp(i, 100, 1, 1000 + i as u16, 2, 80))
            .collect();
        let (nic, _, _) = run_pipeline(&c, &pkts);
        assert_eq!(nic.stats().fg_updates, 4);
    }

    #[test]
    fn direction_sequences_survive_batching() {
        // Order preservation: the NIC sees directions in arrival order even
        // through MGPV batching.
        let c = compiled(
            "pktstream\n.groupby(flow)\n.map(one, _, f_one)\n.map(d, one, f_direction)\n\
             .reduce(d, [f_array{8}])\n.collect(flow)",
        );
        let dirs = [
            Direction::Ingress,
            Direction::Ingress,
            Direction::Egress,
            Direction::Ingress,
            Direction::Egress,
        ];
        let pkts: Vec<PacketRecord> = dirs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                PacketRecord::tcp(i as u64 * 1000, 100, 1, 1000, 2, 80).with_direction(*d)
            })
            .collect();
        let (_, groups, _) = run_pipeline(&c, &pkts);
        assert_eq!(groups.len(), 1);
        assert_eq!(
            groups[0].values,
            vec![1.0, 1.0, -1.0, 1.0, -1.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn record_conservation_through_pipeline() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let pkts: Vec<PacketRecord> = (0..500)
            .map(|i| PacketRecord::tcp(i * 10, 100, (i % 23 + 1) as u32, 1000, 2, 80))
            .collect();
        let (nic, groups, _) = run_pipeline(&c, &pkts);
        assert_eq!(nic.stats().records, 500);
        // Sums over all host groups must equal the total bytes.
        let total: f64 = groups.iter().map(|g| g.values[0]).sum();
        assert!((total - 500.0 * 100.0).abs() < 1e-6, "total {total}");
    }
}
