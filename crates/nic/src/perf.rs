//! The FE-NIC cycle model (§6.2, basis of Figs. 16 and 17).
//!
//! NFP cores are in-order RISC engines; throughput is determined by the
//! cycles spent per metadata record. The model decomposes that cost into
//! compute (ALU work of maps/reduces), hashing, division, and memory-access
//! latency, and exposes the paper's three optimizations as toggles:
//!
//! 1. **Hash reuse**: the switch ships its CRC with each MGPV, so the NIC
//!    skips key hashing.
//! 2. **Threading**: 8 hardware threads per core hide memory latency behind
//!    2-cycle context switches.
//! 3. **Division elimination**: the compare trick replaces ~1500-cycle soft
//!    divisions with a handful of ALU ops.

use superfe_policy::ast::ReduceFn;
use superfe_policy::NicProgram;

use crate::arch::NfpModel;
use crate::placement::Placement;

/// Optimization toggles (§6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptFlags {
    /// Reuse the switch-computed hash.
    pub reuse_hash: bool,
    /// Hide memory latency with hardware threads.
    pub threading: bool,
    /// Replace per-update divisions with the compare trick.
    pub div_elim: bool,
}

impl OptFlags {
    /// All optimizations on (the shipping configuration).
    pub fn all_on() -> Self {
        OptFlags {
            reuse_hash: true,
            threading: true,
            div_elim: true,
        }
    }

    /// All optimizations off (the Fig. 17 baseline).
    pub fn all_off() -> Self {
        OptFlags {
            reuse_hash: false,
            threading: false,
            div_elim: false,
        }
    }
}

/// Per-record cost estimate.
#[derive(Clone, Copy, Debug)]
pub struct PerfEstimate {
    /// Total effective cycles per metadata record.
    pub cycles_per_record: f64,
    /// Compute-only component (ALU + hash + division).
    pub compute_cycles: f64,
    /// Raw (unhidden) memory-latency component.
    pub memory_cycles: f64,
}

impl PerfEstimate {
    /// Records per second on `cores` cores of `model`.
    pub fn records_per_sec(&self, cores: usize, model: &NfpModel) -> f64 {
        cores as f64 * model.freq_hz / self.cycles_per_record
    }

    /// Original-traffic throughput in Gbps: each record summarizes one
    /// packet of `avg_pkt_bytes` on the monitored link.
    pub fn gbps(&self, cores: usize, model: &NfpModel, avg_pkt_bytes: f64) -> f64 {
        self.records_per_sec(cores, model) * avg_pkt_bytes * 8.0 / 1e9
    }
}

/// Cycle costs of primitive operations on an NFP core.
mod cost {
    /// Per-record dispatch/DMA bookkeeping.
    pub const DISPATCH: f64 = 30.0;
    /// CRC hash of a group key.
    pub const HASH: f64 = 60.0;
    /// One mapping function application.
    pub const MAP: f64 = 4.0;
    /// Simple reducer update (sum/min/max/count).
    pub const REDUCE_SIMPLE: f64 = 4.0;
    /// Welford-style update, divisions excluded.
    pub const REDUCE_WELFORD: f64 = 10.0;
    /// Damped-window update (decay via shift table), divisions excluded.
    pub const REDUCE_DAMPED: f64 = 16.0;
    /// Histogram/array update.
    pub const REDUCE_TABLE: f64 = 12.0;
    /// HyperLogLog update (reusing the hash).
    pub const REDUCE_HLL: f64 = 10.0;
    /// The compare trick replacing one division.
    pub const DIV_ELIMINATED: f64 = 6.0;
}

/// The assembled cycle model for one deployed NIC program.
#[derive(Clone, Debug)]
pub struct CycleModel {
    model: NfpModel,
    levels: usize,
    maps: usize,
    reduce_cycles: f64,
    divs_per_record: f64,
    memory_cycles: f64,
    mem_accesses: f64,
}

impl CycleModel {
    /// Builds the model from a compiled program and its state placement.
    pub fn new(program: &NicProgram, placement: &Placement, model: NfpModel) -> Self {
        let mut maps = 0usize;
        let mut reduce_cycles = 0.0;
        let mut divs = 0.0;
        let mut mem_accesses = 0.0;
        for level in &program.levels {
            maps += level.maps.len();
            mem_accesses += level
                .maps
                .iter()
                .filter(|m| m.func.state_bytes() > 0)
                .count() as f64;
            for r in &level.reduces {
                // The generated Micro-C normalizes one reduce op's state
                // block with a shared division pass, so we charge one
                // (expensive) division per dividing op per record, not one
                // per statistic.
                if r.funcs
                    .iter()
                    .any(superfe_policy::ReduceFn::divides_per_update)
                {
                    divs += 1.0;
                }
                for f in &r.funcs {
                    reduce_cycles += match f {
                        ReduceFn::Sum | ReduceFn::Max | ReduceFn::Min => cost::REDUCE_SIMPLE,
                        ReduceFn::Mean | ReduceFn::Var | ReduceFn::Std => cost::REDUCE_WELFORD,
                        ReduceFn::Kur | ReduceFn::Skew => cost::REDUCE_WELFORD * 1.5,
                        ReduceFn::Mag
                        | ReduceFn::Radius
                        | ReduceFn::Cov
                        | ReduceFn::Pcc
                        | ReduceFn::Damped { .. }
                        | ReduceFn::Damped2d { .. } => cost::REDUCE_DAMPED,
                        ReduceFn::Card { .. } => cost::REDUCE_HLL,
                        ReduceFn::Array { .. }
                        | ReduceFn::Hist { .. }
                        | ReduceFn::HistLog { .. }
                        | ReduceFn::Pdf { .. }
                        | ReduceFn::Cdf { .. }
                        | ReduceFn::Percent { .. } => cost::REDUCE_TABLE,
                    };
                    mem_accesses += 1.0;
                }
            }
        }
        CycleModel {
            model,
            levels: program.levels.len().max(1),
            maps,
            reduce_cycles,
            divs_per_record: divs,
            memory_cycles: placement.total_cost,
            mem_accesses: mem_accesses.max(1.0),
        }
    }

    /// The hardware model in use.
    pub fn hardware(&self) -> &NfpModel {
        &self.model
    }

    /// Estimates per-record cycles under the given optimization flags.
    pub fn estimate(&self, flags: OptFlags) -> PerfEstimate {
        let hash = if flags.reuse_hash {
            0.0
        } else {
            cost::HASH * self.levels as f64
        };
        let div = if flags.div_elim {
            cost::DIV_ELIMINATED * self.divs_per_record
        } else {
            self.model.soft_div_cycles as f64 * self.divs_per_record
        };
        let compute =
            cost::DISPATCH + hash + div + cost::MAP * self.maps as f64 + self.reduce_cycles;
        let memory = self.memory_cycles;
        let cycles = if flags.threading {
            // Threads overlap memory stalls; each access costs two context
            // switches, and the residual latency is divided across threads.
            let switch_overhead = 2.0 * self.model.ctx_switch_cycles as f64 * self.mem_accesses;
            compute + switch_overhead + memory / self.model.threads_per_core as f64
        } else {
            compute + memory
        };
        PerfEstimate {
            cycles_per_record: cycles,
            compute_cycles: compute,
            memory_cycles: memory,
        }
    }

    /// Convenience: throughput in Gbps for `cores` cores, all-on flags.
    pub fn gbps(&self, cores: usize, avg_pkt_bytes: f64) -> f64 {
        self.estimate(OptFlags::all_on())
            .gbps(cores, &self.model, avg_pkt_bytes)
    }
}

/// Per-record cycle estimate straight from the policy-level static cost
/// model, before compilation or state placement. `superfe explain` uses this
/// to turn the abstract `SF06xx` op counts into a concrete throughput figure
/// without deploying anything; the full [`CycleModel`] (which knows the real
/// placement) supersedes it once a program exists.
///
/// Memory accesses are assumed to land in on-island CTM — the optimistic end
/// of the placement spectrum — so this is a lower bound on real cycles.
pub fn cycles_from_cost(
    cost: &superfe_policy::analyze::cost::PolicyCost,
    model: &NfpModel,
    flags: OptFlags,
) -> PerfEstimate {
    let levels = cost.levels.len().max(1) as f64;
    let accesses: f64 = cost
        .levels
        .iter()
        .map(|l| (l.maps + l.reduce_funcs) as f64)
        .sum::<f64>()
        .max(1.0);
    let hash = if flags.reuse_hash {
        0.0
    } else {
        cost::HASH * levels
    };
    let divs = cost.total_divisions() as f64;
    let div = if flags.div_elim {
        cost::DIV_ELIMINATED * divs
    } else {
        model.soft_div_cycles as f64 * divs
    };
    let compute = cost::DISPATCH + hash + div + cost.total_alu_ops() as f64;
    let ctm_latency = model
        .memories
        .iter()
        .find(|m| m.level == crate::arch::MemLevel::Ctm)
        .map(|m| m.latency_cycles as f64)
        .unwrap_or(80.0);
    let memory = ctm_latency * accesses;
    let cycles = if flags.threading {
        let switch_overhead = 2.0 * model.ctx_switch_cycles as f64 * accesses;
        compute + switch_overhead + memory / model.threads_per_core as f64
    } else {
        compute + memory
    };
    PerfEstimate {
        cycles_per_record: cycles,
        compute_cycles: compute,
        memory_cycles: memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::solve_placement;
    use superfe_policy::dsl::parse;
    use superfe_policy::{compile, CompiledPolicy};

    fn compiled(src: &str) -> CompiledPolicy {
        compile(&parse(src).unwrap()).unwrap()
    }

    fn model_for(src: &str) -> CycleModel {
        let c = compiled(src);
        let states = c.nic.states();
        let nfp = NfpModel::nfp4000();
        let p = solve_placement(&states, &nfp, 1).unwrap();
        CycleModel::new(&c.nic, &p, nfp)
    }

    fn kitsune_like() -> CycleModel {
        model_for(
            "pktstream\n.groupby(socket)\n\
             .reduce(size, [f_damped{5}, f_damped{1}, f_damped{0.1}])\n.collect(socket)\n\
             .groupby(channel)\n\
             .reduce(size, [f_damped2d{5}, f_damped2d{1}, f_damped2d{0.1}])\n.collect(channel)\n\
             .groupby(host)\n.reduce(size, [f_damped{5}, f_damped{1}])\n.collect(pkt)",
        )
    }

    #[test]
    fn all_optimizations_give_multiple_x_speedup() {
        let m = kitsune_like();
        let off = m.estimate(OptFlags::all_off()).cycles_per_record;
        let on = m.estimate(OptFlags::all_on()).cycles_per_record;
        let speedup = off / on;
        assert!(
            (2.0..20.0).contains(&speedup),
            "speedup {speedup} (off {off}, on {on})"
        );
        // The paper reports ~4x for Kitsune-class policies; we accept a band
        // but check it is the div elimination that dominates.
        let div_only = m
            .estimate(OptFlags {
                div_elim: true,
                ..OptFlags::all_off()
            })
            .cycles_per_record;
        let hash_only = m
            .estimate(OptFlags {
                reuse_hash: true,
                ..OptFlags::all_off()
            })
            .cycles_per_record;
        assert!(
            off - div_only > off - hash_only,
            "division elimination must be the largest single win"
        );
    }

    #[test]
    fn threading_hides_memory_latency() {
        let m = kitsune_like();
        let base = OptFlags {
            threading: false,
            ..OptFlags::all_on()
        };
        let with = m.estimate(OptFlags::all_on());
        let without = m.estimate(base);
        assert!(with.cycles_per_record < without.cycles_per_record);
        assert_eq!(with.memory_cycles, without.memory_cycles);
    }

    #[test]
    fn throughput_scales_linearly_with_cores() {
        let m = kitsune_like();
        let e = m.estimate(OptFlags::all_on());
        let one = e.records_per_sec(1, m.hardware());
        let many = e.records_per_sec(120, m.hardware());
        assert!((many / one - 120.0).abs() < 1e-9);
    }

    #[test]
    fn simple_policy_is_cheaper_than_kitsune() {
        let simple = model_for(
            "pktstream\n.groupby(flow)\n.map(one, _, f_one)\n.map(d, one, f_direction)\n\
             .reduce(d, [f_array{5000}])\n.collect(flow)",
        );
        let s = simple.estimate(OptFlags::all_on()).cycles_per_record;
        let k = kitsune_like()
            .estimate(OptFlags::all_on())
            .cycles_per_record;
        assert!(s < k, "simple {s} vs kitsune {k}");
    }

    #[test]
    fn multi_100gbps_with_full_nics_on_backbone_traffic() {
        // The headline claim: with batching upstream, 120 cores keep up with
        // multi-100Gbps original traffic for MTU-heavy traces.
        let m = kitsune_like();
        let gbps = m.gbps(120, 1246.0);
        assert!(gbps > 100.0, "only {gbps} Gbps");
    }

    #[test]
    fn cost_model_estimate_tracks_policy_weight() {
        use superfe_policy::analyze::cost::policy_cost;
        let light = policy_cost(
            &parse("pktstream\n.groupby(flow)\n.reduce(size, [f_mean])\n.collect(flow)").unwrap(),
        );
        let heavy = policy_cost(
            &parse(
                "pktstream\n.groupby(socket)\n\
                 .reduce(size, [f_damped{5}, f_damped{1}, f_damped{0.1}])\n.collect(socket)\n\
                 .groupby(channel)\n.reduce(size, [f_mag, f_pcc])\n.collect(channel)",
            )
            .unwrap(),
        );
        let nfp = NfpModel::nfp4000();
        let l = cycles_from_cost(&light, &nfp, OptFlags::all_on());
        let h = cycles_from_cost(&heavy, &nfp, OptFlags::all_on());
        assert!(l.cycles_per_record > 0.0);
        assert!(
            h.cycles_per_record > l.cycles_per_record,
            "heavy {} vs light {}",
            h.cycles_per_record,
            l.cycles_per_record
        );
        // Without division elimination the soft divide dominates.
        let naive = cycles_from_cost(&light, &nfp, OptFlags::all_off());
        assert!(naive.cycles_per_record > l.cycles_per_record + 1000.0);
    }

    #[test]
    fn gbps_accounts_for_packet_size() {
        let m = kitsune_like();
        let big = m.gbps(60, 1246.0);
        let small = m.gbps(60, 135.0);
        assert!(big > small * 5.0);
    }
}
