//! Streaming multi-core NIC executor: CG-key-sharded workers fed over
//! bounded channels.
//!
//! The NFP's ingress NBI distributes packets to cores on a per-IP basis so
//! cores never contend on group state (§6.2). This module is the software
//! analogue as a *pipeline stage*: the producer (switch simulator) pushes
//! events as they are emitted, the executor routes each one to the worker
//! owning its CG-key shard, and workers compute features concurrently while
//! the producer is still parsing packets — the full event stream is never
//! materialized.
//!
//! Design invariants (see DESIGN.md "Threading model"):
//!
//! - **Shard-by-CG-key**: an [`SwitchEvent::Mgpv`] goes to worker
//!   `hash % workers`. Every record of a group carries the same CG hash, so
//!   a group's state lives on exactly one worker — no locks, no cross-worker
//!   merges of partial group state.
//! - **FG broadcast**: [`SwitchEvent::FgUpdate`]s are appended to *every*
//!   worker's frame, in stream order relative to the Mgpv events around
//!   them. Each worker therefore sees an ordered subsequence of the original
//!   stream containing all FG updates plus its own Mgpv shard, which
//!   preserves the switch's FgUpdate-before-reference ordering per worker.
//! - **Bounded channels**: each worker is fed over a
//!   [`std::sync::mpsc::sync_channel`] holding at most [`CHANNEL_DEPTH`]
//!   frames. A producer outrunning a worker blocks on `send` (backpressure)
//!   instead of buffering unboundedly.
//! - **Frame batching & recycling**: events travel in [`FRAME_SIZE`]-event
//!   frames to amortize synchronization; drained frames return to the
//!   producer over a recycle channel, so steady state runs allocation-free.
//! - **Deterministic merge**: workers are joined and their outputs
//!   concatenated in shard order, making results independent of thread
//!   scheduling.

use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use superfe_net::Granularity;
use superfe_policy::CompiledPolicy;
use superfe_switch::SwitchEvent;

use crate::engine::{FeNic, FeatureVector, NicStats};
use crate::error::NicError;

/// Events per channel frame (amortizes one synchronization over the frame).
pub const FRAME_SIZE: usize = 256;

/// Frames in flight per worker before the producer blocks.
pub const CHANNEL_DEPTH: usize = 8;

/// What one worker shard produces.
struct ShardOutput {
    groups: Vec<FeatureVector>,
    pkts: Vec<FeatureVector>,
    stats: NicStats,
    groups_per_level: Vec<(Granularity, usize)>,
}

/// Merged output of a streaming run.
#[derive(Debug)]
pub struct StreamOutput {
    /// Per-group feature vectors, concatenated in shard order.
    pub group_vectors: Vec<FeatureVector>,
    /// Per-packet feature vectors, concatenated in shard order (arrival
    /// order within each shard).
    pub packet_vectors: Vec<FeatureVector>,
    /// Aggregated engine counters. Note `fg_updates` counts per worker:
    /// broadcasts are applied once per shard.
    pub stats: NicStats,
    /// Live groups per granularity level, summed across shards (groups
    /// never span shards, so the sum is exact).
    pub groups_per_level: Vec<(Granularity, usize)>,
}

struct Worker {
    tx: SyncSender<Vec<SwitchEvent>>,
    join: JoinHandle<ShardOutput>,
    /// Frame currently being filled for this worker.
    pending: Vec<SwitchEvent>,
}

/// A streaming, CG-key-sharded multi-core NIC executor.
///
/// Construction spawns one thread per shard, each owning a private
/// [`FeNic`]; [`StreamingNic::push`] routes events as they arrive and
/// [`StreamingNic::finish`] flushes, joins, and merges deterministically.
pub struct StreamingNic {
    workers: Vec<Worker>,
    recycle_tx: Sender<Vec<SwitchEvent>>,
    recycle_rx: Receiver<Vec<SwitchEvent>>,
    /// Locally stashed recycled frames ready for reuse.
    spare: Vec<Vec<SwitchEvent>>,
}

impl StreamingNic {
    /// Spawns `workers` shard threads (clamped to ≥ 1) for `compiled`.
    ///
    /// All engines are instantiated up front so configuration problems
    /// surface here as [`NicError::Engine`], not inside a worker thread.
    pub fn new(
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        workers: usize,
    ) -> Result<Self, NicError> {
        let workers = workers.max(1);
        let mut engines = Vec::with_capacity(workers);
        for _ in 0..workers {
            engines.push(FeNic::new(compiled, fg_table_size).ok_or_else(|| {
                NicError::Engine("degenerate NIC group-table configuration".into())
            })?);
        }
        let (recycle_tx, recycle_rx) = std::sync::mpsc::channel();
        let workers = engines
            .into_iter()
            .map(|mut nic| {
                let (tx, rx) = sync_channel::<Vec<SwitchEvent>>(CHANNEL_DEPTH);
                let recycle = recycle_tx.clone();
                let join = std::thread::spawn(move || {
                    while let Ok(mut frame) = rx.recv() {
                        for e in &frame {
                            nic.handle(e);
                        }
                        frame.clear();
                        // The producer may already be gone; recycling is
                        // best-effort.
                        let _ = recycle.send(frame);
                    }
                    let groups = nic.finish();
                    let pkts = nic.take_packet_vectors();
                    ShardOutput {
                        groups,
                        pkts,
                        stats: *nic.stats(),
                        groups_per_level: nic.groups_per_level(),
                    }
                });
                Worker {
                    tx,
                    join,
                    pending: Vec::with_capacity(FRAME_SIZE),
                }
            })
            .collect();
        Ok(StreamingNic {
            workers,
            recycle_tx,
            recycle_rx,
            spare: Vec::new(),
        })
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Routes one event: Mgpv to its CG-key shard, FgUpdate to every shard.
    ///
    /// Blocks when the target worker is [`CHANNEL_DEPTH`] frames behind
    /// (backpressure). Fails only if a worker thread has died.
    pub fn push(&mut self, event: SwitchEvent) -> Result<(), NicError> {
        match event {
            SwitchEvent::FgUpdate(_) => {
                for w in 0..self.workers.len() {
                    self.workers[w].pending.push(event.clone());
                    self.flush_if_full(w)?;
                }
                Ok(())
            }
            SwitchEvent::Mgpv(ref m) => {
                let w = (m.hash as usize) % self.workers.len();
                self.workers[w].pending.push(event);
                self.flush_if_full(w)
            }
        }
    }

    /// Routes a batch of events in order (a switch frame).
    pub fn push_all(
        &mut self,
        events: impl IntoIterator<Item = SwitchEvent>,
    ) -> Result<(), NicError> {
        for e in events {
            self.push(e)?;
        }
        Ok(())
    }

    /// Drains one frame for worker `w` if it reached [`FRAME_SIZE`].
    fn flush_if_full(&mut self, w: usize) -> Result<(), NicError> {
        if self.workers[w].pending.len() >= FRAME_SIZE {
            self.flush_worker(w)?;
        }
        Ok(())
    }

    /// Sends worker `w`'s pending frame, replacing it with a recycled one.
    fn flush_worker(&mut self, w: usize) -> Result<(), NicError> {
        if self.workers[w].pending.is_empty() {
            return Ok(());
        }
        let replacement = self.take_spare();
        let frame = std::mem::replace(&mut self.workers[w].pending, replacement);
        self.workers[w]
            .tx
            .send(frame)
            .map_err(|_| NicError::WorkerLost { worker: w })
    }

    /// A recycled frame if one is available, else a fresh allocation.
    fn take_spare(&mut self) -> Vec<SwitchEvent> {
        while let Ok(f) = self.recycle_rx.try_recv() {
            self.spare.push(f);
        }
        self.spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(FRAME_SIZE))
    }

    /// Flushes remaining frames, closes the channels, joins every worker in
    /// shard order, and merges their outputs deterministically.
    pub fn finish(mut self) -> Result<StreamOutput, NicError> {
        for w in 0..self.workers.len() {
            self.flush_worker(w)?;
        }
        drop(self.recycle_tx);
        let mut out = StreamOutput {
            group_vectors: Vec::new(),
            packet_vectors: Vec::new(),
            stats: NicStats::default(),
            groups_per_level: Vec::new(),
        };
        for (i, worker) in self.workers.into_iter().enumerate() {
            drop(worker.tx); // closes the channel; the worker loop exits
            let shard = worker
                .join
                .join()
                .map_err(|_| NicError::WorkerLost { worker: i })?;
            out.group_vectors.extend(shard.groups);
            out.packet_vectors.extend(shard.pkts);
            out.stats.absorb(&shard.stats);
            if out.groups_per_level.is_empty() {
                out.groups_per_level = shard.groups_per_level;
            } else {
                // Every engine reports the same level list in policy order.
                for (acc, (_, n)) in out.groups_per_level.iter_mut().zip(shard.groups_per_level) {
                    acc.1 += n;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::PacketRecord;
    use superfe_policy::compile;
    use superfe_policy::dsl::parse;
    use superfe_switch::FeSwitch;

    fn compiled(src: &str) -> CompiledPolicy {
        compile(&parse(src).unwrap()).unwrap()
    }

    fn run_streaming(c: &CompiledPolicy, n: u32, workers: usize) -> StreamOutput {
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut nic = StreamingNic::new(c, 16_384, workers).unwrap();
        let mut frame = Vec::new();
        for i in 0..n {
            let p = PacketRecord::tcp(u64::from(i) * 100, 100, i % 31 + 1, 1000, 2, 80);
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        nic.finish().unwrap()
    }

    fn sorted(mut v: Vec<FeatureVector>) -> Vec<FeatureVector> {
        v.sort_by(|a, b| format!("{:?}", a.key).cmp(&format!("{:?}", b.key)));
        v
    }

    #[test]
    fn streaming_matches_single_worker() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let seq = run_streaming(&c, 2000, 1);
        let par = run_streaming(&c, 2000, 8);
        assert_eq!(seq.stats.records, 2000);
        assert_eq!(par.stats.records, 2000);
        assert_eq!(sorted(seq.group_vectors), sorted(par.group_vectors));
    }

    #[test]
    fn worker_count_clamped_to_one() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        assert_eq!(StreamingNic::new(&c, 16_384, 0).unwrap().workers(), 1);
    }

    #[test]
    fn merge_order_is_deterministic() {
        // Same input, many runs: output order must be identical every time
        // (workers are joined in shard order, not completion order).
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let baseline = run_streaming(&c, 1500, 4);
        for _ in 0..3 {
            let again = run_streaming(&c, 1500, 4);
            assert_eq!(baseline.group_vectors, again.group_vectors);
            assert_eq!(baseline.packet_vectors, again.packet_vectors);
        }
    }

    #[test]
    fn frames_are_recycled() {
        // Push far more events than CHANNEL_DEPTH × workers frames; with
        // recycling the executor still completes with bounded memory, and
        // every record survives the frame transport.
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let out = run_streaming(&c, 20_000, 2);
        assert_eq!(out.stats.records, 20_000);
        let total: f64 = out.group_vectors.iter().map(|g| g.values[0]).sum();
        assert!((total - 20_000.0 * 100.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn multi_granularity_fg_broadcast() {
        // FG updates must reach every worker so finer levels resolve on
        // whichever shard their CG records land.
        let c = compiled(
            "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
             .groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        );
        let out = run_streaming(&c, 600, 4);
        assert_eq!(out.stats.unresolved_fg, 0);
        let hosts = out
            .group_vectors
            .iter()
            .filter(|v| matches!(v.key, superfe_net::GroupKey::Host(_)))
            .count();
        assert_eq!(hosts, 31);
    }
}
