//! Streaming multi-core NIC executor: CG-key-sharded workers fed over
//! bounded SPSC frame rings.
//!
//! The NFP's ingress NBI distributes packets to cores on a per-IP basis so
//! cores never contend on group state (§6.2). This module is the software
//! analogue as a *pipeline stage*: the producer (switch simulator) pushes
//! events as they are emitted, the executor routes each one to the worker
//! owning its CG-key shard, and workers compute features concurrently while
//! the producer is still parsing packets — the full event stream is never
//! materialized.
//!
//! Design invariants (see DESIGN.md "Threading model"):
//!
//! - **Shard-by-CG-key**: an [`SwitchEvent::Mgpv`] goes to worker
//!   `hash % workers`. Every record of a group carries the same CG hash, so
//!   a group's state lives on exactly one worker — no locks, no cross-worker
//!   merges of partial group state.
//! - **FG broadcast**: [`SwitchEvent::FgUpdate`]s are appended to *every*
//!   worker's frame, in stream order relative to the Mgpv events around
//!   them. Each worker therefore sees an ordered subsequence of the original
//!   stream containing all FG updates plus its own Mgpv shard, which
//!   preserves the switch's FgUpdate-before-reference ordering per worker.
//! - **Bounded rings**: each worker is fed over a
//!   [`superfe_net::ring`] SPSC ring holding at most [`CHANNEL_DEPTH`]
//!   frames. A producer outrunning a worker blocks on `send` (backpressure)
//!   instead of buffering unboundedly. The ring's doorbell publishes
//!   [`DOORBELL_FRAMES`] frames per wakeup, so a worker is signalled once
//!   per ~thousand events, not once per frame.
//! - **Frame batching & bounded recycling**: events travel in
//!   [`FRAME_SIZE`]-event frames to amortize synchronization; drained
//!   frames return to the producer over a *bounded* per-worker recycle ring
//!   ([`RECYCLE_DEPTH`] slots) with drop-on-full semantics, so steady-state
//!   frame inventory is provably capped at
//!   `workers × (CHANNEL_DEPTH + RECYCLE_DEPTH + 2)` frames.
//! - **Deterministic merge**: workers are joined and their outputs
//!   concatenated in shard order, making results independent of thread
//!   scheduling.

use std::sync::Arc;
use std::thread::JoinHandle;

use superfe_ml::QuantizedDetector;
use superfe_net::metrics::{monotonic_ns, StageMetrics};
use superfe_net::ring;
use superfe_net::Granularity;
use superfe_policy::CompiledPolicy;
use superfe_switch::SwitchEvent;

use crate::engine::{EvictedVector, FeNic, FeatureVector, NicStats};
use crate::error::NicError;
use crate::inference::{InlineAlert, InlineInference, InlineStats};
use crate::table::TableBudget;

/// Events per channel frame (amortizes one synchronization over the frame).
pub const FRAME_SIZE: usize = 256;

/// Frames in flight per worker before the producer blocks.
pub const CHANNEL_DEPTH: usize = 8;

/// Frames published per doorbell ring on the event path: the producer
/// stages up to this many frames locally and wakes the worker once for the
/// batch. Must stay below [`CHANNEL_DEPTH`] so a full ring still has
/// published frames for the worker to drain.
pub const DOORBELL_FRAMES: usize = 4;

/// Capacity of each worker's frame recycle ring. When a worker drains
/// frames faster than the producer re-takes them the ring fills and excess
/// frames are dropped (freed), never blocked on.
pub const RECYCLE_DEPTH: usize = CHANNEL_DEPTH + 2;

/// A feature vector egressing a worker shard, tagged with its stream
/// position: the shard index and a per-shard monotonic sequence number.
///
/// Per-packet vectors are tagged in arrival order as frames drain;
/// per-group vectors follow at end of stream (policy level order). Because
/// every group key lives on exactly one shard and shards preserve stream
/// order, the `(shard, seq)` tags give a deterministic per-key vector order
/// for a given input and worker count.
#[derive(Clone, Debug)]
pub struct EgressVector {
    /// Shard that computed the vector.
    pub shard: usize,
    /// Per-shard monotonic sequence number (0-based).
    pub seq: u64,
    /// The feature vector itself.
    pub vector: FeatureVector,
}

/// A consumer of feature vectors egressing the streaming executor — the
/// attachment point for online inference (`superfe-detect`).
///
/// One sink instance is moved into each worker thread, so implementations
/// need no interior locking; blocking in [`VectorSink::emit`] backpressures
/// the owning NIC shard (and, transitively, the switch producer).
pub trait VectorSink: Send {
    /// Consumes one egressing vector. Called from the worker thread.
    fn emit(&mut self, v: EgressVector);

    /// Called once after the shard's final vector, before the worker
    /// thread exits. Implementations flush any internal batching here.
    fn flush(&mut self) {}
}

/// What one worker shard produces.
struct ShardOutput {
    groups: Vec<FeatureVector>,
    pkts: Vec<FeatureVector>,
    evicted: Vec<EvictedVector>,
    stats: NicStats,
    groups_per_level: Vec<(Granularity, usize)>,
    /// Alerts and counters of the in-pipeline inference stage, when one
    /// was attached.
    inline: Option<(Vec<InlineAlert>, InlineStats)>,
}

/// Merged output of a streaming run.
#[derive(Debug)]
pub struct StreamOutput {
    /// Per-group feature vectors, concatenated in shard order.
    pub group_vectors: Vec<FeatureVector>,
    /// Per-packet feature vectors, concatenated in shard order (arrival
    /// order within each shard).
    pub packet_vectors: Vec<FeatureVector>,
    /// Aggregated engine counters. Note `fg_updates` counts per worker:
    /// broadcasts are applied once per shard.
    pub stats: NicStats,
    /// Live groups per granularity level, summed across shards (groups
    /// never span shards, so the sum is exact).
    pub groups_per_level: Vec<(Granularity, usize)>,
    /// Groups finalized early by DRAM budget eviction, concatenated in
    /// shard order. Empty under the default budget.
    pub evicted_vectors: Vec<EvictedVector>,
    /// Alerts raised by the in-pipeline inference stage, concatenated in
    /// shard order. Empty unless the executor was built with
    /// [`StreamingNic::with_inference`]. Use
    /// [`canonicalize_inline_alerts`](crate::inference::canonicalize_inline_alerts)
    /// for a worker-count-independent order.
    pub inline_alerts: Vec<InlineAlert>,
    /// Merged counters of the in-pipeline inference stage; `None` when no
    /// quantized model was attached.
    pub inline_stats: Option<InlineStats>,
}

struct Worker {
    tx: ring::Producer<Vec<SwitchEvent>>,
    /// Consumer end of this worker's bounded frame recycle ring.
    recycle: ring::Consumer<Vec<SwitchEvent>>,
    join: JoinHandle<ShardOutput>,
    /// Frame currently being filled for this worker.
    pending: Vec<SwitchEvent>,
}

/// A streaming, CG-key-sharded multi-core NIC executor.
///
/// Construction spawns one thread per shard, each owning a private
/// [`FeNic`]; [`StreamingNic::push`] routes events as they arrive and
/// [`StreamingNic::finish`] flushes, joins, and merges deterministically.
pub struct StreamingNic {
    workers: Vec<Worker>,
    /// Locally stashed recycled frames ready for reuse (bounded: refilled
    /// only from the fixed-capacity recycle rings).
    spare: Vec<Vec<SwitchEvent>>,
}

impl StreamingNic {
    /// Spawns `workers` shard threads (clamped to ≥ 1) for `compiled`.
    ///
    /// All engines are instantiated up front so configuration problems
    /// surface here as [`NicError::Engine`], not inside a worker thread.
    pub fn new(
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        workers: usize,
    ) -> Result<Self, NicError> {
        Self::build(
            compiled,
            fg_table_size,
            workers,
            None,
            None,
            TableBudget::default(),
            None,
        )
    }

    /// Like [`StreamingNic::new`], but with an explicit per-level DRAM
    /// budget on every shard engine. Evicted groups surface in
    /// [`StreamOutput::evicted_vectors`].
    pub fn with_budget(
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        workers: usize,
        budget: TableBudget,
    ) -> Result<Self, NicError> {
        Self::build(compiled, fg_table_size, workers, None, None, budget, None)
    }

    /// Like [`StreamingNic::new`], but compiles a quantized detector into
    /// the pipeline: every finalized feature vector (per-packet and
    /// per-group) is scored *inside its worker shard* before egress, and
    /// alerts surface in [`StreamOutput::inline_alerts`].
    ///
    /// The model is shared read-only across shards — scoring is pure
    /// integer arithmetic ([`QuantizedDetector::score_q`]), so the alert
    /// stream per group key is bitwise identical at every worker count.
    pub fn with_inference(
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        workers: usize,
        model: Arc<QuantizedDetector>,
    ) -> Result<Self, NicError> {
        Self::build(
            compiled,
            fg_table_size,
            workers,
            None,
            None,
            TableBudget::default(),
            Some(model),
        )
    }

    /// Like [`StreamingNic::new`], but attaches one [`VectorSink`] per
    /// shard: `sinks[i]` moves into worker `i`'s thread and receives that
    /// shard's vectors as they are computed ([`EgressVector`] tags carry
    /// the stream position).
    ///
    /// With a sink attached, per-packet vectors are *diverted*: they flow
    /// to the sink incrementally instead of accumulating in
    /// [`StreamOutput::packet_vectors`] (which comes back empty). Per-group
    /// vectors are both egressed at end of stream and returned.
    ///
    /// `sinks.len()` must equal the (clamped, ≥ 1) worker count.
    pub fn with_sinks(
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        workers: usize,
        sinks: Vec<Box<dyn VectorSink>>,
    ) -> Result<Self, NicError> {
        Self::with_options(compiled, fg_table_size, workers, Some(sinks), None)
    }

    /// Fully-general constructor: optional per-shard sinks and optional
    /// per-stage latency instrumentation. With `metrics` attached, every
    /// frame's ring dwell (producer send → worker receive), per-frame shard
    /// processing time, and per-frame sink egress time are recorded into
    /// the shared [`StageMetrics`] histograms.
    pub fn with_options(
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        workers: usize,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
        metrics: Option<Arc<StageMetrics>>,
    ) -> Result<Self, NicError> {
        if let Some(sinks) = &sinks {
            if sinks.len() != workers.max(1) {
                return Err(NicError::Engine(format!(
                    "sink count {} does not match worker count {}",
                    sinks.len(),
                    workers.max(1)
                )));
            }
        }
        Self::build(
            compiled,
            fg_table_size,
            workers,
            sinks,
            metrics,
            TableBudget::default(),
            None,
        )
    }

    fn build(
        compiled: &CompiledPolicy,
        fg_table_size: usize,
        workers: usize,
        sinks: Option<Vec<Box<dyn VectorSink>>>,
        metrics: Option<Arc<StageMetrics>>,
        budget: TableBudget,
        inference: Option<Arc<QuantizedDetector>>,
    ) -> Result<Self, NicError> {
        let workers = workers.max(1);
        let mut engines = Vec::with_capacity(workers);
        for _ in 0..workers {
            engines.push(
                FeNic::with_budget(compiled, fg_table_size, budget).ok_or_else(|| {
                    NicError::Engine("degenerate NIC group-table configuration".into())
                })?,
            );
        }
        let mut sinks: Vec<Option<Box<dyn VectorSink>>> = match sinks {
            Some(s) => s.into_iter().map(Some).collect(),
            None => (0..workers).map(|_| None).collect(),
        };
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(shard, mut nic)| {
                let (tx, mut rx) = ring::channel_with::<Vec<SwitchEvent>>(
                    CHANNEL_DEPTH,
                    DOORBELL_FRAMES,
                    Arc::default(),
                    metrics.as_ref().map(|m| m.queue.clone()),
                );
                // Recycle ring: the worker produces drained frames, the
                // routing thread consumes them. try_send drops on full.
                let (mut recycle_tx, recycle_rx) =
                    ring::channel::<Vec<SwitchEvent>>(RECYCLE_DEPTH, 1);
                let mut sink = sinks[shard].take();
                let mut infer = inference.clone().map(InlineInference::new);
                let metrics = metrics.clone();
                let join = std::thread::spawn(move || {
                    let mut seq: u64 = 0;
                    // Per-packet vectors scored in-pipeline without a sink
                    // attached are buffered here instead of inside the
                    // engine (they are drained per frame for scoring).
                    let mut local_pkts: Vec<FeatureVector> = Vec::new();
                    while let Ok(mut frame) = rx.recv() {
                        let t0 = metrics.as_ref().map(|_| monotonic_ns());
                        for e in &frame {
                            nic.handle(e);
                        }
                        if let (Some(m), Some(t0)) = (&metrics, t0) {
                            m.shard.record(monotonic_ns().saturating_sub(t0));
                        }
                        if sink.is_some() || infer.is_some() {
                            // Drain this frame's per-packet vectors in
                            // arrival order: score in-pipeline, then divert
                            // to the sink (or buffer locally without one).
                            let t1 = sink.as_ref().and(metrics.as_ref()).map(|_| monotonic_ns());
                            for vector in nic.take_packet_vectors() {
                                if let Some(inf) = infer.as_mut() {
                                    inf.score(shard, seq, &vector);
                                }
                                match sink.as_mut() {
                                    Some(sink) => {
                                        sink.emit(EgressVector { shard, seq, vector });
                                    }
                                    None => local_pkts.push(vector),
                                }
                                seq += 1;
                            }
                            if let (Some(m), Some(t1)) = (&metrics, t1) {
                                m.sink.record(monotonic_ns().saturating_sub(t1));
                            }
                        }
                        frame.clear();
                        // Bounded recycling: hand the frame back if the
                        // recycle ring has room, otherwise drop (free) it.
                        let _ = recycle_tx.try_send(frame);
                    }
                    let groups = nic.finish();
                    let mut pkts = local_pkts;
                    let stragglers = nic.take_packet_vectors();
                    if let Some(inf) = infer.as_mut() {
                        for vector in &stragglers {
                            inf.score(shard, seq, vector);
                            seq += 1;
                        }
                    }
                    pkts.extend(stragglers);
                    // Per-group vectors at end of stream: one seq counter
                    // covers both the inference tags and the sink tags, so
                    // the two streams agree on positions.
                    for vector in &groups {
                        if let Some(inf) = infer.as_mut() {
                            inf.score(shard, seq, vector);
                        }
                        if let Some(sink) = sink.as_mut() {
                            sink.emit(EgressVector {
                                shard,
                                seq,
                                vector: vector.clone(),
                            });
                        }
                        seq += 1;
                    }
                    if let Some(mut sink) = sink.take() {
                        sink.flush();
                        // Dropping the sink here (before the join) closes
                        // any downstream channels it holds.
                    }
                    ShardOutput {
                        groups,
                        pkts,
                        evicted: nic.take_evicted(),
                        stats: *nic.stats(),
                        groups_per_level: nic.groups_per_level(),
                        inline: infer.map(InlineInference::into_parts),
                    }
                });
                Worker {
                    tx,
                    recycle: recycle_rx,
                    join,
                    pending: Vec::with_capacity(FRAME_SIZE),
                }
            })
            .collect();
        Ok(StreamingNic {
            workers,
            spare: Vec::new(),
        })
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Routes one event: Mgpv to its CG-key shard, FgUpdate to every shard.
    ///
    /// Blocks when the target worker is [`CHANNEL_DEPTH`] frames behind
    /// (backpressure). Fails only if a worker thread has died.
    pub fn push(&mut self, event: SwitchEvent) -> Result<(), NicError> {
        match event {
            SwitchEvent::FgUpdate(_) => {
                for w in 0..self.workers.len() {
                    self.workers[w].pending.push(event.clone());
                    self.flush_if_full(w)?;
                }
                Ok(())
            }
            SwitchEvent::Mgpv(ref m) => {
                let w = (m.hash as usize) % self.workers.len();
                self.workers[w].pending.push(event);
                self.flush_if_full(w)
            }
        }
    }

    /// Routes a batch of events in order (a switch frame).
    pub fn push_all(
        &mut self,
        events: impl IntoIterator<Item = SwitchEvent>,
    ) -> Result<(), NicError> {
        for e in events {
            self.push(e)?;
        }
        Ok(())
    }

    /// Drains one frame for worker `w` if it reached [`FRAME_SIZE`].
    fn flush_if_full(&mut self, w: usize) -> Result<(), NicError> {
        if self.workers[w].pending.len() >= FRAME_SIZE {
            self.flush_worker(w)?;
        }
        Ok(())
    }

    /// Sends worker `w`'s pending frame, replacing it with a recycled one.
    ///
    /// The ring doorbell batches publication: the worker is woken once per
    /// [`DOORBELL_FRAMES`] frames (or when the producer blocks on a full
    /// ring, or at [`StreamingNic::finish`]), not once per frame.
    fn flush_worker(&mut self, w: usize) -> Result<(), NicError> {
        if self.workers[w].pending.is_empty() {
            return Ok(());
        }
        let replacement = self.take_spare();
        let frame = std::mem::replace(&mut self.workers[w].pending, replacement);
        self.workers[w]
            .tx
            .send(frame)
            .map_err(|_| NicError::WorkerLost { worker: w })
    }

    /// A recycled frame if one is available, else a fresh allocation.
    fn take_spare(&mut self) -> Vec<SwitchEvent> {
        for w in &mut self.workers {
            while let Ok(f) = w.recycle.try_recv() {
                self.spare.push(f);
            }
        }
        self.spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(FRAME_SIZE))
    }

    /// Flushes remaining frames, closes the rings, joins every worker in
    /// shard order, and merges their outputs deterministically.
    pub fn finish(mut self) -> Result<StreamOutput, NicError> {
        for w in 0..self.workers.len() {
            self.flush_worker(w)?;
        }
        let mut out = StreamOutput {
            group_vectors: Vec::new(),
            packet_vectors: Vec::new(),
            stats: NicStats::default(),
            groups_per_level: Vec::new(),
            evicted_vectors: Vec::new(),
            inline_alerts: Vec::new(),
            inline_stats: None,
        };
        for (i, worker) in self.workers.into_iter().enumerate() {
            // Dropping the producer publishes any staged frames, closes the
            // ring, and wakes the worker; its loop drains and exits.
            drop(worker.tx);
            let shard = worker
                .join
                .join()
                .map_err(|_| NicError::WorkerLost { worker: i })?;
            out.group_vectors.extend(shard.groups);
            out.packet_vectors.extend(shard.pkts);
            out.evicted_vectors.extend(shard.evicted);
            out.stats.absorb(&shard.stats);
            if let Some((alerts, stats)) = shard.inline {
                out.inline_alerts.extend(alerts);
                out.inline_stats
                    .get_or_insert_with(InlineStats::default)
                    .absorb(&stats);
            }
            if out.groups_per_level.is_empty() {
                out.groups_per_level = shard.groups_per_level;
            } else {
                // Every engine reports the same level list in policy order.
                for (acc, (_, n)) in out.groups_per_level.iter_mut().zip(shard.groups_per_level) {
                    acc.1 += n;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::PacketRecord;
    use superfe_policy::compile;
    use superfe_policy::dsl::parse;
    use superfe_switch::FeSwitch;

    fn compiled(src: &str) -> CompiledPolicy {
        compile(&parse(src).unwrap()).unwrap()
    }

    fn run_streaming(c: &CompiledPolicy, n: u32, workers: usize) -> StreamOutput {
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut nic = StreamingNic::new(c, 16_384, workers).unwrap();
        let mut frame = Vec::new();
        for i in 0..n {
            let p = PacketRecord::tcp(u64::from(i) * 100, 100, i % 31 + 1, 1000, 2, 80);
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        nic.finish().unwrap()
    }

    fn sorted(mut v: Vec<FeatureVector>) -> Vec<FeatureVector> {
        v.sort_by(|a, b| format!("{:?}", a.key).cmp(&format!("{:?}", b.key)));
        v
    }

    #[test]
    fn streaming_matches_single_worker() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let seq = run_streaming(&c, 2000, 1);
        let par = run_streaming(&c, 2000, 8);
        assert_eq!(seq.stats.records, 2000);
        assert_eq!(par.stats.records, 2000);
        assert_eq!(sorted(seq.group_vectors), sorted(par.group_vectors));
    }

    #[test]
    fn worker_count_clamped_to_one() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        assert_eq!(StreamingNic::new(&c, 16_384, 0).unwrap().workers(), 1);
    }

    #[test]
    fn merge_order_is_deterministic() {
        // Same input, many runs: output order must be identical every time
        // (workers are joined in shard order, not completion order).
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let baseline = run_streaming(&c, 1500, 4);
        for _ in 0..3 {
            let again = run_streaming(&c, 1500, 4);
            assert_eq!(baseline.group_vectors, again.group_vectors);
            assert_eq!(baseline.packet_vectors, again.packet_vectors);
        }
    }

    #[test]
    fn frames_are_recycled() {
        // Push far more events than CHANNEL_DEPTH × workers frames; with
        // recycling the executor still completes with bounded memory, and
        // every record survives the frame transport.
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let out = run_streaming(&c, 20_000, 2);
        assert_eq!(out.stats.records, 20_000);
        let total: f64 = out.group_vectors.iter().map(|g| g.values[0]).sum();
        assert!((total - 20_000.0 * 100.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn stage_metrics_observe_the_run() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let metrics = Arc::new(StageMetrics::default());
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut nic =
            StreamingNic::with_options(&c, 16_384, 2, None, Some(metrics.clone())).unwrap();
        let mut frame = Vec::new();
        for i in 0..5000u32 {
            let p = PacketRecord::tcp(u64::from(i) * 100, 100, i % 31 + 1, 1000, 2, 80);
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        let out = nic.finish().unwrap();
        assert_eq!(out.stats.records, 5000);
        let s = metrics.summaries();
        // Every delivered frame contributes one queue-dwell and one shard
        // sample; no sink is attached so the sink histogram stays empty.
        assert!(s.queue.count > 0);
        assert_eq!(s.queue.count, s.shard.count);
        assert_eq!(s.sink.count, 0);
        assert!(s.shard.p99_ns >= s.shard.p50_ns);
    }

    /// Collects egressed vectors into a shared buffer for inspection.
    struct CollectSink {
        out: std::sync::Arc<std::sync::Mutex<Vec<EgressVector>>>,
        flushed: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl VectorSink for CollectSink {
        fn emit(&mut self, v: EgressVector) {
            self.out.lock().unwrap().push(v);
        }
        fn flush(&mut self) {
            self.flushed
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    fn run_with_sinks(
        c: &CompiledPolicy,
        n: u32,
        workers: usize,
    ) -> (StreamOutput, Vec<EgressVector>, usize) {
        let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let flushed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let sinks: Vec<Box<dyn VectorSink>> = (0..workers.max(1))
            .map(|_| {
                Box::new(CollectSink {
                    out: out.clone(),
                    flushed: flushed.clone(),
                }) as Box<dyn VectorSink>
            })
            .collect();
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut nic = StreamingNic::with_sinks(c, 16_384, workers, sinks).unwrap();
        let mut frame = Vec::new();
        for i in 0..n {
            let p = PacketRecord::tcp(u64::from(i) * 100, 100, i % 31 + 1, 1000, 2, 80);
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        let merged = nic.finish().unwrap();
        let egressed = std::mem::take(&mut *out.lock().unwrap());
        let flushes = flushed.load(std::sync::atomic::Ordering::SeqCst);
        (merged, egressed, flushes)
    }

    #[test]
    fn sinks_divert_packet_vectors_and_tag_positions() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(pkt)");
        let plain = run_streaming(&c, 2000, 2);
        let (merged, egressed, flushes) = run_with_sinks(&c, 2000, 2);
        // Diverted: the sink sees what the plain run buffered.
        assert!(merged.packet_vectors.is_empty());
        assert_eq!(flushes, 2);
        assert_eq!(egressed.len(), plain.packet_vectors.len());
        let sink_sorted = sorted(egressed.iter().map(|e| e.vector.clone()).collect());
        assert_eq!(sorted(plain.packet_vectors), sink_sorted);
        // Tags: per-shard sequence numbers are dense from 0.
        for shard in 0..2 {
            let mut seqs: Vec<u64> = egressed
                .iter()
                .filter(|e| e.shard == shard)
                .map(|e| e.seq)
                .collect();
            seqs.sort_unstable();
            assert!(seqs.iter().enumerate().all(|(i, &s)| s == i as u64));
        }
    }

    #[test]
    fn sinks_also_see_group_vectors() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let (merged, egressed, _) = run_with_sinks(&c, 500, 3);
        // Group-collect policy: groups are both egressed and returned.
        assert_eq!(egressed.len(), merged.group_vectors.len());
        assert_eq!(
            sorted(egressed.into_iter().map(|e| e.vector).collect()),
            sorted(merged.group_vectors)
        );
    }

    #[test]
    fn sink_count_must_match_workers() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)");
        let err = StreamingNic::with_sinks(&c, 16_384, 2, Vec::new());
        assert!(matches!(err, Err(NicError::Engine(_))));
    }

    fn quant_model(train: &[Vec<f64>]) -> Arc<QuantizedDetector> {
        use superfe_ml::{
            quantize, train_and_calibrate, CalibrationConfig, CentroidDetector, Detector,
            QuantConfig,
        };
        let refs: Vec<&[f64]> = train.iter().map(Vec::as_slice).collect();
        let frozen = train_and_calibrate(
            Box::new(CentroidDetector::new(train[0].len()).unwrap()) as Box<dyn Detector>,
            &refs,
            0.05,
            CalibrationConfig::default(),
        )
        .unwrap();
        Arc::new(quantize(&frozen, &QuantConfig::default()).unwrap())
    }

    fn run_with_inference(
        c: &CompiledPolicy,
        n: u32,
        workers: usize,
        model: Arc<QuantizedDetector>,
    ) -> StreamOutput {
        let mut sw = FeSwitch::new(c.switch.clone()).unwrap();
        let mut nic = StreamingNic::with_inference(c, 16_384, workers, model).unwrap();
        let mut frame = Vec::new();
        for i in 0..n {
            let p = PacketRecord::tcp(u64::from(i) * 100, 100, i % 31 + 1, 1000, 2, 80);
            frame.clear();
            sw.process_into(&p, &mut frame);
            nic.push_all(frame.drain(..)).unwrap();
        }
        frame.clear();
        sw.flush_into(&mut frame);
        nic.push_all(frame.drain(..)).unwrap();
        nic.finish().unwrap()
    }

    #[test]
    fn inline_inference_raises_alerts_on_group_vectors() {
        let c =
            compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_max])\n.collect(host)");
        // Train far away (second axis dominant) from what the pipeline
        // emits ([~6400, 100], first axis dominant): every host alerts.
        let train: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![1.0 + f64::from(i % 5) * 0.1, 500.0 + f64::from(i % 7)])
            .collect();
        let out = run_with_inference(&c, 2000, 2, quant_model(&train));
        let stats = out.inline_stats.expect("inference was attached");
        assert_eq!(stats.scored, out.group_vectors.len() as u64);
        assert_eq!(stats.dim_errors, 0);
        assert_eq!(stats.alerts, out.group_vectors.len() as u64);
        assert_eq!(out.inline_alerts.len(), out.group_vectors.len());
        for a in &out.inline_alerts {
            assert!(a.score > a.threshold);
        }
        // Without inference the same run reports no inline stage at all.
        let plain = run_streaming(&c, 2000, 2);
        assert!(plain.inline_stats.is_none());
        assert!(plain.inline_alerts.is_empty());
        // And the vector outputs themselves are unchanged by scoring.
        assert_eq!(sorted(plain.group_vectors), sorted(out.group_vectors));
    }

    #[test]
    fn inline_alert_stream_is_worker_count_independent() {
        let c =
            compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_max])\n.collect(host)");
        let train: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![1.0 + f64::from(i % 5) * 0.1, 500.0 + f64::from(i % 7)])
            .collect();
        let model = quant_model(&train);
        let mut fingerprints = Vec::new();
        for workers in [1, 2, 4, 8] {
            let out = run_with_inference(&c, 2000, workers, model.clone());
            let mut alerts = out.inline_alerts;
            crate::inference::canonicalize_inline_alerts(&mut alerts);
            fingerprints.push(crate::inference::inline_alert_fingerprint(&alerts));
        }
        assert!(!fingerprints[0].is_empty());
        for fp in &fingerprints[1..] {
            assert_eq!(&fingerprints[0], fp, "alert stream depends on worker count");
        }
    }

    #[test]
    fn inline_inference_scores_packet_vectors_without_diverting_them() {
        let c = compiled("pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(pkt)");
        let train: Vec<Vec<f64>> = (0..64).map(|i| vec![100.0 + f64::from(i % 5)]).collect();
        let out = run_with_inference(&c, 2000, 2, quant_model(&train));
        // No sink attached: scored per-packet vectors are still returned.
        let plain = run_streaming(&c, 2000, 2);
        assert_eq!(out.packet_vectors.len(), plain.packet_vectors.len());
        let stats = out.inline_stats.expect("inference was attached");
        assert_eq!(
            stats.scored,
            (plain.packet_vectors.len() + plain.group_vectors.len()) as u64
        );
        assert_eq!(sorted(out.packet_vectors), sorted(plain.packet_vectors));
    }

    #[test]
    fn multi_granularity_fg_broadcast() {
        // FG updates must reach every worker so finer levels resolve on
        // whichever shard their CG records land.
        let c = compiled(
            "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
             .groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        );
        let out = run_streaming(&c, 600, 4);
        assert_eq!(out.stats.unresolved_fg, 0);
        let hosts = out
            .group_vectors
            .iter()
            .filter(|v| matches!(v.key, superfe_net::GroupKey::Host(_)))
            .count();
        assert_eq!(hosts, 31);
    }
}
