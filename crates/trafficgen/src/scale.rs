//! Corpus-scale streaming workloads: millions of flows, never materialized.
//!
//! The Table 2 presets in [`crate::workload`] build a `Vec` of every packet,
//! which caps them at the 40–60k-packet regime the repository's tests use.
//! Production means *millions of concurrent flows* churning through the MGPV
//! cache and the NIC group tables, under load that is anything but flat:
//! diurnal curves, flash crowds, and attack bursts injected mid-stream.
//!
//! [`ScaleWorkload`] generates that regime as an **iterator** — packets are
//! synthesized on demand in timestamp order and the generator's live state is
//! bounded by [`ScaleConfig::active_cap`] concurrent flows, independent of
//! the total flow count. Everything is deterministic per seed: flow launch
//! times come from inverting the closed-form cumulative load curve, and each
//! flow carries its own 8-byte splitmix64 RNG keyed by `(seed, flow index)`,
//! so a flow's packets do not depend on how flows interleave.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use superfe_net::{Direction, PacketRecord, Protocol};

/// A tiny deterministic RNG (splitmix64): 8 bytes of state per flow, so a
/// full [`ScaleConfig::active_cap`] of live flows stays cheap.
#[derive(Clone, Copy, Debug)]
struct Mix64(u64);

impl Mix64 {
    fn new(seed: u64) -> Self {
        Mix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` excluding 0 (safe for `ln`).
    fn next_unit_pos(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A standard normal via Box–Muller.
    fn next_normal(&mut self) -> f64 {
        let u1 = self.next_unit_pos();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// An exponential sample with the given mean.
    fn next_exp(&mut self, mean: f64) -> f64 {
        -self.next_unit_pos().ln() * mean
    }
}

/// Sinusoidal day/night load modulation of the flow-arrival rate.
///
/// The instantaneous arrival rate at trace fraction `x ∈ [0, 1]` is
/// `1 + amplitude · sin(2π · periods · x − π/2)` — the trace starts at the
/// trough ("night"), peaks mid-period, and completes `periods` full cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Diurnal {
    /// Peak-to-mean swing in `[0, 1)`; 0 disables modulation.
    pub amplitude: f64,
    /// Full day cycles over the trace.
    pub periods: f64,
}

impl Default for Diurnal {
    fn default() -> Self {
        Diurnal {
            amplitude: 0.6,
            periods: 1.0,
        }
    }
}

/// A flash crowd: an additive boost to the flow-arrival rate inside a
/// window of the trace (e.g. a link failover dumping users onto this path).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashCrowd {
    /// Window start as a fraction of the trace duration.
    pub start_frac: f64,
    /// Window end as a fraction of the trace duration.
    pub end_frac: f64,
    /// Additional arrival rate inside the window, in multiples of the mean
    /// background rate (3.0 = 4× total during the crowd).
    pub boost: f64,
}

/// An attack burst injected mid-stream: many short flows from random
/// sources converging on one victim (a Mirai-style SYN/UDP flood shape),
/// which is exactly the adversarial key-cardinality pattern that used to
/// grow the NIC DRAM overflow table without bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackBurst {
    /// Window start as a fraction of the trace duration.
    pub start_frac: f64,
    /// Window end as a fraction of the trace duration.
    pub end_frac: f64,
    /// Number of attack flows launched inside the window.
    pub flows: usize,
    /// Packets per attack flow (short, fixed — floods do not converse).
    pub pkts_per_flow: u32,
    /// Victim address (attack flows all target this host).
    pub victim: u32,
}

impl Default for AttackBurst {
    fn default() -> Self {
        AttackBurst {
            start_frac: 0.55,
            end_frac: 0.65,
            flows: 0,
            pkts_per_flow: 4,
            victim: 0xC0A8_0001,
        }
    }
}

/// Configuration of a corpus-scale stream.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Total background flows over the trace.
    pub flows: usize,
    /// Mean packets per background flow (log-normal, heavy-tailed).
    pub mean_flow_len: f64,
    /// Log-normal sigma of the flow-length distribution.
    pub flow_sigma: f64,
    /// RNG seed; every derived stream is a pure function of the config.
    pub seed: u64,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// Maximum concurrently *live* flows inside the generator — the memory
    /// bound. Launches beyond the cap are deferred until a slot frees (their
    /// start is clamped forward so the stream stays time-sorted).
    pub active_cap: usize,
    /// Day/night arrival-rate modulation.
    pub diurnal: Diurnal,
    /// Flash-crowd windows (additive arrival-rate boosts).
    pub flash_crowds: Vec<FlashCrowd>,
    /// Optional attack burst injected mid-stream.
    pub attack: Option<AttackBurst>,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            flows: 10_000,
            mean_flow_len: 6.0,
            flow_sigma: 1.4,
            seed: 1,
            duration_s: 60.0,
            active_cap: 65_536,
            diurnal: Diurnal::default(),
            flash_crowds: vec![FlashCrowd {
                start_frac: 0.30,
                end_frac: 0.34,
                boost: 3.0,
            }],
            attack: Some(AttackBurst::default()),
        }
    }
}

/// Builder for corpus-scale streams. Start from [`ScaleWorkload::flows`] or
/// a preset, then chain setters.
#[derive(Clone, Debug)]
pub struct ScaleWorkload {
    cfg: ScaleConfig,
}

impl ScaleWorkload {
    /// A stream with `flows` background flows and an attack burst sized to
    /// 10% of the background (the default corpus shape used by
    /// `bench --bin scale`).
    pub fn flows(flows: usize) -> Self {
        let mut cfg = ScaleConfig {
            flows,
            ..ScaleConfig::default()
        };
        if let Some(a) = &mut cfg.attack {
            a.flows = flows / 10;
        }
        ScaleWorkload { cfg }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the mean background flow length (packets).
    pub fn mean_flow_len(mut self, len: f64) -> Self {
        self.cfg.mean_flow_len = len.max(1.0);
        self
    }

    /// Sets the trace duration in seconds.
    pub fn duration_s(mut self, s: f64) -> Self {
        self.cfg.duration_s = s.max(0.001);
        self
    }

    /// Sets the live-flow cap (generator memory bound).
    pub fn active_cap(mut self, cap: usize) -> Self {
        self.cfg.active_cap = cap.max(1);
        self
    }

    /// Replaces the diurnal curve.
    pub fn diurnal(mut self, d: Diurnal) -> Self {
        self.cfg.diurnal = d;
        self
    }

    /// Replaces the flash-crowd windows.
    pub fn flash_crowds(mut self, crowds: Vec<FlashCrowd>) -> Self {
        self.cfg.flash_crowds = crowds;
        self
    }

    /// Replaces (or removes) the attack burst.
    pub fn attack(mut self, attack: Option<AttackBurst>) -> Self {
        self.cfg.attack = attack;
        self
    }

    /// The resolved configuration.
    pub fn config(&self) -> &ScaleConfig {
        &self.cfg
    }

    /// Expected packet count (background mean × flows + attack packets) —
    /// an estimate for sizing benchmark runs, not a promise.
    pub fn expected_packets(&self) -> usize {
        let bg = (self.cfg.flows as f64 * self.cfg.mean_flow_len) as usize;
        let atk = self
            .cfg
            .attack
            .as_ref()
            .map_or(0, |a| a.flows * a.pkts_per_flow as usize);
        bg + atk
    }

    /// Starts streaming. The iterator's live state is bounded by
    /// [`ScaleConfig::active_cap`] flows regardless of `flows`.
    pub fn stream(&self) -> ScaleStream {
        ScaleStream::new(self.cfg.clone())
    }
}

/// Cumulative (unnormalized) arrival mass of the background curve on
/// `[0, x]`: the diurnal sinusoid integrates in closed form and each flash
/// crowd adds `boost × overlap`.
fn arrival_mass(cfg: &ScaleConfig, x: f64) -> f64 {
    let d = cfg.diurnal;
    let mut m = x;
    if d.amplitude > 0.0 && d.periods > 0.0 {
        let w = 2.0 * std::f64::consts::PI * d.periods;
        let phi = -std::f64::consts::FRAC_PI_2;
        // ∫ A·sin(w·t + φ) dt = −A/w · (cos(w·x + φ) − cos φ)
        m -= d.amplitude / w * ((w * x + phi).cos() - phi.cos());
    }
    for c in &cfg.flash_crowds {
        let lo = c.start_frac.clamp(0.0, 1.0);
        let hi = c.end_frac.clamp(0.0, 1.0);
        m += c.boost * (x.min(hi) - lo).max(0.0);
    }
    m
}

/// Inverts the normalized arrival mass by bisection: the trace fraction `x`
/// with `mass(x)/mass(1) = u`.
fn invert_mass(cfg: &ScaleConfig, u: f64) -> f64 {
    let total = arrival_mass(cfg, 1.0);
    let target = u * total;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..52 {
        let mid = 0.5 * (lo + hi);
        if arrival_mass(cfg, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One live flow inside the generator.
#[derive(Clone, Debug)]
struct ActiveFlow {
    rng: Mix64,
    remaining: u32,
    next_ts: u64,
    mean_ipt_ns: f64,
    client: u32,
    server: u32,
    client_port: u16,
    server_port: u16,
    tcp: bool,
    attack: bool,
}

/// Live statistics of a stream (updated as packets are drawn).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScaleStats {
    /// Background flows launched so far.
    pub flows_launched: usize,
    /// Attack flows launched so far.
    pub attack_flows_launched: usize,
    /// Packets emitted so far.
    pub packets: u64,
    /// Attack packets emitted so far.
    pub attack_packets: u64,
    /// High-water mark of concurrently live flows (the generator's memory
    /// bound in action — never exceeds [`ScaleConfig::active_cap`]).
    pub peak_active: usize,
}

/// The streaming iterator over a [`ScaleWorkload`]. Yields packets in
/// non-decreasing timestamp order; memory is `O(active_cap)`.
pub struct ScaleStream {
    cfg: ScaleConfig,
    duration_ns: u64,
    /// Min-heap of `(next packet ts, slot)` over live flows.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    slots: Vec<Option<ActiveFlow>>,
    free: Vec<u32>,
    /// Next background flow index to launch (stratified start times).
    next_bg: usize,
    /// Next attack flow index to launch.
    next_attack: usize,
    last_ts: u64,
    stats: ScaleStats,
}

impl ScaleStream {
    fn new(cfg: ScaleConfig) -> Self {
        let duration_ns = (cfg.duration_s * 1e9) as u64;
        ScaleStream {
            duration_ns,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_bg: 0,
            next_attack: 0,
            last_ts: 0,
            stats: ScaleStats::default(),
            cfg,
        }
    }

    /// Current stream statistics.
    pub fn stats(&self) -> ScaleStats {
        self.stats
    }

    /// Start timestamp of the next pending background flow, if any.
    fn next_bg_start(&self) -> Option<u64> {
        if self.next_bg >= self.cfg.flows {
            return None;
        }
        let u = (self.next_bg as f64 + 0.5) / self.cfg.flows as f64;
        let x = invert_mass(&self.cfg, u);
        Some((x * self.duration_ns as f64) as u64)
    }

    /// Start timestamp of the next pending attack flow, if any.
    fn next_attack_start(&self) -> Option<u64> {
        let a = self.cfg.attack.as_ref()?;
        if self.next_attack >= a.flows {
            return None;
        }
        let u = (self.next_attack as f64 + 0.5) / a.flows as f64;
        let x = a.start_frac + u * (a.end_frac - a.start_frac).max(0.0);
        Some((x.clamp(0.0, 1.0) * self.duration_ns as f64) as u64)
    }

    fn live(&self) -> usize {
        self.heap.len()
    }

    fn take_slot(&mut self, flow: ActiveFlow) -> u32 {
        let ts = flow.next_ts;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(flow);
                s
            }
            None => {
                self.slots.push(Some(flow));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Reverse((ts, slot)));
        self.stats.peak_active = self.stats.peak_active.max(self.live());
        slot
    }

    fn launch_background(&mut self, start: u64) {
        let idx = self.next_bg;
        self.next_bg += 1;
        self.stats.flows_launched += 1;
        // Per-flow RNG keyed by (seed, index): packets are independent of
        // how flows interleave, so tweaking the cap never changes content.
        let mut rng = Mix64::new(self.cfg.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
        let mu = self.cfg.mean_flow_len.ln() - self.cfg.flow_sigma * self.cfg.flow_sigma / 2.0;
        let len = (mu + self.cfg.flow_sigma * rng.next_normal()).exp();
        let remaining = (len.round() as u32).clamp(1, 10_000);
        let client = 0x0A00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF);
        let server = loop {
            let s = rng.next_u64() as u32;
            if s & 0xFF00_0000 != 0x0A00_0000 {
                break s;
            }
        };
        let server_port = [80u16, 443, 53, 123, 8080, 22][(rng.next_u64() % 6) as usize];
        let client_port = 1024 + (rng.next_u64() % (65536 - 1024)) as u16;
        let tcp = rng.next_f64() < 0.8;
        // Pace the flow so it ends inside the trace.
        let budget = (self.duration_ns.saturating_sub(start)) as f64;
        let mean_ipt_ns = 1_000_000.0f64.min((budget / (f64::from(remaining) + 1.0)).max(1000.0));
        self.take_slot(ActiveFlow {
            rng,
            remaining,
            next_ts: start.max(self.last_ts),
            mean_ipt_ns,
            client,
            server,
            client_port,
            server_port,
            tcp,
            attack: false,
        });
    }

    fn launch_attack(&mut self, start: u64) {
        let a = *self.cfg.attack.as_ref().expect("attack configured");
        let idx = self.next_attack;
        self.next_attack += 1;
        self.stats.attack_flows_launched += 1;
        let mut rng =
            Mix64::new(self.cfg.seed ^ 0xA77A_C4B0 ^ (idx as u64).wrapping_mul(0x2545_F491));
        // Spoofed-looking sources: high-entropy addresses, one per flow.
        let client = rng.next_u64() as u32 | 0x0100_0000;
        let client_port = 1024 + (rng.next_u64() % (65536 - 1024)) as u16;
        self.take_slot(ActiveFlow {
            rng,
            remaining: a.pkts_per_flow.max(1),
            next_ts: start.max(self.last_ts),
            mean_ipt_ns: 50_000.0, // 50 µs — flood pacing
            client,
            server: a.victim,
            client_port,
            server_port: 80,
            tcp: true,
            attack: true,
        });
    }

    /// Launches every pending flow that should start at or before `horizon`
    /// (or at least one flow when nothing is live), respecting the cap.
    fn launch_due(&mut self, horizon: Option<u64>) {
        loop {
            if self.live() >= self.cfg.active_cap {
                return;
            }
            let bg = self.next_bg_start();
            let atk = self.next_attack_start();
            let (start, is_attack) = match (bg, atk) {
                (None, None) => return,
                (Some(b), None) => (b, false),
                (None, Some(a)) => (a, true),
                (Some(b), Some(a)) => {
                    if a < b {
                        (a, true)
                    } else {
                        (b, false)
                    }
                }
            };
            match horizon {
                Some(h) if start > h && self.live() > 0 => return,
                _ => {}
            }
            if is_attack {
                self.launch_attack(start);
            } else {
                self.launch_background(start);
            }
        }
    }
}

impl Iterator for ScaleStream {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        let horizon = self.heap.peek().map(|Reverse((ts, _))| *ts);
        self.launch_due(horizon);
        let Reverse((ts, slot)) = self.heap.pop()?;
        let flow = self.slots[slot as usize].as_mut().expect("live slot");

        // Emit one packet of this flow.
        let ingress = flow.attack || flow.rng.next_f64() < 0.6;
        let size: u16 = if flow.attack {
            64
        } else {
            match flow.rng.next_f64() {
                x if x < 0.30 => 1500,
                x if x < 0.80 => 64,
                _ => 600,
            }
        };
        let ts = ts.max(self.last_ts);
        let (src_ip, dst_ip, src_port, dst_port, dir) = if ingress {
            // Client → server is the monitored ingress direction here.
            (
                flow.client,
                flow.server,
                flow.client_port,
                flow.server_port,
                Direction::Ingress,
            )
        } else {
            (
                flow.server,
                flow.client,
                flow.server_port,
                flow.client_port,
                Direction::Egress,
            )
        };
        let mut rec = if flow.tcp {
            PacketRecord::tcp(ts, size, src_ip, src_port, dst_ip, dst_port)
        } else {
            PacketRecord::udp(ts, size, src_ip, src_port, dst_ip, dst_port)
        };
        rec.direction = dir;
        debug_assert_eq!(
            rec.proto,
            if flow.tcp {
                Protocol::Tcp
            } else {
                Protocol::Udp
            }
        );

        self.last_ts = ts;
        self.stats.packets += 1;
        if flow.attack {
            self.stats.attack_packets += 1;
        }
        flow.remaining -= 1;
        if flow.remaining == 0 {
            self.slots[slot as usize] = None;
            self.free.push(slot);
        } else {
            let gap = flow.rng.next_exp(flow.mean_ipt_ns) as u64 + 1;
            flow.next_ts = ts.saturating_add(gap);
            let next = flow.next_ts;
            self.heap.push(Reverse((next, slot)));
        }
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> ScaleWorkload {
        ScaleWorkload::flows(2_000).seed(7).duration_s(10.0)
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<PacketRecord> = small().stream().collect();
        let b: Vec<PacketRecord> = small().stream().collect();
        assert_eq!(a, b);
        let c: Vec<PacketRecord> = small().seed(8).stream().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_time_sorted() {
        let pkts: Vec<PacketRecord> = small().stream().collect();
        assert!(pkts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn launches_every_flow() {
        let mut s = small().stream();
        let n = s.by_ref().count();
        let st = s.stats();
        assert_eq!(st.flows_launched, 2_000);
        assert_eq!(st.attack_flows_launched, 200);
        assert_eq!(st.packets as usize, n);
        assert!(st.attack_packets > 0);
    }

    #[test]
    fn distinct_flow_cardinality_matches() {
        let mut s = ScaleWorkload::flows(5_000).seed(3).stream();
        let mut tuples: HashSet<(u32, u32, u16, u16)> = HashSet::new();
        for p in s.by_ref() {
            let t = if p.direction == Direction::Ingress {
                (p.src_ip, p.dst_ip, p.src_port, p.dst_port)
            } else {
                (p.dst_ip, p.src_ip, p.dst_port, p.src_port)
            };
            tuples.insert(t);
        }
        let launched = s.stats().flows_launched + s.stats().attack_flows_launched;
        // Birthday collisions on random endpoints are possible but rare.
        assert!(tuples.len() > launched * 99 / 100, "{}", tuples.len());
    }

    #[test]
    fn active_cap_bounds_generator_state() {
        let mut s = ScaleWorkload::flows(20_000)
            .seed(5)
            .active_cap(256)
            .stream();
        let n = s.by_ref().count();
        let st = s.stats();
        assert!(st.peak_active <= 256, "peak {}", st.peak_active);
        assert_eq!(st.flows_launched, 20_000);
        assert!(n > 20_000);
    }

    #[test]
    fn diurnal_curve_shifts_launch_mass() {
        // With a single-period diurnal starting at the trough, the first
        // quarter of the trace must launch well under a quarter of flows.
        let cfg = ScaleWorkload::flows(10_000)
            .seed(2)
            .attack(None)
            .flash_crowds(Vec::new())
            .diurnal(Diurnal {
                amplitude: 0.9,
                periods: 1.0,
            });
        let dur_ns = (cfg.config().duration_s * 1e9) as u64;
        let mut s = cfg.stream();
        let mut early = 0usize;
        let mut total = 0usize;
        for p in s.by_ref() {
            total += 1;
            if p.ts_ns < dur_ns / 4 {
                early += 1;
            }
        }
        assert!(
            (early as f64) < total as f64 * 0.15,
            "early {early} of {total}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_arrivals() {
        let no_crowd = ScaleWorkload::flows(8_000)
            .seed(11)
            .attack(None)
            .diurnal(Diurnal {
                amplitude: 0.0,
                periods: 0.0,
            })
            .flash_crowds(Vec::new());
        let crowd = no_crowd.clone().flash_crowds(vec![FlashCrowd {
            start_frac: 0.40,
            end_frac: 0.44,
            boost: 20.0,
        }]);
        let dur_ns = (crowd.config().duration_s * 1e9) as u64;
        let in_window = |w: &ScaleWorkload| {
            w.stream()
                .filter(|p| p.ts_ns >= dur_ns * 40 / 100 && p.ts_ns < dur_ns * 44 / 100)
                .count()
        };
        assert!(in_window(&crowd) > in_window(&no_crowd) * 3);
    }

    #[test]
    fn attack_burst_targets_victim_inside_window() {
        let victim = 0xC0A8_0001;
        let w = ScaleWorkload::flows(4_000).seed(9);
        let dur_ns = (w.config().duration_s * 1e9) as u64;
        let atk = *w.config().attack.as_ref().unwrap();
        let hits: Vec<u64> = w
            .stream()
            .filter(|p| p.dst_ip == victim && p.size == 64)
            .map(|p| p.ts_ns)
            .collect();
        assert!(!hits.is_empty());
        let lo = (atk.start_frac * dur_ns as f64) as u64;
        let hi = (atk.end_frac * dur_ns as f64) as u64;
        // Attack flows start inside the window; their few packets tail off
        // shortly after (50 µs pacing), so allow a small overhang.
        let slack = dur_ns / 20;
        assert!(hits.iter().all(|&t| t + slack >= lo && t <= hi + slack));
    }

    #[test]
    fn expected_packets_is_a_sane_estimate() {
        let w = small();
        let est = w.expected_packets();
        let actual = w.stream().count();
        let err = (actual as f64 - est as f64).abs() / est as f64;
        assert!(err < 0.5, "estimate {est}, actual {actual}");
    }

    #[test]
    fn mass_inversion_round_trips() {
        let cfg = ScaleConfig::default();
        for i in 0..50 {
            let u = f64::from(i) / 50.0;
            let x = invert_mass(&cfg, u);
            let back = arrival_mass(&cfg, x) / arrival_mass(&cfg, 1.0);
            assert!((back - u).abs() < 1e-9, "u {u} x {x} back {back}");
        }
    }
}
