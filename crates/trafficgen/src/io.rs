//! Trace persistence: a compact binary format for saving and replaying
//! generated traces (the repository's stand-in for pcap files).
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! magic "SFET" | version u16 | record count u64 | records...
//! record: ts_ns u64 | size u16 | src u32 | dst u32 | sport u16 | dport u16
//!         | proto u8 | tcp_flags u8 | direction u8          (= 25 bytes)
//! ```

use std::io::{Read, Write};
use std::path::Path;

use superfe_net::{Direction, PacketRecord, Protocol};

use crate::workload::Trace;

/// File magic.
pub const MAGIC: [u8; 4] = *b"SFET";
/// Current format version.
pub const VERSION: u16 = 1;
/// Bytes per serialized record.
pub const RECORD_BYTES: usize = 25;

/// Errors from reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The magic bytes do not match.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// The body is shorter than the header promised.
    Truncated,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => f.write_str("not a SuperFE trace file (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::Truncated => f.write_str("trace file is truncated"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serializes a trace into a writer.
pub fn write_trace(trace: &Trace, w: &mut impl Write) -> Result<(), TraceIoError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_be_bytes())?;
    w.write_all(&(trace.records.len() as u64).to_be_bytes())?;
    let mut buf = Vec::with_capacity(trace.records.len() * RECORD_BYTES);
    for r in &trace.records {
        buf.extend_from_slice(&r.ts_ns.to_be_bytes());
        buf.extend_from_slice(&r.size.to_be_bytes());
        buf.extend_from_slice(&r.src_ip.to_be_bytes());
        buf.extend_from_slice(&r.dst_ip.to_be_bytes());
        buf.extend_from_slice(&r.src_port.to_be_bytes());
        buf.extend_from_slice(&r.dst_port.to_be_bytes());
        buf.push(r.proto.number());
        buf.push(r.tcp_flags);
        buf.push(u8::from(r.direction == Direction::Ingress));
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Deserializes a trace from a reader.
pub fn read_trace(r: &mut impl Read) -> Result<Trace, TraceIoError> {
    let mut header = [0u8; 4 + 2 + 8];
    r.read_exact(&mut header)
        .map_err(|_| TraceIoError::Truncated)?;
    if header[0..4] != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let count = u64::from_be_bytes(header[6..14].try_into().expect("8 bytes")) as usize;
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    if body.len() < count * RECORD_BYTES {
        return Err(TraceIoError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for chunk in body.chunks_exact(RECORD_BYTES).take(count) {
        let ts_ns = u64::from_be_bytes(chunk[0..8].try_into().expect("8"));
        let size = u16::from_be_bytes([chunk[8], chunk[9]]);
        let src_ip = u32::from_be_bytes(chunk[10..14].try_into().expect("4"));
        let dst_ip = u32::from_be_bytes(chunk[14..18].try_into().expect("4"));
        let src_port = u16::from_be_bytes([chunk[18], chunk[19]]);
        let dst_port = u16::from_be_bytes([chunk[20], chunk[21]]);
        records.push(PacketRecord {
            ts_ns,
            size,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::from_number(chunk[22]),
            tcp_flags: chunk[23],
            direction: if chunk[24] != 0 {
                Direction::Ingress
            } else {
                Direction::Egress
            },
        });
    }
    Ok(Trace { records })
}

/// Saves a trace to a file.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let mut f = std::fs::File::create(path)?;
    write_trace(trace, &mut f)
}

/// Loads a trace from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    let mut f = std::fs::File::open(path)?;
    read_trace(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn round_trip_preserves_records() {
        let t = Workload::campus().packets(3_000).seed(5).generate();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 14 + t.len() * RECORD_BYTES);
        let got = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(got.records, t.records);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::default();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let got = read_trace(&mut buf.as_slice()).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_trace(&Trace::default(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceIoError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&Trace::default(), &mut buf).unwrap();
        buf[5] = 99;
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceIoError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let t = Workload::campus().packets(100).seed(1).generate();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceIoError::Truncated)
        ));
        assert!(matches!(
            read_trace(&mut &buf[..3]),
            Err(TraceIoError::Truncated)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("superfe_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sft");
        let t = Workload::enterprise().packets(500).seed(2).generate();
        save(&t, &path).unwrap();
        let got = load(&path).unwrap();
        assert_eq!(got.records, t.records);
        assert!(load(dir.join("missing.sft")).is_err());
    }

    #[test]
    fn error_display() {
        assert!(TraceIoError::BadMagic.to_string().contains("magic"));
        assert!(TraceIoError::BadVersion(7).to_string().contains('7'));
        assert!(TraceIoError::Truncated.to_string().contains("truncated"));
    }

    mod properties {
        use proptest::prelude::*;

        use super::super::*;
        use crate::workload::Trace;

        /// Arbitrary records over the full field domains — not
        /// workload-shaped traffic, so the format is exercised on inputs
        /// the generator would never produce (extreme timestamps, port 0,
        /// unknown IP protocols). `proto` goes through `from_number` so
        /// the generated value is canonical (6 is always `Tcp`, never
        /// `Other(6)`), matching what a decode can reconstruct.
        fn record() -> impl Strategy<Value = PacketRecord> {
            (
                (
                    0u64..=u64::MAX,
                    0u16..=u16::MAX,
                    0u32..=u32::MAX,
                    0u32..=u32::MAX,
                ),
                (
                    0u16..=u16::MAX,
                    0u16..=u16::MAX,
                    0u8..=u8::MAX,
                    0u8..=u8::MAX,
                ),
                proptest::bool::ANY,
            )
                .prop_map(
                    |(
                        (ts_ns, size, src_ip, dst_ip),
                        (src_port, dst_port, proto, tcp_flags),
                        ingress,
                    )| {
                        PacketRecord {
                            ts_ns,
                            size,
                            src_ip,
                            dst_ip,
                            src_port,
                            dst_port,
                            proto: Protocol::from_number(proto),
                            tcp_flags,
                            direction: if ingress {
                                Direction::Ingress
                            } else {
                                Direction::Egress
                            },
                        }
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// write → read is the identity on any trace, and the encoding
            /// size is exactly what the header format promises.
            #[test]
            fn write_read_round_trip_is_identity(
                records in proptest::collection::vec(record(), 0..300),
            ) {
                let t = Trace { records };
                let mut buf = Vec::new();
                write_trace(&t, &mut buf).unwrap();
                prop_assert_eq!(buf.len(), 14 + t.records.len() * RECORD_BYTES);
                let got = read_trace(&mut buf.as_slice()).unwrap();
                prop_assert_eq!(got.records, t.records);
            }

            /// Cutting the file anywhere short of its full length is always
            /// reported as `Truncated` — never a panic, never a silent
            /// partial decode.
            #[test]
            fn any_truncation_is_detected(
                records in proptest::collection::vec(record(), 1..50),
                cut_seed in 0usize..10_000,
            ) {
                let t = Trace { records };
                let mut buf = Vec::new();
                write_trace(&t, &mut buf).unwrap();
                let cut = cut_seed % buf.len();
                prop_assert!(matches!(
                    read_trace(&mut &buf[..cut]),
                    Err(TraceIoError::Truncated)
                ));
            }

            /// Any single-byte corruption of the magic or version header
            /// fields is rejected with the matching typed error.
            #[test]
            fn corrupted_header_is_rejected(
                records in proptest::collection::vec(record(), 0..20),
                pos in 0usize..6,
                xor in 1u8..=u8::MAX,
            ) {
                let t = Trace { records };
                let mut buf = Vec::new();
                write_trace(&t, &mut buf).unwrap();
                buf[pos] ^= xor;
                let e = read_trace(&mut buf.as_slice()).unwrap_err();
                if pos < 4 {
                    prop_assert!(matches!(e, TraceIoError::BadMagic), "{e:?}");
                } else {
                    prop_assert!(matches!(e, TraceIoError::BadVersion(_)), "{e:?}");
                }
            }
        }
    }
}
