//! Trace replay utilities: amplification and rate assignment.
//!
//! The paper replays traces with MoonGen at up to 40 Gbps and amplifies them
//! in the switch (IMap/Hypertester-style packet replication) for
//! multi-100Gbps experiments. These helpers provide the software equivalent:
//! [`amplify`] replicates a trace with rewritten addresses, and
//! [`rescale_to_gbps`] re-times a trace so it plays at a target offered load.

use superfe_net::PacketRecord;

use crate::workload::Trace;

/// Replicates a trace `factor` times, rewriting source/destination addresses
/// per replica so replicas form distinct flows (like switch-based packet
/// replication does).
///
/// Timestamps are preserved, so amplification raises the offered *rate* by
/// `factor` without changing the temporal profile. Returns the original
/// trace when `factor <= 1`.
pub fn amplify(trace: &Trace, factor: usize) -> Trace {
    if factor <= 1 {
        return trace.clone();
    }
    let mut records: Vec<PacketRecord> = Vec::with_capacity(trace.len() * factor);
    for rep in 0..factor as u32 {
        // XOR-based rewrite keeps internal/external address structure in the
        // low bits while making replica flows distinct.
        let salt = rep << 8;
        for r in &trace.records {
            let mut c = *r;
            c.src_ip ^= salt;
            c.dst_ip ^= salt;
            records.push(c);
        }
    }
    records.sort_by_key(|r| r.ts_ns);
    Trace { records }
}

/// Rescales timestamps so the trace plays at `gbps` gigabits per second.
///
/// Returns `None` if the trace is empty or `gbps <= 0`.
pub fn rescale_to_gbps(trace: &Trace, gbps: f64) -> Option<Trace> {
    if trace.is_empty() || gbps <= 0.0 {
        return None;
    }
    let total_bits: f64 = trace.records.iter().map(|r| f64::from(r.size) * 8.0).sum();
    let target_duration_ns = total_bits / gbps; // bits / (Gb/s) = ns
    let first = trace.records.first().expect("non-empty").ts_ns;
    let last = trace.records.last().expect("non-empty").ts_ns;
    let span = (last - first).max(1) as f64;
    let scale = target_duration_ns / span;
    let records = trace
        .records
        .iter()
        .map(|r| {
            let mut c = *r;
            c.ts_ns = ((r.ts_ns - first) as f64 * scale) as u64;
            c
        })
        .collect();
    Some(Trace { records })
}

/// Offered load of a trace in Gbps.
pub fn offered_gbps(trace: &Trace) -> f64 {
    let s = trace.stats();
    if s.duration_ns == 0 {
        return 0.0;
    }
    (s.total_bytes as f64 * 8.0) / s.duration_ns as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn amplify_multiplies_packets_and_flows() {
        let t = Workload::enterprise().packets(2_000).seed(1).generate();
        let s0 = t.stats();
        let a = amplify(&t, 4);
        let s1 = a.stats();
        assert_eq!(s1.packets, s0.packets * 4);
        assert!(s1.flows > s0.flows * 3, "{} vs {}", s1.flows, s0.flows);
        // Duration unchanged -> rate multiplied.
        assert_eq!(s1.duration_ns, s0.duration_ns);
    }

    #[test]
    fn amplify_factor_one_is_identity() {
        let t = Workload::campus().packets(500).seed(1).generate();
        assert_eq!(amplify(&t, 1).records, t.records);
        assert_eq!(amplify(&t, 0).records, t.records);
    }

    #[test]
    fn rescale_hits_target_rate() {
        let t = Workload::mawi().packets(20_000).seed(2).generate();
        let r = rescale_to_gbps(&t, 100.0).unwrap();
        let got = offered_gbps(&r);
        assert!((got - 100.0).abs() / 100.0 < 0.05, "got {got} Gbps");
    }

    #[test]
    fn rescale_rejects_bad_input() {
        let t = Trace::default();
        assert!(rescale_to_gbps(&t, 10.0).is_none());
        let t = Workload::mawi().packets(100).seed(1).generate();
        assert!(rescale_to_gbps(&t, 0.0).is_none());
    }

    #[test]
    fn rescale_preserves_order_and_count() {
        let t = Workload::campus().packets(3_000).seed(3).generate();
        let r = rescale_to_gbps(&t, 40.0).unwrap();
        assert_eq!(r.len(), t.len());
        assert!(r.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
