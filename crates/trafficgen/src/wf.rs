//! Website-fingerprinting scenario (stand-in for the Sirinam et al. dataset).
//!
//! Each synthetic "site" has a stable signature — a characteristic list of
//! object sizes fetched over one connection. A visit renders the signature
//! into a packet exchange (small egress requests, MTU-sized ingress response
//! bursts) with noise, so direction sequences carry exactly the kind of
//! per-site structure AWF/DF/TF-style classifiers exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use superfe_net::{Direction, FiveTuple, PacketRecord};

use crate::workload::Trace;

/// Configuration for the website-fingerprinting generator.
#[derive(Clone, Copy, Debug)]
pub struct WfConfig {
    /// Number of distinct sites (classes).
    pub sites: usize,
    /// Visits (trace samples) per site.
    pub visits_per_site: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WfConfig {
    fn default() -> Self {
        WfConfig {
            sites: 20,
            visits_per_site: 30,
            seed: 1,
        }
    }
}

/// One labelled visit: the flow key identifies the packets in the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Visit {
    /// Canonical flow key of the visit's connection.
    pub flow: FiveTuple,
    /// Site (class) index in `0..sites`.
    pub site: usize,
}

/// A labelled website-fingerprinting dataset.
#[derive(Clone, Debug)]
pub struct WfDataset {
    /// All visits' packets, merged and time-sorted.
    pub trace: Trace,
    /// Per-visit labels.
    pub visits: Vec<Visit>,
}

/// Generates a labelled WF dataset.
pub fn generate(cfg: &WfConfig) -> WfDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Stable per-site signatures: object count and sizes drawn from a
    // site-seeded RNG so every visit to the same site shares structure.
    let signatures: Vec<Vec<u32>> = (0..cfg.sites)
        .map(|site| {
            let mut srng = StdRng::seed_from_u64(cfg.seed ^ (0x5157_0000 + site as u64));
            let objects = srng.random_range(3..24usize);
            (0..objects)
                .map(|_| srng.random_range(1_000..200_000u32))
                .collect()
        })
        .collect();

    let mut records = Vec::new();
    let mut visits = Vec::new();
    let mut ts_base = 0u64;

    for (site, signature) in signatures.iter().enumerate() {
        for _ in 0..cfg.visits_per_site {
            let client: u32 = 0x0A00_0000 | rng.random_range(1..0x00FF_FFFFu32);
            let server: u32 = 0xC0A8_0000u32.wrapping_add(site as u32 * 7 + 1) | 0x2000_0000;
            let cport: u16 = rng.random_range(20_000..60_000);
            let flow = FiveTuple {
                src_ip: client,
                dst_ip: server,
                src_port: cport,
                dst_port: 443,
                proto: 6,
            }
            .canonical()
            .0;

            let mut ts = ts_base + rng.random_range(0..5_000_000u64);
            for &obj in signature {
                // Request: 1-2 small egress packets.
                for _ in 0..rng.random_range(1..3u32) {
                    records.push(
                        PacketRecord::tcp(
                            ts,
                            rng.random_range(80..300),
                            client,
                            cport,
                            server,
                            443,
                        )
                        .with_direction(Direction::Egress),
                    );
                    ts += rng.random_range(50_000..200_000u64);
                }
                // Response: ceil(obj/1448) ingress MTU packets with ±5% size noise.
                let jitter = 1.0 + (rng.random::<f64>() - 0.5) * 0.1;
                let body = (f64::from(obj) * jitter) as u32;
                let full = body / 1448;
                for _ in 0..full {
                    records.push(
                        PacketRecord::tcp(ts, 1500, server, 443, client, cport)
                            .with_direction(Direction::Ingress),
                    );
                    ts += rng.random_range(10_000..60_000u64);
                }
                let tail = (body % 1448) as u16;
                if tail > 0 {
                    records.push(
                        PacketRecord::tcp(ts, tail.max(64), server, 443, client, cport)
                            .with_direction(Direction::Ingress),
                    );
                    ts += rng.random_range(10_000..60_000u64);
                }
            }
            visits.push(Visit { flow, site });
            // Space visits out so flows do not collide in time-based caches.
            ts_base = ts + 1_000_000;
        }
    }

    WfDataset {
        trace: Trace::from_records(records),
        visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WfDataset {
        generate(&WfConfig {
            sites: 5,
            visits_per_site: 4,
            seed: 11,
        })
    }

    #[test]
    fn produces_expected_visit_count() {
        let d = small();
        assert_eq!(d.visits.len(), 20);
        assert!(!d.trace.is_empty());
    }

    #[test]
    fn visits_have_distinct_flows() {
        let d = small();
        let mut flows: Vec<_> = d.visits.iter().map(|v| v.flow).collect();
        flows.sort();
        flows.dedup();
        assert_eq!(flows.len(), d.visits.len());
    }

    #[test]
    fn every_visit_has_packets_in_both_directions() {
        let d = small();
        for v in &d.visits {
            let pkts: Vec<_> = d
                .trace
                .records
                .iter()
                .filter(|r| FiveTuple::of(r).canonical().0 == v.flow)
                .collect();
            assert!(pkts.len() >= 3, "visit has too few packets");
            assert!(pkts.iter().any(|p| p.direction == Direction::Ingress));
            assert!(pkts.iter().any(|p| p.direction == Direction::Egress));
        }
    }

    #[test]
    fn same_site_visits_have_similar_length() {
        // The signature fixes object structure, so two visits to one site
        // should have packet counts within 25% of each other, while packet
        // counts across sites generally differ.
        let d = generate(&WfConfig {
            sites: 2,
            visits_per_site: 3,
            seed: 3,
        });
        let count = |flow: FiveTuple| {
            d.trace
                .records
                .iter()
                .filter(|r| FiveTuple::of(r).canonical().0 == flow)
                .count() as f64
        };
        let site0: Vec<f64> = d
            .visits
            .iter()
            .filter(|v| v.site == 0)
            .map(|v| count(v.flow))
            .collect();
        let mean0 = site0.iter().sum::<f64>() / site0.len() as f64;
        for c in &site0 {
            assert!((c - mean0).abs() / mean0 < 0.25, "{c} vs {mean0}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.trace.records, b.trace.records);
        assert_eq!(a.visits, b.visits);
    }
}
