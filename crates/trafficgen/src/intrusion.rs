//! Intrusion-detection scenarios (stand-in for the Kitsune/Mirai captures).
//!
//! Each scenario mixes benign background traffic with one attack pattern and
//! labels every packet, so end-to-end detection accuracy (Fig. 11) can be
//! evaluated per scenario like the paper does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use superfe_net::packet::tcp_flags;
use superfe_net::{Direction, PacketRecord, Protocol};

use crate::dist::Exponential;
use crate::workload::Trace;

/// Attack scenarios, mirroring the Kitsune evaluation set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// A single host SYN-scans many addresses and ports.
    OsScan,
    /// UDP SSDP amplification flood toward one victim.
    SsdpFlood,
    /// TCP SYN flood toward one victim service.
    SynDos,
    /// Malformed/random probe traffic against one service.
    Fuzzing,
    /// Mirai-style: telnet scanning plus C2 beaconing from infected hosts.
    Mirai,
}

impl Scenario {
    /// Display name as used in Fig. 11.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::OsScan => "OS_Scan",
            Scenario::SsdpFlood => "SSDP_Flood",
            Scenario::SynDos => "SYN_DoS",
            Scenario::Fuzzing => "Fuzzing",
            Scenario::Mirai => "Mirai",
        }
    }

    /// All scenarios, in display order.
    pub fn all() -> [Scenario; 5] {
        [
            Scenario::OsScan,
            Scenario::SsdpFlood,
            Scenario::SynDos,
            Scenario::Fuzzing,
            Scenario::Mirai,
        ]
    }
}

/// Configuration for the intrusion generator.
#[derive(Clone, Copy, Debug)]
pub struct IntrusionConfig {
    /// Which attack to embed.
    pub scenario: Scenario,
    /// Number of benign background packets.
    pub benign_packets: usize,
    /// Number of attack packets.
    pub attack_packets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IntrusionConfig {
    fn default() -> Self {
        IntrusionConfig {
            scenario: Scenario::OsScan,
            benign_packets: 20_000,
            attack_packets: 5_000,
            seed: 1,
        }
    }
}

/// A labelled intrusion dataset: packets with per-packet attack labels.
#[derive(Clone, Debug)]
pub struct IntrusionDataset {
    /// Packets paired with their label (`true` = attack), time-sorted.
    pub labelled: Vec<(PacketRecord, bool)>,
}

impl IntrusionDataset {
    /// The packets alone, as a [`Trace`].
    pub fn trace(&self) -> Trace {
        Trace {
            records: self.labelled.iter().map(|(r, _)| *r).collect(),
        }
    }

    /// The labels, aligned with [`IntrusionDataset::trace`].
    pub fn labels(&self) -> Vec<bool> {
        self.labelled.iter().map(|&(_, l)| l).collect()
    }
}

/// Generates a labelled intrusion dataset for one scenario.
pub fn generate(cfg: &IntrusionConfig) -> IntrusionDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let duration_ns: u64 = 30_000_000_000; // 30 s
    let mut labelled: Vec<(PacketRecord, bool)> = Vec::new();

    // --- Benign background: normal client/server flows. ---
    let ipt = Exponential::new(1.0 / 40_000_000.0).expect("positive rate");
    while labelled.len() < cfg.benign_packets {
        let client: u32 = 0x0A00_0000 | rng.random_range(1..200u32);
        let server: u32 = 0x0A00_0000 | rng.random_range(200..255u32);
        let cport: u16 = rng.random_range(1024..60_000);
        let sport: u16 = *[80u16, 443, 22, 1883]
            .get(rng.random_range(0..4usize))
            .expect("idx");
        let len = rng.random_range(4..60usize);
        let mut ts = rng.random_range(0..duration_ns);
        for _ in 0..len.min(cfg.benign_packets - labelled.len()) {
            let up = rng.random::<f64>() < 0.4;
            let size: u16 = if up {
                rng.random_range(64..500)
            } else {
                rng.random_range(400..1500)
            };
            let rec = if up {
                PacketRecord::tcp(ts, size, client, cport, server, sport)
                    .with_direction(Direction::Egress)
            } else {
                PacketRecord::tcp(ts, size, server, sport, client, cport)
                    .with_direction(Direction::Ingress)
            };
            labelled.push((rec, false));
            ts += ipt.sample(&mut rng) as u64 + 1;
        }
    }

    // --- Attack traffic. ---
    let attacker: u32 = 0xDEAD_0000 | rng.random_range(1..0xFFFFu32);
    let victim: u32 = 0x0A00_0000 | rng.random_range(1..255u32);
    for i in 0..cfg.attack_packets {
        let ts = rng.random_range(duration_ns / 4..duration_ns);
        let rec = match cfg.scenario {
            Scenario::OsScan => {
                // One SYN per (host, port): tiny packets, huge fan-out.
                let dst: u32 = 0x0A00_0000 | rng.random_range(1..4096u32);
                let port: u16 = rng.random_range(1..1024);
                PacketRecord::tcp(ts, 60, attacker, rng.random_range(1024..65000), dst, port)
                    .with_flags(tcp_flags::SYN)
                    .with_direction(Direction::Ingress)
            }
            Scenario::SsdpFlood => {
                // Spoofed-source UDP 1900 responses flooding the victim.
                let reflector: u32 = rng.random::<u32>() | 0x8000_0000;
                PacketRecord::udp(
                    ts,
                    rng.random_range(300..500),
                    reflector,
                    1900,
                    victim,
                    rng.random_range(1024..65000),
                )
                .with_direction(Direction::Ingress)
            }
            Scenario::SynDos => {
                let spoofed: u32 = rng.random::<u32>();
                PacketRecord::tcp(ts, 60, spoofed, rng.random_range(1024..65000), victim, 80)
                    .with_flags(tcp_flags::SYN)
                    .with_direction(Direction::Ingress)
            }
            Scenario::Fuzzing => {
                let port: u16 = rng.random_range(1..65535);
                let size: u16 = rng.random_range(60..1500);
                let mut r = PacketRecord::tcp(
                    ts,
                    size,
                    attacker,
                    rng.random_range(1024..65000),
                    victim,
                    port,
                )
                .with_flags(rng.random::<u8>())
                .with_direction(Direction::Ingress);
                if rng.random::<bool>() {
                    r.proto = Protocol::Udp;
                    r.tcp_flags = 0;
                }
                r
            }
            Scenario::Mirai => {
                if i % 5 == 0 {
                    // C2 beacon from an infected internal host.
                    let infected: u32 = 0x0A00_0000 | rng.random_range(1..50u32);
                    let c2: u32 = 0xC2C2_0000 | rng.random_range(1..255u32);
                    PacketRecord::tcp(ts, 92, infected, 48101, c2, 48101)
                        .with_direction(Direction::Egress)
                } else {
                    // Telnet scan.
                    let dst: u32 = 0x0A00_0000 | rng.random_range(1..8192u32);
                    let port = if rng.random::<bool>() { 23 } else { 2323 };
                    PacketRecord::tcp(ts, 60, attacker, rng.random_range(1024..65000), dst, port)
                        .with_flags(tcp_flags::SYN)
                        .with_direction(Direction::Ingress)
                }
            }
        };
        labelled.push((rec, true));
    }

    labelled.sort_by_key(|(r, _)| r.ts_ns);
    IntrusionDataset { labelled }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(s: Scenario) -> IntrusionDataset {
        generate(&IntrusionConfig {
            scenario: s,
            benign_packets: 2_000,
            attack_packets: 500,
            seed: 7,
        })
    }

    #[test]
    fn label_counts_match() {
        for s in Scenario::all() {
            let d = small(s);
            let attacks = d.labels().iter().filter(|&&l| l).count();
            assert_eq!(attacks, 500, "{}", s.name());
            assert!(d.labelled.len() >= 2_500);
        }
    }

    #[test]
    fn trace_is_sorted() {
        let d = small(Scenario::SynDos);
        let t = d.trace();
        assert!(t.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn os_scan_has_high_fanout() {
        let d = small(Scenario::OsScan);
        use std::collections::HashSet;
        let mut dsts: HashSet<(u32, u16)> = HashSet::new();
        let mut src = None;
        for (r, l) in &d.labelled {
            if *l {
                dsts.insert((r.dst_ip, r.dst_port));
                src = Some(r.src_ip);
            }
        }
        assert!(dsts.len() > 400, "fan-out {}", dsts.len());
        assert!(src.is_some());
    }

    #[test]
    fn ssdp_flood_targets_one_victim() {
        let d = small(Scenario::SsdpFlood);
        use std::collections::HashSet;
        let victims: HashSet<u32> = d
            .labelled
            .iter()
            .filter(|(_, l)| *l)
            .map(|(r, _)| r.dst_ip)
            .collect();
        assert_eq!(victims.len(), 1);
        assert!(d
            .labelled
            .iter()
            .filter(|(_, l)| *l)
            .all(|(r, _)| r.proto == Protocol::Udp && r.src_port == 1900));
    }

    #[test]
    fn syn_dos_packets_are_syns() {
        let d = small(Scenario::SynDos);
        assert!(d
            .labelled
            .iter()
            .filter(|(_, l)| *l)
            .all(|(r, _)| r.tcp_flags == tcp_flags::SYN && r.size == 60));
    }

    #[test]
    fn scenario_names_are_stable() {
        assert_eq!(Scenario::OsScan.name(), "OS_Scan");
        assert_eq!(Scenario::all().len(), 5);
    }

    #[test]
    fn deterministic() {
        let a = small(Scenario::Mirai);
        let b = small(Scenario::Mirai);
        assert_eq!(a.labelled, b.labelled);
    }
}
