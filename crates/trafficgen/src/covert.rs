//! Timing covert-channel scenario (stand-in for the Wang et al. dataset).
//!
//! Covert flows exfiltrate bits by modulating inter-packet times into a
//! bimodal distribution (short gap = 0, long gap = 1); overt flows draw gaps
//! from a smooth exponential. IPT histograms — the NPOD feature — and IPT
//! variance statistics — the MPTD features — separate the two.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use superfe_net::{Direction, FiveTuple, PacketRecord};

use crate::dist::Exponential;
use crate::workload::Trace;

/// Configuration for the covert-channel generator.
#[derive(Clone, Copy, Debug)]
pub struct CovertConfig {
    /// Number of covert flows.
    pub covert_flows: usize,
    /// Number of overt (normal) flows.
    pub normal_flows: usize,
    /// Packets per flow.
    pub flow_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CovertConfig {
    fn default() -> Self {
        CovertConfig {
            covert_flows: 30,
            normal_flows: 120,
            flow_len: 200,
            seed: 1,
        }
    }
}

/// A labelled covert-channel dataset.
#[derive(Clone, Debug)]
pub struct CovertDataset {
    /// Merged, time-sorted packets.
    pub trace: Trace,
    /// Canonical flow keys of the covert flows.
    pub covert: HashSet<FiveTuple>,
}

/// Generates a labelled covert-channel dataset.
pub fn generate(cfg: &CovertConfig) -> CovertDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut records = Vec::new();
    let mut covert = HashSet::new();

    let mean_gap_ns = 20_000_000.0; // 20 ms
    let short_gap = 8_000_000u64; // "0" symbol
    let long_gap = 32_000_000u64; // "1" symbol

    for i in 0..(cfg.covert_flows + cfg.normal_flows) {
        let is_covert = i < cfg.covert_flows;
        let client: u32 = 0x0A00_0000 | (i as u32 + 1);
        let server: u32 = 0x5060_0000 | rng.random_range(1..0xFFFFu32);
        let cport: u16 = rng.random_range(1024..60_000);
        let ft = FiveTuple {
            src_ip: client,
            dst_ip: server,
            src_port: cport,
            dst_port: 8443,
            proto: 6,
        };
        if is_covert {
            covert.insert(ft.canonical().0);
        }

        let normal_ipt = Exponential::new(1.0 / mean_gap_ns).expect("positive rate");
        let mut ts = rng.random_range(0..1_000_000_000u64);
        for _ in 0..cfg.flow_len {
            let size: u16 = rng.random_range(100..1200);
            records.push(
                PacketRecord::tcp(ts, size, client, cport, server, 8443)
                    .with_direction(Direction::Egress),
            );
            let gap = if is_covert {
                // Encode a random bit; tight jitter keeps the modes sharp.
                let base = if rng.random::<bool>() {
                    long_gap
                } else {
                    short_gap
                };
                base + rng.random_range(0..1_000_000u64)
            } else {
                normal_ipt.sample(&mut rng) as u64 + 1
            };
            ts += gap;
        }
    }

    CovertDataset {
        trace: Trace::from_records(records),
        covert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CovertDataset {
        generate(&CovertConfig {
            covert_flows: 5,
            normal_flows: 10,
            flow_len: 100,
            seed: 2,
        })
    }

    fn flow_ipts(d: &CovertDataset, flow: FiveTuple) -> Vec<f64> {
        let mut ts: Vec<u64> = d
            .trace
            .records
            .iter()
            .filter(|r| FiveTuple::of(r).canonical().0 == flow)
            .map(|r| r.ts_ns)
            .collect();
        ts.sort();
        ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect()
    }

    #[test]
    fn counts_match_config() {
        let d = small();
        assert_eq!(d.covert.len(), 5);
        assert_eq!(d.trace.len(), 15 * 100);
    }

    #[test]
    fn covert_ipts_are_bimodal() {
        let d = small();
        let flow = *d.covert.iter().next().unwrap();
        let ipts = flow_ipts(&d, flow);
        // Every gap should be near one of the two symbols.
        let near_mode = ipts
            .iter()
            .filter(|&&g| (7e6..10e6).contains(&g) || (31e6..34e6).contains(&g))
            .count();
        assert!(
            near_mode as f64 / ipts.len() as f64 > 0.95,
            "only {near_mode}/{} near modes",
            ipts.len()
        );
    }

    #[test]
    fn normal_ipts_are_spread() {
        let d = small();
        // Find a normal flow.
        let flow = d
            .trace
            .records
            .iter()
            .map(|r| FiveTuple::of(r).canonical().0)
            .find(|f| !d.covert.contains(f))
            .unwrap();
        let ipts = flow_ipts(&d, flow);
        // Exponential gaps include many below the covert short-gap mode.
        let tiny = ipts.iter().filter(|&&g| g < 5e6).count();
        assert!(tiny > ipts.len() / 10, "{tiny} tiny gaps");
    }

    #[test]
    fn deterministic() {
        assert_eq!(small().trace.records, small().trace.records);
    }
}
