//! P2P botnet scenario (stand-in for the PeerShark / N-BaIoT datasets).
//!
//! Bots hold long-lived pairwise conversations with *regular* beacon
//! intervals and small, near-constant packet sizes; benign hosts produce
//! bursty, size-diverse client/server traffic. Per-IP-connection statistics
//! of packet size and inter-packet time therefore separate the classes —
//! exactly the features PeerShark and N-BaIoT compute.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use superfe_net::{Direction, PacketRecord};

use crate::dist::Exponential;
use crate::workload::Trace;

/// Configuration for the botnet generator.
#[derive(Clone, Copy, Debug)]
pub struct BotnetConfig {
    /// Number of bot hosts (each talks to several peers).
    pub bots: usize,
    /// Number of benign hosts.
    pub benign: usize,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BotnetConfig {
    fn default() -> Self {
        BotnetConfig {
            bots: 10,
            benign: 40,
            duration_s: 60.0,
            seed: 1,
        }
    }
}

/// A labelled botnet dataset.
#[derive(Clone, Debug)]
pub struct BotnetDataset {
    /// Merged, time-sorted packets.
    pub trace: Trace,
    /// Source IPs of bot hosts.
    pub bot_hosts: HashSet<u32>,
}

/// Generates a labelled botnet dataset.
pub fn generate(cfg: &BotnetConfig) -> BotnetDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let duration_ns = (cfg.duration_s * 1e9) as u64;
    let mut records = Vec::new();

    // Bot hosts: 10.1.0.x; benign hosts: 10.2.0.x.
    let bot_ips: Vec<u32> = (0..cfg.bots).map(|i| 0x0A01_0000 + i as u32 + 1).collect();
    let benign_ips: Vec<u32> = (0..cfg.benign)
        .map(|i| 0x0A02_0000 + i as u32 + 1)
        .collect();

    // Bot P2P mesh: each bot beacons to 2-4 peers at a regular interval with
    // small jitter and near-constant small packets.
    for (i, &bot) in bot_ips.iter().enumerate() {
        let peers = 2 + (i % 3);
        for p in 0..peers {
            let peer = bot_ips[(i + p + 1) % bot_ips.len()];
            if peer == bot {
                continue;
            }
            let beacon_ns = rng.random_range(400_000_000..600_000_000u64); // ~0.5 s
            let base_size: u16 = rng.random_range(90..120);
            // Unique port pair per conversation so beacon and ack streams of
            // different conversations never share a 5-tuple.
            let sport: u16 = 30_000 + (i as u16) * 8 + p as u16;
            let dport: u16 = 40_000 + (i as u16) * 8 + p as u16;
            let mut ts = rng.random_range(0..beacon_ns);
            while ts < duration_ns {
                let jitter = rng.random_range(0..10_000_000u64); // ≤10 ms
                records.push(
                    PacketRecord::udp(ts + jitter, base_size, bot, sport, peer, dport)
                        .with_direction(Direction::Egress),
                );
                // Peer acks back with a similarly small packet.
                records.push(
                    PacketRecord::udp(
                        ts + jitter + rng.random_range(1_000_000..5_000_000u64),
                        base_size - rng.random_range(0..16u16),
                        peer,
                        dport,
                        bot,
                        sport,
                    )
                    .with_direction(Direction::Ingress),
                );
                ts += beacon_ns;
            }
        }
    }

    // Benign hosts: a few web-like flows each — bursty timing, diverse sizes.
    for &host in &benign_ips {
        let flows = rng.random_range(2..6usize);
        for _ in 0..flows {
            let server: u32 = rng.random::<u32>() | 0x4000_0000;
            let cport: u16 = rng.random_range(1024..60_000);
            let len = rng.random_range(5..80usize);
            let ipt = Exponential::new(1.0 / 50_000_000.0).expect("positive rate");
            let mut ts = rng.random_range(0..duration_ns / 2);
            for _ in 0..len {
                let up = rng.random::<f64>() < 0.3;
                let size: u16 = if up {
                    rng.random_range(64..400)
                } else {
                    *[1500u16, 1500, 800, 200]
                        .get(rng.random_range(0..4usize))
                        .expect("index in range")
                };
                let rec = if up {
                    PacketRecord::tcp(ts, size, host, cport, server, 443)
                        .with_direction(Direction::Egress)
                } else {
                    PacketRecord::tcp(ts, size, server, 443, host, cport)
                        .with_direction(Direction::Ingress)
                };
                records.push(rec);
                ts += ipt.sample(&mut rng) as u64 + 1;
            }
        }
    }

    BotnetDataset {
        trace: Trace::from_records(records),
        bot_hosts: bot_ips.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superfe_net::FiveTuple;

    fn small() -> BotnetDataset {
        generate(&BotnetConfig {
            bots: 6,
            benign: 10,
            duration_s: 20.0,
            seed: 4,
        })
    }

    #[test]
    fn labels_match_config() {
        let d = small();
        assert_eq!(d.bot_hosts.len(), 6);
        assert!(!d.trace.is_empty());
    }

    #[test]
    fn bot_traffic_has_regular_beacons() {
        let d = small();
        // Pick one bot conversation and check IPT regularity (low CV).
        let bot = *d.bot_hosts.iter().min().unwrap();
        let mut ts: Vec<u64> = d
            .trace
            .records
            .iter()
            .filter(|r| r.src_ip == bot)
            .map(|r| r.ts_ns)
            .collect();
        ts.sort();
        assert!(ts.len() > 10);
        // Beacon spacing concentrates near the period: the median IPT of an
        // individual conversation is ~0.5 s.
        let flows: HashSet<FiveTuple> = d
            .trace
            .records
            .iter()
            .filter(|r| r.src_ip == bot)
            .map(FiveTuple::of)
            .collect();
        let f = *flows.iter().next().unwrap();
        let mut fts: Vec<u64> = d
            .trace
            .records
            .iter()
            .filter(|r| FiveTuple::of(r) == f)
            .map(|r| r.ts_ns)
            .collect();
        fts.sort();
        let ipts: Vec<u64> = fts.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = ipts.iter().sum::<u64>() as f64 / ipts.len() as f64;
        assert!(
            (0.3e9..0.7e9).contains(&mean),
            "beacon mean IPT {mean} outside expected band"
        );
    }

    #[test]
    fn bot_packets_are_small_benign_are_mixed() {
        let d = small();
        let (mut bot_sz, mut bot_n, mut ben_sz, mut ben_n) = (0u64, 0u64, 0u64, 0u64);
        for r in &d.trace.records {
            if d.bot_hosts.contains(&r.src_ip) || d.bot_hosts.contains(&r.dst_ip) {
                bot_sz += u64::from(r.size);
                bot_n += 1;
            } else {
                ben_sz += u64::from(r.size);
                ben_n += 1;
            }
        }
        let bot_avg = bot_sz as f64 / bot_n as f64;
        let ben_avg = ben_sz as f64 / ben_n as f64;
        assert!(bot_avg < 150.0, "bot avg {bot_avg}");
        assert!(ben_avg > 400.0, "benign avg {ben_avg}");
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.trace.records, b.trace.records);
    }
}
