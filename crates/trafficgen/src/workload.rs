//! Workload traces matching the paper's Table 2.
//!
//! | Preset | Avg flow length | Avg packet size | Character |
//! |---|---|---|---|
//! | `MawiIxp` | 104 pkt/flow | 1246 B | IX backbone: long flows, MTU-sized packets |
//! | `Enterprise` | 9.2 pkt/flow | 739 B | cloud gateway: short flows, mixed sizes |
//! | `Campus` | 58 pkt/flow | 135 B | department core: chatty small packets |
//!
//! Flow lengths are log-normal (heavy-tailed, like real traces); packet
//! sizes come from a three-point mixture (MTU / tiny / mid) whose weights are
//! calibrated to the target average. Everything is deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use superfe_net::{Direction, FiveTuple, PacketRecord, Protocol};

use crate::dist::{weighted_index, Exponential, LogNormal};

/// The three Table 2 trace profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadPreset {
    /// Internet-exchange backbone (MAWI-like).
    MawiIxp,
    /// Cloud-gateway enterprise traffic.
    Enterprise,
    /// Campus core-router traffic.
    Campus,
}

impl WorkloadPreset {
    /// Human-readable name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadPreset::MawiIxp => "MAWI-IXP",
            WorkloadPreset::Enterprise => "ENTERPRISE",
            WorkloadPreset::Campus => "CAMPUS",
        }
    }

    /// All presets, in paper order.
    pub fn all() -> [WorkloadPreset; 3] {
        [
            WorkloadPreset::MawiIxp,
            WorkloadPreset::Enterprise,
            WorkloadPreset::Campus,
        ]
    }

    /// Target mean flow length (packets per flow, Table 2).
    pub fn mean_flow_len(self) -> f64 {
        match self {
            WorkloadPreset::MawiIxp => 104.0,
            WorkloadPreset::Enterprise => 9.2,
            WorkloadPreset::Campus => 58.0,
        }
    }

    /// Target mean packet size (bytes, Table 2).
    pub fn mean_pkt_size(self) -> f64 {
        match self {
            WorkloadPreset::MawiIxp => 1246.0,
            WorkloadPreset::Enterprise => 739.0,
            WorkloadPreset::Campus => 135.0,
        }
    }

    /// Log-normal sigma of the flow-length distribution (tail heaviness).
    fn flow_sigma(self) -> f64 {
        match self {
            WorkloadPreset::MawiIxp => 1.8,
            WorkloadPreset::Enterprise => 1.2,
            WorkloadPreset::Campus => 1.6,
        }
    }

    /// Size-mixture weights for (MTU 1500, tiny 64, mid) and the mid size,
    /// solved so the expected size hits [`Self::mean_pkt_size`].
    fn size_mixture(self) -> ([f64; 3], u16) {
        match self {
            // 0.805*1500 + 0.15*64 + 0.045*600 = 1244.1
            WorkloadPreset::MawiIxp => ([0.805, 0.150, 0.045], 600),
            // 0.423*1500 + 0.45*64 + 0.127*600 = 739.5
            WorkloadPreset::Enterprise => ([0.423, 0.450, 0.127], 600),
            // 0.030*1500 + 0.92*64 + 0.05*600 = 133.9
            WorkloadPreset::Campus => ([0.030, 0.920, 0.050], 600),
        }
    }

    /// Fraction of TCP flows (remainder UDP).
    fn tcp_fraction(self) -> f64 {
        match self {
            WorkloadPreset::MawiIxp => 0.85,
            WorkloadPreset::Enterprise => 0.75,
            WorkloadPreset::Campus => 0.60,
        }
    }
}

/// Builder for synthetic workload traces.
#[derive(Clone, Debug)]
pub struct Workload {
    preset: WorkloadPreset,
    packets: usize,
    seed: u64,
    duration_s: f64,
}

impl Workload {
    /// Starts a builder for the given preset with sane defaults
    /// (100k packets, 10 s duration, seed 1).
    pub fn preset(preset: WorkloadPreset) -> Self {
        Workload {
            preset,
            packets: 100_000,
            seed: 1,
            duration_s: 10.0,
        }
    }

    /// Shorthand for [`WorkloadPreset::MawiIxp`].
    pub fn mawi() -> Self {
        Self::preset(WorkloadPreset::MawiIxp)
    }

    /// Shorthand for [`WorkloadPreset::Enterprise`].
    pub fn enterprise() -> Self {
        Self::preset(WorkloadPreset::Enterprise)
    }

    /// Shorthand for [`WorkloadPreset::Campus`].
    pub fn campus() -> Self {
        Self::preset(WorkloadPreset::Campus)
    }

    /// Sets the approximate number of packets to generate.
    pub fn packets(mut self, n: usize) -> Self {
        self.packets = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trace duration in seconds.
    pub fn duration_s(mut self, s: f64) -> Self {
        self.duration_s = s.max(0.001);
        self
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let p = self.preset;
        let flow_len = LogNormal::with_mean(p.mean_flow_len(), p.flow_sigma())
            .expect("preset parameters are valid");
        let (weights, mid_size) = p.size_mixture();
        let duration_ns = (self.duration_s * 1e9) as u64;

        let mut records: Vec<PacketRecord> = Vec::with_capacity(self.packets + 1024);
        while records.len() < self.packets {
            let len = (flow_len.sample(&mut rng).round() as usize).max(1);
            let remaining = self.packets - records.len();
            let len = len.min(remaining.max(1));

            // Endpoints: internal client in 10.0.0.0/8, external server.
            let client: u32 = 0x0A00_0000 | (rng.random::<u32>() & 0x00FF_FFFF);
            let server: u32 = loop {
                let s = rng.random::<u32>();
                if s & 0xFF00_0000 != 0x0A00_0000 {
                    break s;
                }
            };
            let proto = if rng.random::<f64>() < p.tcp_fraction() {
                Protocol::Tcp
            } else {
                Protocol::Udp
            };
            let server_port = *[80u16, 443, 53, 123, 8080, 22]
                .get(weighted_index(&mut rng, &[30.0, 45.0, 10.0, 5.0, 5.0, 5.0]))
                .expect("index in range");
            let client_port: u16 = rng.random_range(1024..=65535);

            // Packet timing: flow starts uniformly in the trace; inter-packet
            // gaps are exponential around a preset-specific mean (real flows
            // are paced at millisecond scale, not spread over the capture),
            // clamped so the flow still ends inside the trace window.
            let start = rng.random_range(0..duration_ns.max(1));
            let preset_ipt_ns: f64 = match p {
                WorkloadPreset::MawiIxp => 1_000_000.0,    // 1 ms
                WorkloadPreset::Enterprise => 3_000_000.0, // 3 ms
                WorkloadPreset::Campus => 2_000_000.0,     // 2 ms
            };
            let mean_ipt_ns =
                preset_ipt_ns.min(((duration_ns - start) as f64 / (len as f64 + 1.0)).max(1000.0));
            let ipt = Exponential::new(1.0 / mean_ipt_ns).expect("positive rate");

            let mut ts = start;
            for _ in 0..len {
                let ingress = rng.random::<f64>() < 0.6;
                let size = match weighted_index(&mut rng, &weights) {
                    0 => 1500u16,
                    1 => 64,
                    _ => mid_size,
                };
                let (src_ip, dst_ip, src_port, dst_port, dir) = if ingress {
                    (server, client, server_port, client_port, Direction::Ingress)
                } else {
                    (client, server, client_port, server_port, Direction::Egress)
                };
                let mut rec = match proto {
                    Protocol::Tcp => {
                        PacketRecord::tcp(ts, size, src_ip, src_port, dst_ip, dst_port)
                    }
                    _ => PacketRecord::udp(ts, size, src_ip, src_port, dst_ip, dst_port),
                };
                rec.direction = dir;
                records.push(rec);
                ts = ts.saturating_add(ipt.sample(&mut rng) as u64 + 1);
            }
        }
        records.sort_by_key(|r| r.ts_ns);
        Trace { records }
    }
}

/// A generated packet trace, sorted by timestamp.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The packets, in arrival order.
    pub records: Vec<PacketRecord>,
}

/// Summary statistics of a trace (the Table 2 columns).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceStats {
    /// Total packets.
    pub packets: usize,
    /// Distinct canonical 5-tuples.
    pub flows: usize,
    /// Mean packets per flow.
    pub avg_flow_len: f64,
    /// Mean packet size in bytes.
    pub avg_pkt_size: f64,
    /// Total bytes on the wire.
    pub total_bytes: u64,
    /// Trace duration in nanoseconds.
    pub duration_ns: u64,
}

impl Trace {
    /// Creates a trace from records (sorting by timestamp).
    pub fn from_records(mut records: Vec<PacketRecord>) -> Self {
        records.sort_by_key(|r| r.ts_ns);
        Trace { records }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> TraceStats {
        use std::collections::HashSet;
        let mut flows: HashSet<FiveTuple> = HashSet::new();
        let mut total_bytes = 0u64;
        for r in &self.records {
            flows.insert(FiveTuple::of(r).canonical().0);
            total_bytes += u64::from(r.size);
        }
        let packets = self.records.len();
        let nflows = flows.len().max(1);
        let duration_ns = match (self.records.first(), self.records.last()) {
            (Some(f), Some(l)) => l.ts_ns - f.ts_ns,
            _ => 0,
        };
        TraceStats {
            packets,
            flows: flows.len(),
            avg_flow_len: packets as f64 / nflows as f64,
            avg_pkt_size: if packets == 0 {
                0.0
            } else {
                total_bytes as f64 / packets as f64
            },
            total_bytes,
            duration_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_hit_table2_averages() {
        for preset in WorkloadPreset::all() {
            let trace = Workload::preset(preset).packets(60_000).seed(3).generate();
            let s = trace.stats();
            let size_err = (s.avg_pkt_size - preset.mean_pkt_size()).abs() / preset.mean_pkt_size();
            assert!(
                size_err < 0.05,
                "{}: avg size {} vs target {}",
                preset.name(),
                s.avg_pkt_size,
                preset.mean_pkt_size()
            );
            // Flow length is noisier (heavy tail + truncation at trace end):
            // require the right order of magnitude and correct ordering.
            let len_err = (s.avg_flow_len - preset.mean_flow_len()).abs() / preset.mean_flow_len();
            assert!(
                len_err < 0.5,
                "{}: avg flow len {} vs target {}",
                preset.name(),
                s.avg_flow_len,
                preset.mean_flow_len()
            );
        }
    }

    #[test]
    fn flow_length_ordering_matches_table2() {
        let lens: Vec<f64> = WorkloadPreset::all()
            .iter()
            .map(|&p| {
                Workload::preset(p)
                    .packets(50_000)
                    .seed(9)
                    .generate()
                    .stats()
                    .avg_flow_len
            })
            .collect();
        // MAWI > CAMPUS > ENTERPRISE.
        assert!(lens[0] > lens[2] && lens[2] > lens[1], "{lens:?}");
    }

    #[test]
    fn trace_is_sorted_and_sized() {
        let trace = Workload::enterprise().packets(5_000).seed(1).generate();
        assert!(trace.len() >= 5_000);
        assert!(trace.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::campus().packets(2_000).seed(5).generate();
        let b = Workload::campus().packets(2_000).seed(5).generate();
        assert_eq!(a.records, b.records);
        let c = Workload::campus().packets(2_000).seed(6).generate();
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn directions_are_mixed() {
        let trace = Workload::mawi().packets(10_000).seed(2).generate();
        let ingress = trace
            .records
            .iter()
            .filter(|r| r.direction == Direction::Ingress)
            .count();
        let frac = ingress as f64 / trace.len() as f64;
        assert!((0.5..0.7).contains(&frac), "ingress fraction {frac}");
    }

    #[test]
    fn internal_addresses_respected() {
        let trace = Workload::mawi().packets(2_000).seed(2).generate();
        for r in &trace.records {
            let internal_src = r.src_ip & 0xFF00_0000 == 0x0A00_0000;
            let internal_dst = r.dst_ip & 0xFF00_0000 == 0x0A00_0000;
            assert!(internal_src ^ internal_dst, "exactly one endpoint inside");
        }
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::default();
        let s = t.stats();
        assert_eq!(s.packets, 0);
        assert_eq!(s.flows, 0);
        assert_eq!(s.avg_pkt_size, 0.0);
    }

    #[test]
    fn from_records_sorts() {
        let r1 = PacketRecord::tcp(100, 64, 1, 2, 3, 4);
        let r2 = PacketRecord::tcp(50, 64, 1, 2, 3, 4);
        let t = Trace::from_records(vec![r1, r2]);
        assert_eq!(t.records[0].ts_ns, 50);
    }
}
