//! Synthetic traffic generation for SuperFE experiments.
//!
//! The paper evaluates on three private traces (Table 2) plus four public
//! application datasets; neither is shippable, so this crate generates
//! seeded synthetic equivalents whose *distributional* properties match what
//! the evaluation depends on:
//!
//! - [`workload`]: the MAWI-IXP / ENTERPRISE / CAMPUS presets — heavy-tailed
//!   flow lengths and packet-size mixtures calibrated to Table 2's averages.
//! - [`wf`]: website-fingerprinting visits with per-site direction/size
//!   signatures (for TF/AWF/DF/CUMUL).
//! - [`botnet`]: P2P bot beaconing among benign chatter (for
//!   PeerShark/N-BaIoT).
//! - [`covert`]: timing covert channels hidden in normal flows (for
//!   MPTD/NPOD).
//! - [`intrusion`]: Mirai-style attack scenarios with per-packet labels
//!   (for Kitsune/HELAD).
//! - [`dist`]: the underlying samplers (log-normal, Pareto, exponential),
//!   implemented locally so the dependency set stays on the approved list.
//! - [`io`]: a compact binary trace format (save/replay, the pcap stand-in).
//! - [`replay`]: trace amplification and rate assignment, standing in for
//!   MoonGen replay plus switch-based packet replication.
//!
//! All generators are deterministic given a seed.

pub mod botnet;
pub mod covert;
pub mod dist;
pub mod intrusion;
pub mod io;
pub mod replay;
pub mod scale;
pub mod wf;
pub mod workload;

pub use scale::{AttackBurst, Diurnal, FlashCrowd, ScaleConfig, ScaleStream, ScaleWorkload};
pub use workload::{Trace, TraceStats, Workload, WorkloadPreset};
