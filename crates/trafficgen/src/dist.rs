//! Distribution samplers.
//!
//! Implemented locally (Box–Muller, inverse-CDF) instead of pulling in
//! `rand_distr`, keeping the workspace on the approved dependency list.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A log-normal distribution parameterized by its underlying normal.
///
/// Flow lengths in real traces are famously heavy-tailed; the workload
/// presets sample them from `LogNormal` calibrated so the mean matches
/// Table 2 (`mean = exp(mu + sigma²/2)`).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates from the underlying normal's parameters.
    ///
    /// Returns `None` if `sigma < 0` or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        if !(mu.is_finite() && sigma.is_finite()) || sigma < 0.0 {
            return None;
        }
        Some(LogNormal { mu, sigma })
    }

    /// Creates a log-normal with the given *mean* and tail index `sigma`.
    ///
    /// Returns `None` if `mean <= 0` or `sigma < 0`.
    pub fn with_mean(mean: f64, sigma: f64) -> Option<Self> {
        if mean <= 0.0 {
            return None;
        }
        LogNormal::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// Theoretical mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// A Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution; `x_min > 0`, `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Option<Self> {
        if x_min <= 0.0 || alpha <= 0.0 {
            return None;
        }
        Some(Pareto { x_min, alpha })
    }

    /// Draws one sample by inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// An exponential distribution with the given rate (events per unit).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution; `rate > 0`.
    pub fn new(rate: f64) -> Option<Self> {
        if rate <= 0.0 {
            return None;
        }
        Some(Exponential { rate })
    }

    /// Draws one sample by inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate
    }
}

/// Picks an index according to `weights` (need not be normalized).
///
/// Returns 0 for empty or all-zero weights.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || weights.is_empty() {
        return 0;
    }
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / f64::from(n);
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_mean_calibration() {
        let d = LogNormal::with_mean(104.0, 1.8).unwrap();
        assert!((d.mean() - 104.0).abs() < 1e-9);
        let mut r = rng();
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / f64::from(n);
        assert!((mean - 104.0).abs() / 104.0 < 0.1, "sampled mean {mean}");
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(0.0, -1.0).is_none());
        assert!(LogNormal::with_mean(0.0, 1.0).is_none());
        assert!(LogNormal::new(f64::NAN, 1.0).is_none());
    }

    #[test]
    fn pareto_respects_min_and_tail() {
        let d = Pareto::new(2.0, 1.5).unwrap();
        let mut r = rng();
        let xs: Vec<f64> = (0..10_000).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Heavy tail: some samples far above the minimum.
        assert!(xs.iter().any(|&x| x > 20.0));
        assert!(Pareto::new(0.0, 1.0).is_none());
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.5).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / f64::from(n);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!(Exponential::new(-1.0).is_none());
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let w = [1.0, 3.0, 0.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[2], 0);
        let frac1 = counts[1] as f64 / 40_000.0;
        assert!((frac1 - 0.75).abs() < 0.02, "frac {frac1}");
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), 0);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = LogNormal::with_mean(10.0, 1.0).unwrap();
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
