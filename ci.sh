#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests. Run before every push.
#
#   ./ci.sh           # full gate
#   ./ci.sh --fast    # skip the release build (quick pre-commit check)
#
# Everything runs offline; the vendored stand-ins under vendor/ satisfy all
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n== %s ==\n' "$1"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  step "cargo build --release (workspace)"
  cargo build --release --workspace
fi

step "cargo test (workspace)"
cargo test -q --workspace

step "superfe check (bundled policies + examples)"
# Every bundled application policy and every example .sfe file must pass the
# full static analyzer — structural lints, dataflow lints, the SF05xx
# value-range/overflow proofs, and hardware feasibility. `check` exits
# non-zero on any error-severity finding.
cargo build -q -p superfe-cli
superfe=target/debug/superfe
for p in cumul awf df tf peershark n-baiot mptd npod helad kitsune; do
  "$superfe" check "$p" >/dev/null || { echo "ci: superfe check $p failed"; exit 1; }
done
for f in examples/*.sfe; do
  "$superfe" check "$f" >/dev/null || { echo "ci: superfe check $f failed"; exit 1; }
done

printf '\nci: all checks passed\n'
