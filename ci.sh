#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests. Run before every push.
#
#   ./ci.sh           # full gate
#   ./ci.sh --fast    # skip the release build (quick pre-commit check)
#
# Everything runs offline; the vendored stand-ins under vendor/ satisfy all
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n== %s ==\n' "$1"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  step "cargo build --release (workspace)"
  cargo build --release --workspace
fi

step "cargo test (workspace)"
cargo test -q --workspace

step "ring stress (randomized SPSC producer/consumer)"
# The frame ring under the executor's event path: randomized capacities,
# doorbell batches, send flavors, and consumer stalls must preserve order
# and lose nothing, and producer-drop must drain-then-terminate. Already
# part of the workspace tests; run named here so a failure points straight
# at the data path.
cargo test -q -p superfe-net --test ring_stress

step "superfe check (bundled policies + examples)"
# Every bundled application policy and every example .sfe file must pass the
# full static analyzer — structural lints, dataflow lints, the SF05xx
# value-range/overflow proofs, and hardware feasibility. `check` exits
# non-zero on any error-severity finding.
cargo build -q -p superfe-cli
superfe=target/debug/superfe
# The policy list comes from `superfe list` (machine-readable, one name per
# line) so a newly bundled application is covered here automatically.
policies=$("$superfe" list)
[[ -n "$policies" ]] || { echo "ci: superfe list returned no policies"; exit 1; }
for p in $policies; do
  "$superfe" check "$p" >/dev/null || { echo "ci: superfe check $p failed"; exit 1; }
done
for f in examples/*.sfe; do
  "$superfe" check "$f" >/dev/null || { echo "ci: superfe check $f failed"; exit 1; }
done

step "benches compile"
cargo build -q -p superfe-bench --benches --bins

step "streaming throughput smoke (2 workers)"
# A small end-to-end run of the streaming pipeline through the bench runner,
# then a schema diff: the fresh document must contain exactly the keys of
# the checked-in BENCH_pipeline.json (values differ run to run; the shape
# must not drift silently).
smoke=$(mktemp)
detect_smoke=$(mktemp)
trap 'rm -f "$smoke" "$detect_smoke"' EXIT
cargo run -q --release -p superfe-bench --bin throughput -- \
  --packets 5000 --workers 2 --warmup 1 --runs 2 --out "$smoke" >/dev/null
schema() { grep -o '"[a-z_]*":' "$1" | sort -u; }
if ! diff <(schema BENCH_pipeline.json) <(schema "$smoke"); then
  echo "ci: BENCH_pipeline.json schema drifted from the throughput runner"
  exit 1
fi
# The measurement-harness enrichment must be present: host flags, run-to-run
# statistics, and the per-stage (queue/shard/sink) latency histograms the
# ring data path records.
for key in flat_expected warmup_runs elapsed_ms_stddev elapsed_ms_p99 \
    stage_latency queue shard sink p99_ns; do
  grep -q "\"$key\":" "$smoke" \
    || { echo "ci: throughput smoke is missing harness field '$key'"; exit 1; }
done

step "online detection smoke (seeded train/calibrate/serve, in-pipeline)"
# A seeded end-to-end detect run must raise at least one alert inside the
# attack window and stay quiet on the benign warm-up (the calibrated
# threshold guarantees the latter by construction), and the fresh document
# must match the checked-in BENCH_detect.json schema.
cargo build -q --release -p superfe-cli
# Default configuration (+ --in-pipeline) = the one that generated the
# checked-in artifact, so the deterministic detection section is fully
# reproduced here (the harness's warmup + repeated measured runs keep this
# a few seconds).
target/release/superfe detect --in-pipeline --out "$detect_smoke" >/dev/null
field() { grep -o "\"$2\": [0-9]*" "$1" | head -1 | grep -o '[0-9]*$'; }
on_attack=$(field "$detect_smoke" alerts_on_attack)
on_benign=$(field "$detect_smoke" alerts_on_benign)
if [[ "$on_attack" -lt 1 ]]; then
  echo "ci: detect smoke raised no alerts in the attack window"
  exit 1
fi
if [[ "$on_benign" -ne 0 ]]; then
  echo "ci: detect smoke raised $on_benign alerts on benign warm-up traffic"
  exit 1
fi
if ! diff <(schema BENCH_detect.json) <(schema "$detect_smoke"); then
  echo "ci: BENCH_detect.json schema drifted from the detect runner"
  exit 1
fi
# The SF09xx-certified quantized model ran inside the NIC shards: it must
# alert on the attack window, stay quiet on benign traffic, and the
# measured |float - quantized| score delta must sit under the certified
# SF0901 bound (delta_within_bound is computed by the runner).
inpipe=$(sed -n '/"in_pipeline": {/,/^  }/p' "$detect_smoke")
[[ -n "$inpipe" ]] \
  || { echo "ci: detect smoke is missing the in_pipeline section"; exit 1; }
grep -q '"supported": true' <<<"$inpipe" \
  || { echo "ci: in-pipeline lowering unsupported for the default detector"; exit 1; }
grep -q '"certified": true' <<<"$inpipe" \
  || { echo "ci: in-pipeline lowering lost its SF0901 certificate"; exit 1; }
grep -q '"delta_within_bound": true' <<<"$inpipe" \
  || { echo "ci: measured float-vs-quantized delta exceeded the SF0901 bound"; exit 1; }
ip_field() { grep -o "\"$1\": [0-9]*" <<<"$inpipe" | head -1 | grep -o '[0-9]*$'; }
ip_attack=$(ip_field alerts_on_attack)
ip_benign=$(ip_field alerts_on_benign)
if [[ "$ip_attack" -lt 1 ]]; then
  echo "ci: in-pipeline quantized model raised no alerts in the attack window"
  exit 1
fi
if [[ "$ip_benign" -ne 0 ]]; then
  echo "ci: in-pipeline quantized model raised $ip_benign benign alerts"
  exit 1
fi

step "multi-tenant serve smoke (3 tenants, solo-identical)"
# Three bundled policies on one shared switch/NIC, with a mid-stream hot
# detach; --verify-solo makes the CLI re-run every tenant alone and exit
# non-zero unless the shared-plane output is bitwise identical.
serve_out=$(target/release/superfe serve npod cumul awf \
  --packets 6000 --workers 2 --detach-at 2:4000 --verify-solo) \
  || { echo "ci: multi-tenant serve smoke failed"; exit 1; }
for t in 0 1 2; do
  if ! grep -q "verified tenant t$t .*bitwise identical" <<<"$serve_out"; then
    echo "ci: serve smoke did not verify tenant t$t against its solo run"
    exit 1
  fi
done

step "admission rejection smoke (over-budget tenant set exits non-zero)"
# Three sALU-heavy policies compose past the Tofino budget when nothing is
# shared; with cross-tenant sharing disabled the control plane must refuse
# the set, naming the binding resource, before anything touches the data
# path. With sharing on, the same set fits: the SF08xx analysis certifies
# one shared parse/groupby prefix, so the composed switch demand drops
# under budget — assert both sides of that line.
if target/release/superfe serve kitsune helad n-baiot --packets 100 \
    --no-fuse >/dev/null 2>"$detect_smoke.err"; then
  echo "ci: admission accepted an over-budget tenant set"
  exit 1
fi
if ! grep -q "admission rejected" "$detect_smoke.err"; then
  echo "ci: admission rejection did not name the binding resource"
  cat "$detect_smoke.err"
  exit 1
fi
rm -f "$detect_smoke.err"
target/release/superfe serve kitsune helad n-baiot --packets 100 >/dev/null \
  || { echo "ci: prefix sharing failed to admit the sALU-heavy set"; exit 1; }

step "cross-policy fusion smoke (SF07xx report + fused serve)"
# AWF and DF are the same extractor under different names: the SF07xx
# equivalence analysis must put them in one plan class (SF0701) in both
# output formats, and a fused serve must still verify bitwise against solo.
fusion_json=$(target/release/superfe check awf df --format json) \
  || { echo "ci: multi-policy check failed"; exit 1; }
grep -q '"plans_saved":1' <<<"$fusion_json" \
  || { echo "ci: fusion report did not save the AWF/DF duplicate plan"; exit 1; }
grep -q '"code":"SF0701"' <<<"$fusion_json" \
  || { echo "ci: fusion report is missing the SF0701 class finding"; exit 1; }
target/release/superfe check awf df | grep -q "cross-policy fusion (SF07xx)" \
  || { echo "ci: text check lost the fusion section"; exit 1; }
fused_out=$(target/release/superfe serve awf df --packets 4000 --workers 2 \
  --verify-solo) || { echo "ci: fused serve smoke failed"; exit 1; }
grep -q "execution units at shutdown: 1 (cross-policy fusion enabled)" \
  <<<"$fused_out" || { echo "ci: serve did not fuse the AWF/DF pair"; exit 1; }
for t in 0 1; do
  grep -q "verified tenant t$t .*bitwise identical" <<<"$fused_out" \
    || { echo "ci: fused serve did not verify tenant t$t"; exit 1; }
done

step "shared-prefix smoke (SF08xx report + prefix-shared serve)"
# flow_stats and flow_volume share parse → groupby(flow) → filter(tcp.exist)
# but diverge in their map/reduce tails: the SF08xx analysis must certify one
# shared switch prefix (SF0801) in both output formats, and a prefix-shared
# serve must run both tenants on a single switch partition while every
# tenant's output stays bitwise identical to its solo run.
share_json=$(target/release/superfe check examples/flow_stats.sfe \
  examples/flow_volume.sfe --format json) \
  || { echo "ci: shared-prefix check failed"; exit 1; }
grep -q '"code":"SF0801"' <<<"$share_json" \
  || { echo "ci: sharing report is missing the SF0801 shared-prefix finding"; exit 1; }
grep -q '"partitions_saved":1' <<<"$share_json" \
  || { echo "ci: sharing report did not save a switch partition"; exit 1; }
target/release/superfe check examples/flow_stats.sfe examples/flow_volume.sfe \
  | grep -q "cross-tenant prefix sharing (SF08xx)" \
  || { echo "ci: text check lost the sharing section"; exit 1; }
shared_out=$(target/release/superfe serve examples/flow_stats.sfe \
  examples/flow_volume.sfe --packets 4000 --workers 2 --verify-solo) \
  || { echo "ci: prefix-shared serve smoke failed"; exit 1; }
grep -q "shared switch partitions at shutdown: 1 (cross-tenant CSE enabled)" \
  <<<"$shared_out" || { echo "ci: serve did not share the switch prefix"; exit 1; }
for t in 0 1; do
  grep -q "verified tenant t$t .*bitwise identical" <<<"$shared_out" \
    || { echo "ci: prefix-shared serve did not verify tenant t$t"; exit 1; }
done

step "multi-tenant ctrl bench smoke"
# A small sweep through the ctrl bench runner, schema-diffed against the
# checked-in BENCH_ctrl.json.
ctrl_smoke=$(mktemp)
trap 'rm -f "$smoke" "$detect_smoke" "$ctrl_smoke"' EXIT
cargo run -q --release -p superfe-bench --bin ctrl -- \
  --packets 4000 --tenants 1,2 --warmup 1 --runs 2 --out "$ctrl_smoke" >/dev/null
if ! diff <(schema BENCH_ctrl.json) <(schema "$ctrl_smoke"); then
  echo "ci: BENCH_ctrl.json schema drifted from the ctrl runner"
  exit 1
fi
grep -q '"cse_sweep"' BENCH_ctrl.json \
  || { echo "ci: BENCH_ctrl.json is missing the cse_sweep section"; exit 1; }

step "corpus-scale state smoke (100k flows under a DRAM budget, bounded RSS)"
# 100k flows through the bounded switch+NIC pair, every eviction policy,
# plus the unbounded accuracy baseline. Schema-diffed against the
# checked-in BENCH_scale.json, and peak RSS must stay bounded — the DRAM
# budget is what makes corpus-scale cardinality safe, so a blow-up here
# means the cap stopped biting.
scale_smoke=$(mktemp)
trap 'rm -f "$smoke" "$detect_smoke" "$ctrl_smoke" "$scale_smoke"' EXIT
cargo run -q --release -p superfe-bench --bin scale -- \
  --flows 100000 --runs 1 --out "$scale_smoke" >/dev/null
if ! diff <(schema BENCH_scale.json) <(schema "$scale_smoke"); then
  echo "ci: BENCH_scale.json schema drifted from the scale runner"
  exit 1
fi
max_rss=$(grep -o '"peak_rss_kb": *[0-9]*' "$scale_smoke" \
  | grep -o '[0-9]*$' | sort -n | tail -1)
[[ -n "$max_rss" ]] || { echo "ci: scale smoke has no peak_rss_kb fields"; exit 1; }
if (( max_rss > 1000000 )); then
  echo "ci: scale smoke peaked at ${max_rss} kB RSS (cap 1000000 kB)"
  exit 1
fi
grep -q '"accuracy": {' "$scale_smoke" \
  || { echo "ci: scale smoke lost the unbounded accuracy baseline"; exit 1; }

step "snapshot/restore smoke (digest-certified resume)"
# A mid-stream snapshot, then a fresh process restoring from it: the
# per-tenant output digests of the resumed run must be identical to the
# uninterrupted run's — the CLI face of tests/plane_snapshot.rs.
snap_file=$(mktemp)
trap 'rm -f "$smoke" "$detect_smoke" "$ctrl_smoke" "$scale_smoke" "$snap_file"' EXIT
full_out=$(target/release/superfe serve cumul npod --packets 4000 --workers 2 \
  --snapshot "$snap_file" --snapshot-at 2000) \
  || { echo "ci: snapshot serve smoke failed"; exit 1; }
grep -q "snapshot: wrote" <<<"$full_out" \
  || { echo "ci: serve did not write the mid-stream snapshot"; exit 1; }
resumed_out=$(target/release/superfe serve cumul npod --packets 4000 --workers 2 \
  --restore "$snap_file") || { echo "ci: restore serve smoke failed"; exit 1; }
grep -q "restored 2 tenants" <<<"$resumed_out" \
  || { echo "ci: restore did not rebuild the 2-tenant topology"; exit 1; }
grep -q "tenant t0 cumul state:" <<<"$resumed_out" \
  || { echo "ci: restore lost the per-tenant state occupancy lines"; exit 1; }
digest_lines() { grep -o 'digest=[0-9a-f]*' <<<"$1"; }
if ! diff <(digest_lines "$full_out") <(digest_lines "$resumed_out"); then
  echo "ci: restored run's output digests diverged from the uninterrupted run"
  exit 1
fi

step "ring vs sync_channel microbench (ring must not be slower)"
# The Issue 8 data-path swap is justified by this number: per-frame transfer
# through the doorbell-batched SPSC ring must be at least as fast as the
# std sync_channel it replaced, on this host, or the swap has regressed.
bench_out=$(cargo bench -q -p superfe-bench --bench ring 2>/dev/null)
printf '%s\n' "$bench_out"
rate() { grep -o "spsc_transfer/$1 .* \([0-9]*\) elem/s" <<<"$bench_out" \
  | grep -o '[0-9]* elem/s' | grep -o '^[0-9]*'; }
ring_rate=$(rate ring_doorbell_4)
sync_rate=$(rate sync_channel)
[[ -n "$ring_rate" && -n "$sync_rate" ]] \
  || { echo "ci: could not parse ring microbench output"; exit 1; }
if (( ring_rate < sync_rate )); then
  echo "ci: ring transfer ($ring_rate elem/s) is slower than sync_channel ($sync_rate elem/s)"
  exit 1
fi

printf '\nci: all checks passed\n'
