//! Differential property test of the analysis-gated optimizer: for random
//! valid policies seeded with rewrite opportunities (tautological filters,
//! fusable `f_one`/`f_direction` pairs, dead maps) and random traces, the
//! optimized policy must produce exactly the feature vectors of the
//! original. This is the executable form of the rewrite-legality argument in
//! DESIGN.md: every rewrite the optimizer is willing to apply is
//! output-preserving on real packet streams, not just on the abstraction.

use proptest::prelude::*;

use superfe::net::{Direction, PacketRecord};
use superfe::policy::ir::opt::optimize;
use superfe::policy::{dsl, Policy, ValueConfig};
use superfe::SoftwareExtractor;

/// Valid single-level policies, biased toward optimizer-relevant shapes.
fn policy_source() -> impl Strategy<Value = String> {
    let gran = prop_oneof![Just("flow"), Just("host"), Just("socket")];
    let filt = prop_oneof![
        Just(""),
        // A real filter the optimizer must keep.
        Just(".filter(tcp.exist)\n"),
        // Provably true on the packet abstraction: removed entirely.
        Just(".filter(size <= 65535)\n"),
        // One tautological conjunct: dropped, the rest kept.
        Just(".filter(tcp.exist and size <= 65535)\n"),
        // Adjacent filters: fused into one conjunction.
        Just(".filter(tcp.exist)\n.filter(size > 100)\n"),
    ];
    let maps = prop_oneof![
        Just(""),
        // f_one feeds f_direction and nothing else: fusable, feeder dies.
        Just(".map(one, _, f_one)\n.map(d, one, f_direction)\n.reduce(d, [f_sum])\n"),
        // The feeder is still consumed downstream: it must survive fusion.
        Just(
            ".map(one, _, f_one)\n.map(d, one, f_direction)\n.reduce(d, [f_sum])\n\
             .reduce(one, [f_sum])\n"
        ),
        // A map nothing reads: dead-field elimination.
        Just(".map(unused, tstamp, f_ipt)\n"),
    ];
    let reduce = prop_oneof![
        Just("[f_sum]"),
        Just("[f_mean, f_var]"),
        Just("[f_min, f_max, f_std]"),
        Just("[ft_hist{100, 16}]"),
    ];
    (gran, filt, maps, reduce).prop_map(|(g, f, m, r)| {
        format!("pktstream\n{f}.groupby({g})\n{m}.reduce(size, {r})\n.collect({g})")
    })
}

/// Random short traces with mixed protocols, directions, and group keys.
fn trace() -> impl Strategy<Value = Vec<PacketRecord>> {
    proptest::collection::vec(
        (
            0u64..5_000_000u64,
            40u16..1500u16,
            1u32..6u32,
            1u16..4u16,
            1u32..3u32,
            prop_oneof![Just(53u16), Just(80u16), Just(443u16)],
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
        1..200,
    )
    .prop_map(|mut specs| {
        specs.sort_by_key(|s| s.0);
        specs
            .into_iter()
            .map(|(ts, size, sip, sport, dip, dport, is_tcp, egress)| {
                let mut p = if is_tcp {
                    PacketRecord::tcp(ts, size, sip, sport, dip, dport)
                } else {
                    PacketRecord::udp(ts, size, sip, sport, dip, dport)
                };
                if egress {
                    p.direction = Direction::Egress;
                }
                p
            })
            .collect()
    })
}

/// Runs the software reference extractor, returning key-sorted vectors.
fn run(policy: &Policy, pkts: &[PacketRecord]) -> Vec<(String, Vec<f64>)> {
    let mut fe = SoftwareExtractor::new(policy).expect("valid policy");
    for p in pkts {
        fe.push(p);
    }
    let (groups, per_pkt) = fe.finish();
    let mut out: Vec<(String, Vec<f64>)> = groups
        .into_iter()
        .chain(per_pkt)
        .map(|v| (format!("{:?}", v.key), v.values.into_vec()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn optimized_policies_are_output_preserving(
        src in policy_source(),
        pkts in trace(),
    ) {
        let policy = dsl::parse(&src).expect("generated policy is valid");
        let optimized = optimize(&policy, &ValueConfig::default());
        let base = run(&policy, &pkts);
        let opt = run(&optimized.policy, &pkts);
        prop_assert!(
            base == opt,
            "rewrites {:?} changed outputs for:\n{}",
            optimized.rewrites,
            src
        );
    }
}
