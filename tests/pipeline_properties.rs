//! Property-based equivalence: for arbitrary small traces, the switch+NIC
//! pipeline computes exactly the same features as the software reference
//! (fed µs-truncated timestamps, the metadata resolution).

use std::collections::HashMap;

use proptest::prelude::*;

use superfe::net::{Direction, GroupKey, PacketRecord};
use superfe::{SoftwareExtractor, SuperFe};

#[derive(Clone, Debug)]
struct Spec {
    host: u8,
    port: u8,
    dst: u8,
    size: u16,
    gap_us: u32,
    ingress: bool,
    udp: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        0u8..6,
        0u8..3,
        0u8..4,
        64u16..1500,
        0u32..50_000,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(host, port, dst, size, gap_us, ingress, udp)| Spec {
            host,
            port,
            dst,
            size,
            gap_us,
            ingress,
            udp,
        })
}

fn to_packets(specs: &[Spec]) -> Vec<PacketRecord> {
    let mut ts = 0u64;
    specs
        .iter()
        .map(|s| {
            ts += u64::from(s.gap_us) * 1_000; // µs-aligned: truncation-lossless
            let mut p = if s.udp {
                PacketRecord::udp(
                    ts,
                    s.size,
                    u32::from(s.host) + 1,
                    1000 + u16::from(s.port),
                    u32::from(s.dst) + 100,
                    443,
                )
            } else {
                PacketRecord::tcp(
                    ts,
                    s.size,
                    u32::from(s.host) + 1,
                    1000 + u16::from(s.port),
                    u32::from(s.dst) + 100,
                    443,
                )
            };
            p.direction = if s.ingress {
                Direction::Ingress
            } else {
                Direction::Egress
            };
            p
        })
        .collect()
}

fn compare(policy: &str, packets: &[PacketRecord]) -> Result<(), TestCaseError> {
    let mut sw = SoftwareExtractor::from_dsl(policy).expect("policy valid");
    let mut hw = SuperFe::from_dsl(policy).expect("policy valid");
    for p in packets {
        sw.push(p);
        hw.push(p);
    }
    let (sw_groups, _) = sw.finish();
    let hw_out = hw.finish();
    let a: HashMap<GroupKey, Vec<f64>> = sw_groups
        .into_iter()
        .map(|v| (v.key, v.values.into_vec()))
        .collect();
    let b: HashMap<GroupKey, Vec<f64>> = hw_out
        .group_vectors
        .into_iter()
        .map(|v| (v.key, v.values.into_vec()))
        .collect();
    prop_assert_eq!(a.len(), b.len());
    for (k, va) in &a {
        let vb = b.get(k).expect("group present in pipeline output");
        prop_assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(vb) {
            prop_assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                "group {:?}: {} vs {}",
                k,
                x,
                y
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stats_policy_equivalent(specs in proptest::collection::vec(spec(), 1..250)) {
        let policy = "pktstream\n.groupby(flow)\n.map(ipt, tstamp, f_ipt)\n\
                      .reduce(size, [f_sum, f_mean, f_var, f_min, f_max])\n.collect(flow)\n\
                      .reduce(ipt, [f_mean, f_max])\n.collect(flow)";
        compare(policy, &to_packets(&specs))?;
    }

    #[test]
    fn multi_level_policy_equivalent(specs in proptest::collection::vec(spec(), 1..250)) {
        let policy = "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
                      .groupby(channel)\n.reduce(size, [f_mean])\n.collect(channel)\n\
                      .groupby(host)\n.reduce(size, [f_max])\n.collect(host)";
        compare(policy, &to_packets(&specs))?;
    }

    #[test]
    fn filtered_histogram_policy_equivalent(specs in proptest::collection::vec(spec(), 1..250)) {
        let policy = "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n\
                      .reduce(size, [ft_hist{100, 16}, ft_histlog{64, 2, 8}])\n.collect(flow)";
        compare(policy, &to_packets(&specs))?;
    }

    #[test]
    fn direction_sequence_policy_equivalent(specs in proptest::collection::vec(spec(), 1..200)) {
        let policy = "pktstream\n.groupby(flow)\n.map(one, _, f_one)\n\
                      .map(d, one, f_direction)\n.reduce(d, [f_array{64}])\n\
                      .synthesize(f_norm)\n.collect(flow)";
        compare(policy, &to_packets(&specs))?;
    }
}
