//! Differential tests for live control-plane snapshot/restore: a plane
//! snapshotted mid-stream and restored into a fresh process-equivalent
//! plane must produce **bitwise-identical** remaining output — across
//! worker counts, with SF07xx fusion and SF08xx prefix sharing engaged,
//! after detach of a fused unit's founder, and under bounded-state
//! eviction churn with epoch markers in flight.

use superfe::ctrl::{CtrlPlane, TenantSpec};
use superfe::net::PacketRecord;
use superfe::nic::StreamOutput;
use superfe::policy::dsl;
use superfe::switch::CgEvictPolicy;
use superfe::{AnalyzeConfig, SuperFeConfig};

/// Worker counts the snapshot differential must hold for.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn spec(name: &str, src: &str) -> TenantSpec {
    TenantSpec {
        name: name.into(),
        policy: dsl::parse(src).expect("pool policy is valid"),
        cfg: SuperFeConfig::default(),
    }
}

fn host_sum() -> TenantSpec {
    spec(
        "host-sum",
        "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
    )
}

/// Same program as [`host_sum`] under another name — fuses with it.
fn host_sum_b() -> TenantSpec {
    spec(
        "host-sum-b",
        "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
    )
}

/// Shares the `groupby(host)` switch prefix with [`host_sum`] but keeps a
/// distinct reduce tail — prefix-shares, never fuses.
fn host_max() -> TenantSpec {
    spec(
        "host-max",
        "pktstream\n.groupby(host)\n.reduce(size, [f_max])\n.collect(host)",
    )
}

fn flow_stats() -> TenantSpec {
    spec(
        "flow-stats",
        "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_mean, f_max])\n\
         .collect(flow)",
    )
}

fn packets(n: u64) -> Vec<PacketRecord> {
    (0..n)
        .map(|i| {
            if i % 5 == 0 {
                PacketRecord::udp(i * 700, 90, (i % 13 + 1) as u32, 53, 4, 53)
            } else {
                PacketRecord::tcp(
                    i * 700,
                    400 + (i % 37) as u16,
                    (i % 13 + 1) as u32,
                    1500,
                    4,
                    443,
                )
            }
        })
        .collect()
}

/// Attaches every spec, pushes `pkts`, and returns each tenant's final
/// output keyed by name.
fn run_uninterrupted(
    specs: &[TenantSpec],
    pkts: &[PacketRecord],
    workers: usize,
) -> Vec<(String, StreamOutput)> {
    let mut plane = CtrlPlane::new(workers, AnalyzeConfig::default());
    for s in specs {
        plane.attach(s, None).expect("admitted");
    }
    for p in pkts {
        plane.push(p).expect("workers alive");
    }
    plane
        .finish()
        .expect("workers alive")
        .into_iter()
        .map(|r| (r.name, r.output))
        .collect()
}

/// Same schedule, but snapshots at `split`, abandons the original plane,
/// restores a fresh one from the bytes, and serves the remainder there.
fn run_restored(
    specs: &[TenantSpec],
    pkts: &[PacketRecord],
    split: usize,
    workers: usize,
) -> Vec<(String, StreamOutput)> {
    let mut plane = CtrlPlane::new(workers, AnalyzeConfig::default());
    for s in specs {
        plane.attach(s, None).expect("admitted");
    }
    for p in &pkts[..split] {
        plane.push(p).expect("workers alive");
    }
    let bytes = plane.snapshot().expect("snapshot");
    // The snapshotted plane is abandoned (the crash it models); drain it
    // so its worker threads exit cleanly.
    plane.finish().expect("workers alive");
    let mut restored =
        CtrlPlane::restore(AnalyzeConfig::default(), specs, &bytes, |_| None).expect("restore");
    assert_eq!(restored.tenants().len(), specs.len());
    for p in &pkts[split..] {
        restored.push(p).expect("workers alive");
    }
    restored
        .finish()
        .expect("workers alive")
        .into_iter()
        .map(|r| (r.name, r.output))
        .collect()
}

fn assert_outputs_bitwise(
    full: &[(String, StreamOutput)],
    resumed: &[(String, StreamOutput)],
    workers: usize,
) {
    assert_eq!(
        full.len(),
        resumed.len(),
        "tenant count at {workers} workers"
    );
    for (name, out) in full {
        let (_, res) = resumed
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("tenant {name} missing after restore"));
        assert_eq!(
            out.group_vectors, res.group_vectors,
            "{name} group vectors diverged at {workers} workers"
        );
        assert_eq!(
            out.packet_vectors, res.packet_vectors,
            "{name} packet vectors diverged at {workers} workers"
        );
        assert_eq!(
            out.stats.records, res.stats.records,
            "{name} record count diverged at {workers} workers"
        );
        assert_eq!(
            out.stats.vectors, res.stats.vectors,
            "{name} vector count diverged at {workers} workers"
        );
    }
}

/// The headline differential: a plane serving a fused pair, a
/// prefix-shared tenant, and an independent tenant is snapshotted
/// mid-stream; the restored plane's remaining output is bitwise the
/// uninterrupted run's — at every worker count.
#[test]
fn restore_mid_stream_is_bitwise_identical() {
    let specs = [host_sum(), host_sum_b(), host_max(), flow_stats()];
    let pkts = packets(1200);
    for &workers in &WORKER_COUNTS {
        let full = run_uninterrupted(&specs, &pkts, workers);
        let resumed = run_restored(&specs, &pkts, 600, workers);
        assert_outputs_bitwise(&full, &resumed, workers);
    }
}

/// Restore after the fused unit's *founder* detached: the surviving
/// member keeps running under the founder's unit id; restore re-seats the
/// unit onto the survivor and the remaining output stays bitwise.
#[test]
fn restore_after_founder_detach_of_fused_unit() {
    let specs = [host_sum(), host_sum_b()];
    let pkts = packets(1200);
    for &workers in &[1usize, 4] {
        // Reference: attach both, detach the founder at 300, run through.
        let mut reference = CtrlPlane::new(workers, AnalyzeConfig::default());
        let a = reference.attach(&specs[0], None).expect("admitted");
        reference.attach(&specs[1], None).expect("admitted");
        for p in &pkts[..300] {
            reference.push(p).expect("workers alive");
        }
        let ref_gone = reference.detach(a).expect("drain handshake");
        for p in &pkts[300..] {
            reference.push(p).expect("workers alive");
        }
        let full: Vec<_> = reference
            .finish()
            .expect("workers alive")
            .into_iter()
            .map(|r| (r.name, r.output))
            .collect();

        // Same schedule, snapshotted at 600 — after the founder left.
        let mut plane = CtrlPlane::new(workers, AnalyzeConfig::default());
        let a = plane.attach(&specs[0], None).expect("admitted");
        plane.attach(&specs[1], None).expect("admitted");
        for p in &pkts[..300] {
            plane.push(p).expect("workers alive");
        }
        let gone = plane.detach(a).expect("drain handshake");
        for p in &pkts[300..600] {
            plane.push(p).expect("workers alive");
        }
        let bytes = plane.snapshot().expect("snapshot");
        plane.finish().expect("workers alive");
        // Only the survivor's spec is needed — the founder is gone.
        let mut restored =
            CtrlPlane::restore(AnalyzeConfig::default(), &specs[1..], &bytes, |_| None)
                .expect("restore");
        for p in &pkts[600..] {
            restored.push(p).expect("workers alive");
        }
        let resumed: Vec<_> = restored
            .finish()
            .expect("workers alive")
            .into_iter()
            .map(|r| (r.name, r.output))
            .collect();

        assert_eq!(
            gone.group_vectors, ref_gone.group_vectors,
            "founder's detach output must not depend on the later snapshot"
        );
        assert_outputs_bitwise(&full, &resumed, workers);
    }
}

/// Bounded state + epoch churn: a tenant under an aggressive random-way
/// cache budget (constant CG eviction churn) rides out a mid-stream
/// detach of its neighbor (epoch marker in flight between evictions) and
/// a later snapshot/restore — both tenants stay bitwise.
#[test]
fn restore_under_bounded_state_churn_and_epoch_markers() {
    let mut churn = spec(
        "churny",
        "pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_max])\n.collect(host)",
    );
    churn.cfg.cache.short_count = 64;
    churn.cfg.cache.short_size = 2;
    churn.cfg.cache.aging_t_ns = Some(50_000);
    churn.cfg.cache.policy = CgEvictPolicy::RandomWay { ways: 4, seed: 9 };
    let neighbor = flow_stats();
    let pkts = packets(1000);

    for &workers in &[1usize, 2, 8] {
        let drive = |snapshot_at: Option<usize>| -> (StreamOutput, Vec<(String, StreamOutput)>) {
            let mut plane = CtrlPlane::new(workers, AnalyzeConfig::default());
            let c = plane.attach(&churn, None).expect("admitted");
            let n = plane.attach(&neighbor, None).expect("admitted");
            assert!(c != n);
            for p in &pkts[..400] {
                plane.push(p).expect("workers alive");
            }
            // Epoch marker between evictions: the churny tenant's cache is
            // evicting on nearly every insert while this detach drains.
            let gone = plane.detach(n).expect("drain handshake");
            for p in &pkts[400..600] {
                plane.push(p).expect("workers alive");
            }
            let mut plane = match snapshot_at {
                Some(_) => {
                    let bytes = plane.snapshot().expect("snapshot");
                    plane.finish().expect("workers alive");
                    CtrlPlane::restore(
                        AnalyzeConfig::default(),
                        std::slice::from_ref(&churn),
                        &bytes,
                        |_| None,
                    )
                    .expect("restore")
                }
                None => plane,
            };
            for p in &pkts[600..] {
                plane.push(p).expect("workers alive");
            }
            let outs = plane
                .finish()
                .expect("workers alive")
                .into_iter()
                .map(|r| (r.name, r.output))
                .collect();
            (gone, outs)
        };
        let (ref_gone, full) = drive(None);
        let (gone, resumed) = drive(Some(600));
        assert!(
            ref_gone.stats.records > 0,
            "neighbor saw records before its detach"
        );
        assert_eq!(gone.group_vectors, ref_gone.group_vectors);
        assert_outputs_bitwise(&full, &resumed, workers);
    }
}

/// Corrupt, truncated, or mismatched snapshots are refused — and a spec
/// set that doesn't match the saved topology is named in the error.
#[test]
fn restore_rejects_bad_bytes_and_wrong_specs() {
    let specs = [host_sum()];
    let pkts = packets(200);
    let mut plane = CtrlPlane::new(2, AnalyzeConfig::default());
    plane.attach(&specs[0], None).expect("admitted");
    for p in &pkts {
        plane.push(p).expect("workers alive");
    }
    let bytes = plane.snapshot().expect("snapshot");
    plane.finish().expect("workers alive");

    assert!(CtrlPlane::restore(AnalyzeConfig::default(), &specs, b"junk", |_| None).is_err());
    assert!(
        CtrlPlane::restore(
            AnalyzeConfig::default(),
            &specs,
            &bytes[..bytes.len() / 2],
            |_| None
        )
        .is_err(),
        "truncated snapshot must be refused"
    );
    // Same tenant name, different program: the canonical-hash check
    // refuses the swap instead of silently diverging.
    let mut wrong = flow_stats();
    wrong.name = "host-sum".into();
    assert!(
        CtrlPlane::restore(AnalyzeConfig::default(), &[wrong], &bytes, |_| None).is_err(),
        "hash-mismatched spec must be refused"
    );
    // And the happy path still works with the right spec.
    let restored =
        CtrlPlane::restore(AnalyzeConfig::default(), &specs, &bytes, |_| None).expect("restore");
    assert_eq!(restored.tenants().len(), 1);
    assert_eq!(restored.workers(), 2);
    restored.finish().expect("workers alive");
}
