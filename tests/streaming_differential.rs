//! Differential property test of the streaming multi-core pipeline: for
//! random policies and random traces, the CG-key-sharded
//! [`superfe::StreamingPipeline`] must produce byte-identical feature
//! vectors to the single-threaded [`superfe::SuperFe`] at every worker
//! count — the executable form of the shard-by-CG-key determinism argument
//! in DESIGN.md ("Threading model"). Both run the same switch simulation,
//! so this isolates exactly the sharding, broadcast, transport, and merge
//! machinery.

use proptest::prelude::*;

use superfe::net::{Direction, PacketRecord};
use superfe::policy::dsl;
use superfe::{StreamingPipeline, SuperFe};

/// Worker counts every property must hold for.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Valid policies across granularities, collect units, and reducer shapes,
/// including multi-granularity programs that exercise the FG broadcast.
fn policy_source() -> impl Strategy<Value = String> {
    let single = {
        let gran = prop_oneof![Just("flow"), Just("host"), Just("socket")];
        let filt = prop_oneof![Just(""), Just(".filter(tcp.exist)\n")];
        let maps = prop_oneof![
            Just(""),
            Just(".map(ipt, tstamp, f_ipt)\n.reduce(ipt, [f_mean])\n"),
            Just(".map(d, _, f_direction)\n.reduce(d, [f_sum])\n"),
        ];
        let reduce = prop_oneof![
            Just("[f_sum]"),
            Just("[f_mean, f_var]"),
            Just("[f_min, f_max, f_std]"),
            Just("[ft_hist{100, 16}]"),
            Just("[f_card]"),
        ];
        let unit = prop_oneof![Just("{g}"), Just("pkt")];
        (gran, filt, maps, reduce, unit).prop_map(|(g, f, m, r, u)| {
            let unit = if u == "{g}" { g } else { "pkt" };
            format!("pktstream\n{f}.groupby({g})\n{m}.reduce(size, {r})\n.collect({unit})")
        })
    };
    // Multi-granularity: the finer level's records resolve through the FG
    // key table, which the executor must broadcast to every shard.
    let multi = prop_oneof![
        Just(
            "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
             .groupby(host)\n.reduce(size, [f_mean, f_var])\n.collect(host)"
                .to_string()
        ),
        Just(
            "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
             .groupby(channel)\n.reduce(size, [f_mean])\n.collect(channel)\n\
             .groupby(host)\n.reduce(size, [f_sum])\n.collect(host)"
                .to_string()
        ),
    ];
    prop_oneof![single, multi]
}

/// Random short traces with mixed protocols, directions, and group keys.
fn trace() -> impl Strategy<Value = Vec<PacketRecord>> {
    proptest::collection::vec(
        (
            0u64..5_000_000u64,
            40u16..1500u16,
            1u32..6u32,
            1u16..4u16,
            1u32..3u32,
            prop_oneof![Just(53u16), Just(80u16), Just(443u16)],
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
        1..200,
    )
    .prop_map(|mut specs| {
        specs.sort_by_key(|s| s.0);
        specs
            .into_iter()
            .map(|(ts, size, sip, sport, dip, dport, is_tcp, egress)| {
                let mut p = if is_tcp {
                    PacketRecord::tcp(ts, size, sip, sport, dip, dport)
                } else {
                    PacketRecord::udp(ts, size, sip, sport, dip, dport)
                };
                if egress {
                    p.direction = Direction::Egress;
                }
                p
            })
            .collect()
    })
}

/// Key-sorted `(key, values)` pairs: the order-independent comparison form.
type Sorted = Vec<(String, Vec<f64>)>;

fn sort_vectors(vs: Vec<superfe::nic::FeatureVector>) -> Sorted {
    let mut out: Sorted = vs
        .into_iter()
        .map(|v| (format!("{:?}", v.key), v.values.into_vec()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Runs the single-threaded pipeline: (groups, packet vectors).
fn run_sequential(src: &str, pkts: &[PacketRecord]) -> (Sorted, Sorted) {
    let mut fe = SuperFe::from_dsl(src).expect("valid policy");
    for p in pkts {
        fe.push(p);
    }
    let out = fe.finish();
    (
        sort_vectors(out.group_vectors),
        sort_vectors(out.packet_vectors),
    )
}

/// Runs the streaming pipeline with `workers` shards.
fn run_streaming(src: &str, pkts: &[PacketRecord], workers: usize) -> (Sorted, Sorted) {
    let mut fe = StreamingPipeline::from_dsl(src, workers).expect("valid policy");
    for p in pkts {
        fe.push(p).expect("workers alive");
    }
    let out = fe.finish().expect("workers alive");
    (
        sort_vectors(out.group_vectors),
        sort_vectors(out.packet_vectors),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_matches_sequential_at_every_worker_count(
        src in policy_source(),
        pkts in trace(),
    ) {
        dsl::parse(&src).expect("generated policy is valid");
        let (base_groups, base_pkts) = run_sequential(&src, &pkts);
        for workers in WORKER_COUNTS {
            let (groups, pkt_vecs) = run_streaming(&src, &pkts, workers);
            prop_assert!(
                base_groups == groups,
                "group vectors diverged at workers={} for:\n{}",
                workers,
                src
            );
            prop_assert!(
                base_pkts == pkt_vecs,
                "packet vectors diverged at workers={} for:\n{}",
                workers,
                src
            );
        }
    }
}

/// Merge order is a function of the input alone: repeated runs at the same
/// worker count must produce the same vector *sequence* (not just the same
/// set), because workers are joined in shard order.
#[test]
fn merge_order_is_deterministic_across_runs() {
    let src = "pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_mean])\n.collect(host)";
    let pkts: Vec<PacketRecord> = (0..3_000u64)
        .map(|i| PacketRecord::tcp(i * 700, 120, (i % 23 + 1) as u32, 1000, 7, 443))
        .collect();
    let run_once = || {
        let mut fe = StreamingPipeline::from_dsl(src, 4).expect("valid policy");
        for p in &pkts {
            fe.push(p).expect("workers alive");
        }
        let out = fe.finish().expect("workers alive");
        out.group_vectors
            .into_iter()
            .map(|v| (format!("{:?}", v.key), v.values.into_vec()))
            .collect::<Vec<_>>()
    };
    let first = run_once();
    assert!(!first.is_empty());
    for _ in 0..4 {
        assert_eq!(first, run_once(), "merge order varied between runs");
    }
}
