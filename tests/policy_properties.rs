//! Property-based tests of the policy layer: parser robustness, validation
//! soundness, and compile-time invariants.

use proptest::prelude::*;

use superfe::net::Granularity;
use superfe::policy::ast::{CollectUnit, Operator, ReduceFn};
use superfe::policy::{compile, dsl, pktstream};

/// A generator of *valid* single-level policies.
fn valid_policy_source() -> impl Strategy<Value = String> {
    let gran = prop_oneof![Just("flow"), Just("host"), Just("channel"), Just("socket")];
    let filt = prop_oneof![
        Just(""),
        Just(".filter(tcp.exist)\n"),
        Just(".filter(udp.exist or dstport == 53)\n"),
        Just(".filter(size > 100 and not (srcport == 22))\n"),
    ];
    let reduce = prop_oneof![
        Just("[f_sum]"),
        Just("[f_mean, f_var]"),
        Just("[f_min, f_max, f_std]"),
        Just("[ft_hist{100, 16}]"),
        Just("[f_card{8}]"),
        Just("[f_skew, f_kur]"),
        Just("[f_damped{1}]"),
    ];
    (gran, filt, reduce, proptest::bool::ANY).prop_map(|(g, f, r, with_ipt)| {
        let mapline = if with_ipt {
            ".map(ipt, tstamp, f_ipt)\n.reduce(ipt, [f_mean])\n.collect(GRAN)\n"
        } else {
            ""
        };
        format!(
            "pktstream\n{f}.groupby({g})\n{}\n.reduce(size, {r})\n.collect({g})",
            mapline.replace("GRAN", g)
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_policies_parse_and_compile(src in valid_policy_source()) {
        let policy = dsl::parse(&src).expect("generated policy is valid");
        let compiled = compile(&policy).expect("compiles");
        // The architecture split rule: switch ops vs NIC ops.
        for op in &policy.ops {
            match op {
                Operator::Filter(_) | Operator::GroupBy(_) => prop_assert!(op.on_switch()),
                _ => prop_assert!(!op.on_switch()),
            }
        }
        // Feature dimension is consistent between AST and compiled program.
        prop_assert_eq!(policy.feature_dimension(), compiled.nic.feature_dimension());
        // Every state has a positive size.
        for s in compiled.nic.states() {
            prop_assert!(s.bytes > 0);
        }
        // LoC metric is bounded by physical lines.
        prop_assert!(dsl::loc(&src) <= src.lines().count());
    }

    /// Printing and re-parsing a valid policy is the identity.
    #[test]
    fn print_parse_round_trip(src in valid_policy_source()) {
        let policy = dsl::parse(&src).expect("generated policy is valid");
        let printed = dsl::print(&policy);
        let reparsed = dsl::parse(&printed).expect("printed policy parses");
        prop_assert_eq!(reparsed, policy);
    }

    /// The parser must never panic, whatever bytes it is fed.
    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,200}") {
        let _ = dsl::parse(&src);
        let _ = dsl::loc(&src);
    }

    /// Parsing near-miss corruptions of a valid policy never panics and
    /// either fails cleanly or yields a policy that still compiles.
    #[test]
    fn corrupted_policies_fail_cleanly(
        src in valid_policy_source(),
        pos in 0usize..64,
        replacement in "[a-z{}().,\\[\\]]"
    ) {
        let mut bytes: Vec<char> = src.chars().collect();
        if pos < bytes.len() {
            bytes[pos] = replacement.chars().next().expect("one char");
        }
        let corrupted: String = bytes.into_iter().collect();
        if let Ok(p) = dsl::parse(&corrupted) {
            prop_assert!(compile(&p).is_ok());
        }
    }
}

#[test]
fn builder_and_dsl_agree() {
    let via_dsl = dsl::parse(
        "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_mean, f_var])\n.collect(flow)",
    )
    .expect("parses");
    let via_builder = pktstream()
        .filter(superfe::policy::Predicate::TcpExists)
        .groupby(Granularity::Flow)
        .reduce("size", vec![ReduceFn::Mean, ReduceFn::Var])
        .collect_group(Granularity::Flow)
        .build()
        .expect("builds");
    assert_eq!(via_dsl, via_builder);
}

#[test]
fn compiled_collect_units_preserved() {
    let policy = dsl::parse(
        "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(pkt)\n\
         .groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
    )
    .expect("parses");
    let c = compile(&policy).expect("compiles");
    assert_eq!(c.nic.levels[0].collect, Some(CollectUnit::Pkt));
    assert_eq!(
        c.nic.levels[1].collect,
        Some(CollectUnit::Group(Granularity::Host))
    );
}
