//! Fig. 11-style end-to-end accuracy floor through the *online serving*
//! path: train a KitNET detector on a benign trace, calibrate its threshold
//! from held-out benign scores (no hard-coded constants), then serve a
//! labelled Mirai-style trace through the sharded `DetectPipeline` and
//! check the detector still clears the §8.3 offline quality floor
//! (AUC > 0.75 for Kitsune) — plus the properties calibration buys:
//! benign warm-up stays quiet and the attack window raises alerts.

use std::collections::HashMap;

use superfe::detect::{score_offline, DetectPipeline, DetectorKind, ServeConfig};
use superfe::ml::{auc, train_and_calibrate, CalibrationConfig, Confusion};
use superfe::net::{Granularity, GroupKey};
use superfe::SuperFe;
use superfe_trafficgen::intrusion::{self, IntrusionConfig, Scenario};

/// The Kitsune policy (115-d per-packet vectors), as in the offline study.
const POLICY: &str = superfe::apps::policies::KITSUNE;

/// The offline §8.3 floor for Kitsune (see `superfe_apps::study`).
const AUC_FLOOR: f64 = 0.75;

fn scored_with_labels(
    scores: &[superfe::detect::ScoredVector],
    labelled: &[(superfe::net::PacketRecord, bool)],
) -> Vec<(f64, bool)> {
    // Ground truth by (socket key, occurrence index), as in the study.
    let mut occurrence: HashMap<GroupKey, usize> = HashMap::new();
    let mut label_of: HashMap<(GroupKey, usize), bool> = HashMap::new();
    for (p, l) in labelled {
        let k = Granularity::Socket.key_of(p);
        let n = occurrence.entry(k).or_insert(0);
        label_of.insert((k, *n), *l);
        *n += 1;
    }
    let mut occ2: HashMap<GroupKey, usize> = HashMap::new();
    scores
        .iter()
        .filter_map(|s| {
            let n = occ2.entry(s.key).or_insert(0);
            let key = (s.key, *n);
            *n += 1;
            label_of.get(&key).map(|&l| (s.score, l))
        })
        .collect()
}

#[test]
fn served_kitnet_clears_the_offline_accuracy_floor() {
    // --- Train + calibrate on benign traffic only. ---
    let train = intrusion::generate(&IntrusionConfig {
        scenario: Scenario::Mirai,
        benign_packets: 4_000,
        attack_packets: 0,
        seed: 21,
    });
    let mut fe = SuperFe::from_dsl(POLICY).expect("policy deploys");
    for (p, _) in &train.labelled {
        fe.push(p);
    }
    let vectors = fe.finish().packet_vectors;
    let refs: Vec<&[f64]> = vectors.iter().map(|v| v.values.as_slice()).collect();
    let dim = refs[0].len();
    assert_eq!(dim, 115, "Kitsune policy emits 115-d per-packet vectors");
    let det = DetectorKind::KitNet
        .build(dim, 21)
        .expect("detector builds");
    let frozen = train_and_calibrate(det, &refs, 0.2, CalibrationConfig::default())
        .expect("training trace is large enough");
    assert!(
        frozen.threshold() > 0.0,
        "calibration must derive a positive threshold"
    );

    // --- Serve a labelled attack trace online. ---
    let serve_set = intrusion::generate(&IntrusionConfig {
        scenario: Scenario::Mirai,
        benign_packets: 2_000,
        attack_packets: 1_000,
        seed: 22,
    });
    let cfg = ServeConfig {
        workers: 2,
        record_scores: true,
        scenario: "fig11".into(),
        ..ServeConfig::default()
    };
    let mut dp = DetectPipeline::from_dsl(POLICY, 2, &frozen, &cfg).expect("policy deploys");
    for (p, _) in &serve_set.labelled {
        dp.push(p).expect("pipeline alive");
    }
    let (_, report) = dp.finish().expect("pipeline alive");
    let scores = report.scores.as_ref().expect("record_scores on");
    assert_eq!(report.totals.scored as usize, serve_set.labelled.len());

    // --- Quality floor (threshold-free, matches the offline study). ---
    let pairs = scored_with_labels(scores, &serve_set.labelled);
    assert_eq!(
        pairs.len(),
        serve_set.labelled.len(),
        "every vector labelled"
    );
    let roc = auc(&pairs);
    assert!(
        roc > AUC_FLOOR,
        "served Kitsune AUC {roc} fell below the offline floor {AUC_FLOOR}"
    );

    // --- Properties the calibrated threshold buys. ---
    let threshold = frozen.threshold();
    let conf = Confusion::from_pairs(pairs.iter().map(|&(s, l)| (s > threshold, l)));
    assert!(conf.tp > 0, "attack window raised no alerts");
    assert_eq!(conf.fp, 0, "benign traffic raised {} false alerts", conf.fp);
    assert!(
        conf.f1() > 0.0,
        "alerting at the calibrated threshold must have signal"
    );
    assert_eq!(
        report.totals.alerts as usize,
        conf.tp + conf.fp,
        "every alert corresponds to a scored vector over threshold"
    );

    // --- The online path is bitwise-faithful to offline batch scoring. ---
    let mut fe = SuperFe::from_dsl(POLICY).expect("policy deploys");
    for (p, _) in &serve_set.labelled {
        fe.push(p);
    }
    let out = fe.finish();
    let offline = score_offline(&frozen, &out.packet_vectors, &out.group_vectors, "fig11");
    assert_eq!(
        superfe::detect::score_fingerprint(scores),
        superfe::detect::score_fingerprint(&offline.scores),
        "online serving diverged from offline batch scoring"
    );
}
