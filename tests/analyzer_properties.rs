//! Property-based tests of the static analyzer: on any policy the
//! validator and compiler accept, the analyzer must not report errors under
//! the default deployment configuration (warnings and notes are allowed —
//! they flag style and capacity pressure, not infeasibility), and analysis
//! must never panic, even on invalid policies.

use proptest::prelude::*;

use superfe::policy::analyze::{analyze_policy, Severity};
use superfe::policy::validate::validate;
use superfe::policy::{compile, dsl};
use superfe::{analyze, AnalyzeConfig};

/// A generator of *valid* single-level policies (the same space as
/// `tests/policy_properties.rs`).
fn valid_policy_source() -> impl Strategy<Value = String> {
    let gran = prop_oneof![Just("flow"), Just("host"), Just("channel"), Just("socket")];
    let filt = prop_oneof![
        Just(""),
        Just(".filter(tcp.exist)\n"),
        Just(".filter(udp.exist or dstport == 53)\n"),
        Just(".filter(size > 100 and not (srcport == 22))\n"),
    ];
    let reduce = prop_oneof![
        Just("[f_sum]"),
        Just("[f_mean, f_var]"),
        Just("[f_min, f_max, f_std]"),
        Just("[ft_hist{100, 16}]"),
        Just("[f_card{8}]"),
        Just("[f_skew, f_kur]"),
        Just("[f_damped{1}]"),
    ];
    (gran, filt, reduce, proptest::bool::ANY).prop_map(|(g, f, r, with_ipt)| {
        let mapline = if with_ipt {
            ".map(ipt, tstamp, f_ipt)\n.reduce(ipt, [f_mean])\n.collect(GRAN)\n"
        } else {
            ""
        };
        format!(
            "pktstream\n{f}.groupby({g})\n{}\n.reduce(size, {r})\n.collect({g})",
            mapline.replace("GRAN", g)
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Accepted policies never produce analyzer *errors* under the default
    /// budget: the analyzer is strictly more permissive than validate+compile
    /// at the error severity for policies the default hardware can host.
    #[test]
    fn accepted_policies_have_no_analyzer_errors(src in valid_policy_source()) {
        let policy = dsl::parse(&src).expect("generated policy is valid");
        validate(&policy).expect("validates");
        compile(&policy).expect("compiles");
        let report = analyze(&policy, &AnalyzeConfig::default());
        prop_assert!(
            !report.has_errors(),
            "analyzer errored on an accepted policy:\n{}\n{}",
            src,
            report.render()
        );
    }

    /// The structural pass and `validate` agree exactly on accept/reject.
    #[test]
    fn structural_pass_agrees_with_validate(src in valid_policy_source()) {
        let policy = dsl::parse(&src).expect("generated policy is valid");
        let report = analyze_policy(&policy);
        let structural_errors = report
            .of_severity(Severity::Error)
            .any(|d| d.code.starts_with("SF01"));
        prop_assert_eq!(validate(&policy).is_err(), structural_errors);
    }

    /// Whatever bytes parse into a policy, analysis must not panic.
    #[test]
    fn analyzer_never_panics(src in "[ -~\n]{0,200}") {
        if let Ok(policy) = dsl::parse(&src) {
            let report = analyze(&policy, &AnalyzeConfig::default());
            // Rendering exercises every diagnostic's Display path.
            let _ = report.render();
        }
    }
}
