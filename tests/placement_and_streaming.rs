//! Property-based tests of the placement ILP (optimality vs brute force) and
//! of the streaming estimators against exact references.

use proptest::prelude::*;

use superfe::nic::{solve_placement, MemLevel, NfpModel};
use superfe::policy::compile::StateSpec;
use superfe::streaming::{HyperLogLog, Moments, Reducer, Welford};

fn states_strategy() -> impl Strategy<Value = Vec<StateSpec>> {
    proptest::collection::vec((1usize..80, 1u8..8), 1..5).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (bytes, t))| StateSpec {
                name: format!("s{i}"),
                bytes,
                accesses_per_pkt: f64::from(t),
            })
            .collect()
    })
}

fn brute_force(states: &[StateSpec], model: &NfpModel) -> f64 {
    let budgets: Vec<f64> = model
        .memories
        .iter()
        .map(|m| {
            if m.level == MemLevel::Dram {
                f64::INFINITY
            } else {
                m.bus_bytes as f64
            }
        })
        .collect();
    let lat: Vec<f64> = model
        .memories
        .iter()
        .map(|m| m.latency_cycles as f64)
        .collect();
    let n_mem = model.memories.len();
    let mut best = f64::INFINITY;
    for code in 0..n_mem.pow(states.len() as u32) {
        let mut c = code;
        let mut used = vec![0f64; n_mem];
        let mut cost = 0.0;
        let mut ok = true;
        for s in states {
            let mi = c % n_mem;
            c /= n_mem;
            used[mi] += s.bytes as f64;
            if used[mi] > budgets[mi] {
                ok = false;
                break;
            }
            cost += s.accesses_per_pkt * lat[mi];
        }
        if ok && cost < best {
            best = cost;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn placement_is_optimal(states in states_strategy()) {
        let nfp = NfpModel::nfp4000();
        let p = solve_placement(&states, &nfp, 1).expect("solves");
        prop_assert!(p.optimal);
        let bf = brute_force(&states, &nfp);
        prop_assert!((p.total_cost - bf).abs() < 1e-9, "B&B {} vs brute {}", p.total_cost, bf);
    }

    #[test]
    fn placement_respects_bus_budgets(states in states_strategy()) {
        let nfp = NfpModel::nfp4000();
        let width = 2usize;
        let p = solve_placement(&states, &nfp, width).expect("solves");
        for mem in &nfp.memories {
            if mem.level == MemLevel::Dram {
                continue;
            }
            let used: usize = p
                .assignment
                .iter()
                .zip(&states)
                .filter(|((_, m), _)| *m == mem.level)
                .map(|(_, s)| s.bytes)
                .sum();
            prop_assert!(
                used * width <= mem.bus_bytes,
                "{}: {} bytes x width {} > bus {}",
                mem.level.name(), used, width, mem.bus_bytes
            );
        }
    }

    #[test]
    fn welford_matches_exact(xs in proptest::collection::vec(-1e5f64..1e5, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.update(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() <= 1e-6 * var.max(1.0));
    }

    #[test]
    fn moments_match_exact(xs in proptest::collection::vec(-1e3f64..1e3, 2..300)) {
        let mut m = Moments::new();
        for &x in &xs {
            m.update(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let central = |p: i32| xs.iter().map(|x| (x - mean).powi(p)).sum::<f64>() / n;
        let var = central(2);
        prop_assert!((m.variance() - var).abs() <= 1e-6 * var.max(1.0));
        if var > 1e-9 {
            let skew = central(3) / var.powf(1.5);
            prop_assert!((m.skewness() - skew).abs() <= 1e-5 * skew.abs().max(1.0));
        }
    }

    #[test]
    fn hll_merge_commutes(
        xs in proptest::collection::vec(0u32..5_000, 1..500),
        split in 0usize..500,
    ) {
        let split = split.min(xs.len());
        let mut ab = HyperLogLog::new(8).expect("valid");
        let mut a = HyperLogLog::new(8).expect("valid");
        let mut b = HyperLogLog::new(8).expect("valid");
        for (i, &x) in xs.iter().enumerate() {
            ab.update(f64::from(x));
            if i < split {
                a.update(f64::from(x));
            } else {
                b.update(f64::from(x));
            }
        }
        let mut ba = b.clone();
        prop_assert!(ba.merge(&a));
        prop_assert!(a.merge(&b));
        prop_assert_eq!(a.estimate().to_bits(), ba.estimate().to_bits());
        prop_assert_eq!(a.estimate().to_bits(), ab.estimate().to_bits());
    }

    #[test]
    fn histogram_mass_conserved(xs in proptest::collection::vec(0f64..2_000.0, 0..500)) {
        let mut h = superfe::streaming::Histogram::fixed(50.0, 32).expect("valid");
        for &x in &xs {
            h.update(x);
        }
        prop_assert_eq!(h.counts().iter().sum::<u64>() as usize, xs.len());
        if !xs.is_empty() {
            let cdf = h.cdf();
            prop_assert!((cdf.last().expect("bins") - 1.0).abs() < 1e-9);
            for w in cdf.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
        }
    }
}
