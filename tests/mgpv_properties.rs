//! Property-based tests of the MGPV cache invariants.
//!
//! 1. **Conservation**: every inserted record is evicted exactly once.
//! 2. **Order preservation**: within any finest-granularity group, records
//!    reach the NIC in arrival order (the paper's key correctness property
//!    of MGPV vs naive multi-granularity eviction).
//! 3. **FG consistency**: every record's FG index resolves on the NIC.

use proptest::prelude::*;

use superfe::net::{Granularity, GroupKey, PacketRecord};
use superfe::switch::{CgEvictPolicy, MgpvCache, MgpvConfig, SwitchEvent};

#[derive(Clone, Debug)]
struct PktSpec {
    host: u8,
    port: u8,
    gap_us: u16,
    size: u16,
}

fn pkt_strategy() -> impl Strategy<Value = PktSpec> {
    (0u8..12, 0u8..4, 0u16..2_000, 64u16..1500).prop_map(|(host, port, gap_us, size)| PktSpec {
        host,
        port,
        gap_us,
        size,
    })
}

fn cache_strategy() -> impl Strategy<Value = MgpvConfig> {
    (
        1usize..32,
        1usize..6,
        0usize..8,
        2usize..12,
        1usize..32,
        0u8..3,
        0u8..3,
    )
        .prop_map(
            |(short_count, short_size, long_count, long_size, fg_size, aging, policy)| MgpvConfig {
                short_count,
                short_size,
                long_count,
                long_size,
                fg_table_size: fg_size,
                aging_t_ns: match aging {
                    0 => None,
                    1 => Some(1_000_000),
                    _ => Some(100_000_000),
                },
                probes_per_packet: 2,
                probe_rate_hz: 100_000.0,
                activity_window_ns: 10_000_000,
                policy: match policy {
                    0 => CgEvictPolicy::DirectMapped,
                    1 => CgEvictPolicy::RandomWay { ways: 2, seed: 7 },
                    _ => CgEvictPolicy::RandomWay { ways: 4, seed: 11 },
                },
            },
        )
}

fn run_cache(cfg: MgpvConfig, specs: &[PktSpec]) -> (Vec<SwitchEvent>, usize) {
    let mut cache = MgpvCache::new(cfg).expect("valid config");
    let mut events = Vec::new();
    let mut ts = 0u64;
    for s in specs {
        ts += u64::from(s.gap_us) * 1_000;
        let p = PacketRecord::tcp(
            ts,
            s.size,
            u32::from(s.host) + 1,
            1000 + u16::from(s.port),
            99,
            443,
        );
        let cg = Granularity::Host.key_of(&p);
        let fg = if cfg.fg_table_size > 0 {
            Some(Granularity::Socket.key_of(&p))
        } else {
            None
        };
        events.extend(cache.insert(&p, cg, fg));
    }
    events.extend(cache.flush());
    (events, specs.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_conserved(cfg in cache_strategy(), specs in proptest::collection::vec(pkt_strategy(), 1..400)) {
        let (events, inserted) = run_cache(cfg, &specs);
        let evicted: usize = events
            .iter()
            .filter_map(|e| match e {
                SwitchEvent::Mgpv(m) => Some(m.records.len()),
                _ => None,
            })
            .sum();
        prop_assert_eq!(evicted, inserted);
    }

    #[test]
    fn per_group_timestamps_in_order(
        cfg in cache_strategy(),
        specs in proptest::collection::vec(pkt_strategy(), 1..400),
    ) {
        let (events, _) = run_cache(cfg, &specs);
        // Replay the event stream, mirroring the FG table, and check that
        // each FG group's record timestamps never go backwards.
        let mut mirror: Vec<Option<GroupKey>> = vec![None; cfg.fg_table_size];
        let mut last_ts: std::collections::HashMap<GroupKey, u32> = Default::default();
        for e in &events {
            match e {
                SwitchEvent::FgUpdate(u) => {
                    mirror[u.idx as usize] = Some(u.key);
                }
                SwitchEvent::Mgpv(m) => {
                    for r in &m.records {
                        let group = if cfg.fg_table_size > 0 {
                            mirror[r.fg_idx as usize].expect("resolvable")
                        } else {
                            m.cg_key
                        };
                        let prev = last_ts.entry(group).or_insert(0);
                        prop_assert!(
                            r.tstamp_us >= *prev,
                            "group {:?}: ts {} after {}", group, r.tstamp_us, *prev
                        );
                        *prev = r.tstamp_us;
                    }
                }
            }
        }
    }

    #[test]
    fn fg_indices_always_resolve(
        cfg in cache_strategy(),
        specs in proptest::collection::vec(pkt_strategy(), 1..300),
    ) {
        prop_assume!(cfg.fg_table_size > 0);
        let (events, _) = run_cache(cfg, &specs);
        let mut mirror: Vec<Option<GroupKey>> = vec![None; cfg.fg_table_size];
        for e in &events {
            match e {
                SwitchEvent::FgUpdate(u) => mirror[u.idx as usize] = Some(u.key),
                SwitchEvent::Mgpv(m) => {
                    for r in &m.records {
                        let k = mirror[r.fg_idx as usize];
                        prop_assert!(k.is_some(), "unresolved fg_idx {}", r.fg_idx);
                        // The resolved key must project onto the CG key.
                        prop_assert_eq!(
                            k.expect("checked").project(Granularity::Host),
                            Some(m.cg_key)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn messages_are_never_empty(
        cfg in cache_strategy(),
        specs in proptest::collection::vec(pkt_strategy(), 1..300),
    ) {
        let (events, _) = run_cache(cfg, &specs);
        for e in &events {
            if let SwitchEvent::Mgpv(m) = e {
                prop_assert!(!m.records.is_empty());
                prop_assert!(m.records.len() <= cfg.short_size + cfg.long_size);
            }
        }
    }
}
