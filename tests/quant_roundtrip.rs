//! Property test of the fixed-point lowering: for random trained
//! detectors × random in-domain vectors, the quantized score must sit
//! within the certified [`superfe::ml::ErrorBound`] of the float score —
//! the executable form of the SF0901 certificate — plus the CART
//! grid-exactness guarantee the SF09xx pass leans on.

use proptest::prelude::*;

use superfe::ml::{
    quantize, train_and_calibrate, CalibrationConfig, CartDetector, CentroidDetector, Detector,
    FrozenDetector, KitNetDetector, QuantConfig, QuantizedDetector,
};

/// The feature hull every generated vector stays inside. The lower edge is
/// bounded away from zero so the centroid lowering's input-norm bound is
/// provable (a hull containing the origin makes cosine error unbounded).
const LO: f64 = 1.0;
const HI: f64 = 16.0;

/// Which lowering the property exercises.
#[derive(Clone, Copy, Debug)]
enum Kind {
    Centroid,
    KitNet,
    Cart,
}

/// Trains and calibrates a detector of `kind` on `data`, then lowers it.
fn freeze_and_quantize(
    kind: Kind,
    dim: usize,
    seed: u64,
    data: &[Vec<f64>],
) -> Option<(FrozenDetector, QuantizedDetector)> {
    let det: Box<dyn Detector> = match kind {
        Kind::Centroid => Box::new(CentroidDetector::new(dim).ok()?),
        Kind::KitNet => Box::new(KitNetDetector::new(dim, seed).ok()?),
        Kind::Cart => Box::new(CartDetector::new(dim, seed).ok()?),
    };
    let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
    let frozen = train_and_calibrate(det, &refs, 0.2, CalibrationConfig::default()).ok()?;
    let quant = quantize(
        &frozen,
        &QuantConfig {
            max_abs_input: HI * 2.0,
            ..QuantConfig::default()
        },
    )
    .ok()?;
    Some((frozen, quant))
}

/// Widest feature dimension the property exercises; each case truncates
/// rows to its generated `dim` (the vendored proptest has no flat_map).
const MAX_DIM: usize = 4;

/// Rows inside the hull; values are integer-valued so the same inputs are
/// valid for CART's grid-exact bound.
fn rows(count: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec((LO as i64..=HI as i64).prop_map(|v| v as f64), MAX_DIM),
        count,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// |float − quantized| ≤ the certified bound, for every lowering, on
    /// every in-hull vector.
    #[test]
    fn quantized_scores_stay_within_the_certified_bound(
        seed in 0u64..1_000,
        kind_ix in 0usize..3,
        dim in 2usize..5,
        wide_data in rows(24..48),
        wide_xs in rows(4..24),
    ) {
        let data: Vec<Vec<f64>> =
            wide_data.iter().map(|r| r[..dim].to_vec()).collect();
        let xs: Vec<Vec<f64>> = wide_xs.iter().map(|r| r[..dim].to_vec()).collect();
        let kind = [Kind::Centroid, Kind::KitNet, Kind::Cart][kind_ix];
        let Some((frozen, quant)) = freeze_and_quantize(kind, dim, seed, &data) else {
            return Ok(());
        };
        let domain: Vec<(f64, f64)> = vec![(LO, HI); dim];
        let eb = quant.error_bound(&domain).expect("dim matches");
        prop_assert!(
            eb.bound.is_finite(),
            "{kind:?} bound must be provable on a hull bounded away from 0, got {:?}",
            eb
        );
        for x in &xs {
            if x.len() != dim {
                continue;
            }
            let f = frozen.score(x).expect("in-dim");
            let q = quant.score(x).expect("in-dim");
            prop_assert!(
                (f - q).abs() <= eb.bound,
                "{kind:?}: |{f} - {q}| = {} exceeds certified {}",
                (f - q).abs(),
                eb.bound
            );
        }
        // The quantized threshold is exactly on the grid: score comparison
        // against it is reproducible integer arithmetic.
        let scaled = quant.threshold() * f64::from(1u32 << quant.frac_bits());
        prop_assert!(scaled == scaled.round(), "threshold off-grid: {scaled}");
    }
}

/// CART's lowering is *exact* on the integer grid: half-integer split
/// midpoints cannot sit between a float and its fixed-point image, so
/// routing is identical and scores differ only by leaf rounding (≤ 2⁻²⁴).
#[test]
fn cart_is_grid_exact_on_integer_inputs() {
    let data: Vec<Vec<f64>> = (0..96)
        .map(|i| vec![f64::from(i % 12) + 1.0, f64::from(i / 12) + 1.0, 3.0])
        .collect();
    let (frozen, quant) =
        freeze_and_quantize(Kind::Cart, 3, 7, &data).expect("cart trains and lowers");
    let eb = quant
        .error_bound(&[(0.0, 16.0), (0.0, 16.0), (0.0, 16.0)])
        .expect("dim matches");
    assert!(eb.grid_exact_only, "CART's bound is integer-grid-only");
    assert!(
        eb.bound <= 2f64.powi(-24),
        "leaf rounding only, got {}",
        eb.bound
    );
    for a in 0..14 {
        for b in 0..14 {
            let x = [f64::from(a), f64::from(b), 3.0];
            let f = frozen.score(&x).expect("in-dim");
            let q = quant.score(&x).expect("in-dim");
            assert!(
                (f - q).abs() <= eb.bound,
                "integer input ({a},{b}) routed differently: |{f} - {q}|"
            );
        }
    }
}
