//! Differential property test of the online serving executor: for random
//! policies × random labelled traces, the sharded
//! [`superfe::detect::DetectPipeline`] must produce **bitwise-identical**
//! scores and a deterministic alert stream versus offline batch scoring
//! ([`superfe::detect::score_offline`]) of the same extraction, at every
//! worker count — the executable form of the per-key ordering argument in
//! DESIGN.md ("Online detection").

use std::sync::Arc;

use proptest::prelude::*;

use superfe::detect::{score_fingerprint, DetectPipeline, ServeConfig};
use superfe::ml::{
    quantize, train_and_calibrate, CalibrationConfig, CentroidDetector, KnnNovelty, QuantConfig,
    QuantizedDetector,
};
use superfe::net::{Direction, PacketRecord};
use superfe::{StreamingPipeline, SuperFe, SuperFeConfig};

/// Worker counts every property must hold for (NIC shards = inference
/// workers).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Policies whose vectors feed the detector: per-packet collect across
/// granularities, a group-collect, and a multi-granularity program that
/// exercises the FG broadcast on the extraction side.
fn policy_source() -> impl Strategy<Value = String> {
    let pkt = {
        let gran = prop_oneof![Just("flow"), Just("host"), Just("socket")];
        let reduce = prop_oneof![
            Just("[f_sum]"),
            Just("[f_mean, f_var]"),
            Just("[f_min, f_max, f_std]"),
        ];
        (gran, reduce).prop_map(|(g, r)| {
            format!("pktstream\n.groupby({g})\n.reduce(size, {r})\n.collect(pkt)")
        })
    };
    let group = Just(
        "pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_mean])\n.collect(host)".to_string(),
    );
    let multi = Just(
        "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(pkt)\n\
         .groupby(host)\n.reduce(size, [f_mean])\n.collect(host)"
            .to_string(),
    );
    prop_oneof![pkt, group, multi]
}

/// Random short traces with mixed protocols, directions, and group keys.
fn trace() -> impl Strategy<Value = Vec<PacketRecord>> {
    proptest::collection::vec(
        (
            0u64..5_000_000u64,
            40u16..1500u16,
            1u32..6u32,
            1u16..4u16,
            1u32..3u32,
            prop_oneof![Just(53u16), Just(80u16), Just(443u16)],
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
        8..200,
    )
    .prop_map(|mut specs| {
        specs.sort_by_key(|s| s.0);
        specs
            .into_iter()
            .map(|(ts, size, sip, sport, dip, dport, is_tcp, egress)| {
                let mut p = if is_tcp {
                    PacketRecord::tcp(ts, size, sip, sport, dip, dport)
                } else {
                    PacketRecord::udp(ts, size, sip, sport, dip, dport)
                };
                if egress {
                    p.direction = Direction::Egress;
                }
                p
            })
            .collect()
    })
}

/// Which detector family to freeze for the run.
#[derive(Clone, Copy, Debug)]
enum Kind {
    Knn,
    Centroid,
}

/// Extracts the trace offline, trains + calibrates a detector on the
/// resulting vectors, and returns it with the extraction.
///
/// Calibrating at the 0.8 quantile with no margin deliberately puts the
/// threshold *inside* the observed score range, so the alert stream under
/// test is non-empty for most inputs.
fn freeze(
    src: &str,
    pkts: &[PacketRecord],
    kind: Kind,
) -> Option<(
    superfe::ml::FrozenDetector,
    Vec<superfe::nic::FeatureVector>,
    Vec<superfe::nic::FeatureVector>,
)> {
    let mut fe = SuperFe::from_dsl(src).expect("valid policy");
    for p in pkts {
        fe.push(p);
    }
    let out = fe.finish();
    let all: Vec<&[f64]> = out
        .packet_vectors
        .iter()
        .chain(&out.group_vectors)
        .map(|v| v.values.as_slice())
        .collect();
    if all.len() < 8 {
        return None;
    }
    let dim = all[0].len();
    let det: Box<dyn superfe::ml::Detector> = match kind {
        Kind::Knn => Box::new(KnnNovelty::new(dim, 3).expect("valid k")),
        Kind::Centroid => Box::new(CentroidDetector::new(dim).expect("valid dim")),
    };
    let frozen = train_and_calibrate(
        det,
        &all,
        0.25,
        CalibrationConfig {
            quantile: 0.8,
            margin: 1.0,
        },
    )
    .ok()?;
    Some((frozen, out.packet_vectors, out.group_vectors))
}

/// Serves the trace online and returns the report.
fn serve_online(
    src: &str,
    pkts: &[PacketRecord],
    det: &superfe::ml::FrozenDetector,
    workers: usize,
) -> superfe::detect::ServeReport {
    let cfg = ServeConfig {
        workers,
        record_scores: true,
        scenario: "diff".into(),
        ..ServeConfig::default()
    };
    let mut dp = DetectPipeline::from_dsl(src, workers, det, &cfg).expect("valid policy");
    for p in pkts {
        dp.push(p).expect("pipeline alive");
    }
    let (_, report) = dp.finish().expect("pipeline alive");
    report
}

/// Quantizes a frozen detector with an input grid sized from the vectors
/// it will actually score, so no in-range input saturates.
fn quantize_for(
    det: &superfe::ml::FrozenDetector,
    vectors: &[superfe::nic::FeatureVector],
) -> Option<QuantizedDetector> {
    let max_abs = vectors
        .iter()
        .flat_map(|v| v.values.as_slice())
        .fold(0.0f64, |m, &v| m.max(v.abs()));
    quantize(
        det,
        &QuantConfig {
            max_abs_input: (max_abs * 2.0).max(1.0),
            ..QuantConfig::default()
        },
    )
    .ok()
}

/// Serves the trace through the in-pipeline quantized stage and returns the
/// extraction (inline alerts + stats included).
fn serve_in_pipeline(
    src: &str,
    pkts: &[PacketRecord],
    model: &Arc<QuantizedDetector>,
    workers: usize,
) -> superfe::Extraction {
    let policy = superfe::policy::dsl::parse(src).expect("valid policy");
    let mut fe = StreamingPipeline::with_inference(
        &policy,
        SuperFeConfig::default(),
        workers,
        model.clone(),
    )
    .expect("valid policy");
    for p in pkts {
        fe.push(p).expect("pipeline alive");
    }
    fe.finish().expect("pipeline alive")
}

/// Alert stream in its worker-count-independent comparison form: canonical
/// order with bitwise scores and thresholds.
fn alert_fingerprint(alerts: &[superfe::detect::Alert]) -> Vec<(String, u64, u64)> {
    alerts
        .iter()
        .map(|a| {
            (
                format!("{:?}", a.key),
                a.score.to_bits(),
                a.threshold.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn online_serving_matches_offline_batch_at_every_worker_count(
        src in policy_source(),
        pkts in trace(),
        knn in proptest::bool::ANY,
    ) {
        let kind = if knn { Kind::Knn } else { Kind::Centroid };
        let Some((det, pkt_vecs, group_vecs)) = freeze(&src, &pkts, kind) else {
            // Too few vectors to train on — not an interesting input.
            return Ok(());
        };
        let offline =
            superfe::detect::score_offline(&det, &pkt_vecs, &group_vecs, "diff");
        let offline_scores = score_fingerprint(&offline.scores);
        let offline_alerts = alert_fingerprint(&offline.alerts);

        for workers in WORKER_COUNTS {
            let report = serve_online(&src, &pkts, &det, workers);
            let scores = report.scores.as_ref().expect("record_scores on");
            prop_assert!(
                score_fingerprint(scores) == offline_scores,
                "scores diverged from offline at workers={} for:\n{}",
                workers,
                src
            );
            prop_assert!(
                alert_fingerprint(&report.alerts) == offline_alerts,
                "alert stream diverged from offline at workers={} for:\n{}",
                workers,
                src
            );
            prop_assert_eq!(report.totals.dim_errors, offline.dim_errors);
        }
    }

    /// The in-pipeline quantized stage is the fixed-point analogue of the
    /// property above: for every worker count, its inline alert stream must
    /// be bitwise-identical to offline batch scoring with the same
    /// quantized model ([`superfe::detect::score_offline_quantized`]).
    #[test]
    fn in_pipeline_quantized_alerts_match_offline_at_every_worker_count(
        src in policy_source(),
        pkts in trace(),
    ) {
        // Only centroid has both a float and a fixed-point lowering here;
        // the float differential already covers knn.
        let Some((det, pkt_vecs, group_vecs)) = freeze(&src, &pkts, Kind::Centroid) else {
            return Ok(());
        };
        let all: Vec<superfe::nic::FeatureVector> =
            pkt_vecs.iter().chain(&group_vecs).cloned().collect();
        let Some(model) = quantize_for(&det, &all) else {
            return Ok(());
        };
        let model = Arc::new(model);
        let offline = superfe::detect::score_offline_quantized(
            &model, &pkt_vecs, &group_vecs, "diff",
        );
        let offline_alerts = alert_fingerprint(&offline.alerts);
        let total = (pkt_vecs.len() + group_vecs.len()) as u64;

        for workers in WORKER_COUNTS {
            let ex = serve_in_pipeline(&src, &pkts, &model, workers);
            let stats = ex.inline_stats.expect("inference was attached");
            prop_assert_eq!(
                stats.scored + stats.dim_errors,
                total,
                "inline stage must see every emitted vector at workers={}",
                workers
            );
            prop_assert_eq!(stats.dim_errors, offline.dim_errors);
            let inline = superfe::detect::inline_to_alerts(&ex.inline_alerts, "diff");
            prop_assert!(
                alert_fingerprint(&inline) == offline_alerts,
                "quantized alert stream diverged from offline at workers={} for:\n{}",
                workers,
                src
            );
        }
    }
}

/// The alert stream is a function of the input alone: repeated serve runs
/// at the same worker count must produce the same canonical alert sequence.
#[test]
fn alert_stream_is_deterministic_across_runs() {
    let src = "pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_mean])\n.collect(pkt)";
    let pkts: Vec<PacketRecord> = (0..2_000u64)
        .map(|i| {
            let size = if i % 97 == 0 { 1400 } else { 120 };
            PacketRecord::tcp(i * 700, size, (i % 23 + 1) as u32, 1000, 7, 443)
        })
        .collect();
    let (det, _, _) = freeze(src, &pkts, Kind::Knn).expect("enough vectors");
    let first = alert_fingerprint(&serve_online(src, &pkts, &det, 4).alerts);
    assert!(!first.is_empty(), "calibration inside the range must alert");
    for _ in 0..4 {
        let again = alert_fingerprint(&serve_online(src, &pkts, &det, 4).alerts);
        assert_eq!(first, again, "alert stream varied between runs");
    }
}
