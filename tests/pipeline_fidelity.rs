//! Cross-crate fidelity: the switch+NIC pipeline must produce the same
//! features as the single-server software reference for every application
//! policy, across workload traces.

use std::collections::HashMap;

use superfe::apps::all_apps;
use superfe::net::GroupKey;
use superfe::nic::FeatureVector;
use superfe::trafficgen::{Workload, WorkloadPreset};
use superfe::{SoftwareExtractor, SuperFe};

fn by_key(vs: Vec<FeatureVector>) -> HashMap<GroupKey, Vec<f64>> {
    vs.into_iter()
        .map(|v| (v.key, v.values.into_vec()))
        .collect()
}

/// Truncates timestamps to the MGPV metadata resolution (32-bit µs), so the
/// software reference sees exactly what the pipeline's records carry and the
/// comparison isolates pipeline machinery from intended quantization.
fn truncate_us(p: &superfe::net::PacketRecord) -> superfe::net::PacketRecord {
    let mut c = *p;
    c.ts_ns = (c.ts_ns / 1_000) * 1_000;
    c
}

fn assert_close(app: &str, key: &GroupKey, a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len(), "{app}: dimension mismatch for {key:?}");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let denom = x.abs().max(1.0);
        assert!(
            (x - y).abs() / denom <= tol,
            "{app}: feature {i} of {key:?}: software {x} vs pipeline {y}"
        );
    }
}

/// Group-collect policies: per-group vectors must match the reference.
#[test]
fn group_policies_match_software_reference() {
    let trace = Workload::enterprise().packets(20_000).seed(77).generate();
    for app in all_apps() {
        // Per-packet (collect(pkt)) apps are covered by the next test.
        if ["N-BaIoT", "HELAD", "Kitsune"].contains(&app.name) {
            continue;
        }
        let mut sw = SoftwareExtractor::new(&app.policy()).expect("builds");
        let mut hw = SuperFe::new(&app.policy()).expect("deploys");
        for p in &trace.records {
            sw.push(&truncate_us(p));
            hw.push(p);
        }
        let (sw_groups, _) = sw.finish();
        let hw_out = hw.finish();
        let sw_map = by_key(sw_groups);
        let hw_map = by_key(hw_out.group_vectors);
        assert_eq!(
            sw_map.len(),
            hw_map.len(),
            "{}: group count mismatch",
            app.name
        );
        for (key, sv) in &sw_map {
            let hv = hw_map
                .get(key)
                .unwrap_or_else(|| panic!("{}: pipeline missing group {key:?}", app.name));
            assert_close(app.name, key, sv, hv, 1e-6);
        }
    }
}

/// Per-packet policies: vector streams must match (key, occurrence) wise.
#[test]
fn per_packet_policies_match_software_reference() {
    let trace = Workload::campus().packets(8_000).seed(78).generate();
    for app in all_apps() {
        if !["N-BaIoT", "Kitsune"].contains(&app.name) {
            continue;
        }
        let mut sw = SoftwareExtractor::new(&app.policy()).expect("builds");
        let mut hw = SuperFe::new(&app.policy()).expect("deploys");
        for p in &trace.records {
            sw.push(&truncate_us(p));
            hw.push(p);
        }
        let (_, sw_pkts) = sw.finish();
        let hw_pkts = hw.finish().packet_vectors;
        assert_eq!(sw_pkts.len(), hw_pkts.len(), "{}", app.name);

        let index = |vs: &[FeatureVector]| {
            let mut occ: HashMap<GroupKey, usize> = HashMap::new();
            let mut map: HashMap<(GroupKey, usize), Vec<f64>> = HashMap::new();
            for v in vs {
                let n = occ.entry(v.key).or_insert(0);
                map.insert((v.key, *n), v.values.to_vec());
                *n += 1;
            }
            map
        };
        let si = index(&sw_pkts);
        let hi = index(&hw_pkts);
        let mut checked = 0;
        for (k, sv) in &si {
            let hv = hi
                .get(k)
                .unwrap_or_else(|| panic!("{}: missing {k:?}", app.name));
            assert_close(app.name, &k.0, sv, hv, 1e-6);
            checked += 1;
        }
        assert_eq!(checked, sw_pkts.len());
    }
}

/// Against the *full-precision* reference, the only divergence is the µs
/// metadata quantization, which must stay within the paper's Fig. 10 bound.
#[test]
fn quantization_error_stays_below_4_percent() {
    let trace = Workload::enterprise().packets(10_000).seed(81).generate();
    let app = all_apps()
        .into_iter()
        .find(|a| a.name == "PeerShark")
        .expect("present");
    let mut sw = SoftwareExtractor::new(&app.policy()).expect("builds");
    let mut hw = SuperFe::new(&app.policy()).expect("deploys");
    for p in &trace.records {
        sw.push(p); // full-precision timestamps
        hw.push(p);
    }
    let sw_map = by_key(sw.finish().0);
    let hw_map = by_key(hw.finish().group_vectors);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (key, sv) in &sw_map {
        let hv = &hw_map[key];
        for (x, y) in sv.iter().zip(hv) {
            num += (x - y).abs();
            den += x.abs();
        }
    }
    let err = num / den.max(1e-9);
    assert!(err < 0.04, "aggregate quantization error {err}");
}

/// The pipeline must behave identically whether fed parsed records or raw
/// frames (the parser path is lossless for well-formed traffic).
#[test]
fn frame_and_record_paths_agree() {
    let trace = Workload::mawi().packets(5_000).seed(79).generate();
    let app = &all_apps()[7]; // NPOD
    let mut via_records = SuperFe::new(&app.policy()).expect("deploys");
    let mut via_frames = SuperFe::new(&app.policy()).expect("deploys");
    for p in &trace.records {
        via_records.push(p);
        let frame = superfe::net::wire::build_frame(p);
        via_frames
            .push_frame(&frame, p.ts_ns, p.direction)
            .expect("well-formed");
    }
    let a = by_key(via_records.finish().group_vectors);
    let b = by_key(via_frames.finish().group_vectors);
    assert_eq!(a, b);
}

/// The aggregate byte reduction promise holds for every preset with the
/// most demanding policy (Kitsune).
#[test]
fn aggregation_reduction_holds_across_presets() {
    let app = all_apps()
        .into_iter()
        .find(|a| a.name == "Kitsune")
        .expect("present");
    for preset in WorkloadPreset::all() {
        let trace = Workload::preset(preset).packets(20_000).seed(80).generate();
        let mut fe = SuperFe::new(&app.policy()).expect("deploys");
        for p in &trace.records {
            fe.push(p);
        }
        let out = fe.finish();
        assert!(
            out.switch_stats.byte_aggregation_ratio() < 0.2,
            "{}: {}",
            preset.name(),
            out.switch_stats.byte_aggregation_ratio()
        );
    }
}
