//! Keystone isolation differential for the multi-tenant control plane:
//! for random tenant subsets, random traces, and every worker count, each
//! tenant's feature vectors on the shared switch/NIC must be **bitwise
//! identical** to the same policy running alone on its own
//! [`superfe::StreamingPipeline`] — including under mid-stream hot attach
//! and detach of *other* tenants. This is the executable form of the
//! control plane's isolation contract: tenancy is invisible in the output.
//!
//! A second, deterministic differential extends the claim through the
//! serving layer: a tenant's alert stream alongside a noisy neighbor must
//! equal its alert stream running alone.

use proptest::prelude::*;

use superfe::ctrl::{CtrlPlane, TenantSpec};
use superfe::net::{Direction, PacketRecord};
use superfe::policy::dsl;
use superfe::{AnalyzeConfig, StreamingPipeline, SuperFeConfig};

/// Worker counts every property must hold for.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The tenant candidate pool: distinct granularities, filters, collect
/// units, and a multi-granularity program (exercises the per-tenant FG
/// broadcast on the shared NIC). Any subset fits the default Tofino
/// budget.
const POOL: [&str; 4] = [
    "pktstream\n.groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
    "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_mean, f_max])\n.collect(flow)",
    "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
     .groupby(host)\n.reduce(size, [f_mean])\n.collect(host)",
    "pktstream\n.filter(udp.exist)\n.groupby(channel)\n.reduce(size, [f_min, f_max])\n.collect(pkt)",
];

/// One tenant's randomized lifecycle, as fractions of the trace length:
/// attach at `attach_pct`%, detach at `detach_pct`% when set.
#[derive(Clone, Copy, Debug)]
struct Lifecycle {
    pool_index: usize,
    attach_pct: u8,
    detach_pct: Option<u8>,
}

/// Random non-empty tenant subsets with per-tenant attach/detach epochs.
fn subset() -> impl Strategy<Value = Vec<Lifecycle>> {
    proptest::collection::vec(
        (0usize..POOL.len(), 0u8..50, proptest::bool::ANY, 55u8..100),
        1..4,
    )
    .prop_map(|picks| {
        let mut out: Vec<Lifecycle> = Vec::new();
        for (pool_index, attach_pct, detaches, detach_pct) in picks {
            // One tenant per pool policy: duplicates would be legal but
            // make the differential redundant.
            if out.iter().any(|l| l.pool_index == pool_index) {
                continue;
            }
            out.push(Lifecycle {
                pool_index,
                attach_pct,
                detach_pct: detaches.then_some(detach_pct),
            });
        }
        out
    })
}

/// Random short traces with mixed protocols, directions, and group keys.
fn trace() -> impl Strategy<Value = Vec<PacketRecord>> {
    proptest::collection::vec(
        (
            0u64..5_000_000u64,
            40u16..1500u16,
            1u32..6u32,
            1u16..4u16,
            1u32..3u32,
            prop_oneof![Just(53u16), Just(80u16), Just(443u16)],
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
        20..200,
    )
    .prop_map(|mut specs| {
        specs.sort_by_key(|s| s.0);
        specs
            .into_iter()
            .map(|(ts, size, sip, sport, dip, dport, is_tcp, egress)| {
                let mut p = if is_tcp {
                    PacketRecord::tcp(ts, size, sip, sport, dip, dport)
                } else {
                    PacketRecord::udp(ts, size, sip, sport, dip, dport)
                };
                if egress {
                    p.direction = Direction::Egress;
                }
                p
            })
            .collect()
    })
}

fn spec(pool_index: usize) -> TenantSpec {
    TenantSpec {
        name: format!("pool{pool_index}"),
        policy: dsl::parse(POOL[pool_index]).expect("pool policy is valid"),
        cfg: SuperFeConfig::default(),
    }
}

/// Runs each tenant's policy alone over its attach..detach window.
fn solo_run(
    l: &Lifecycle,
    pkts: &[PacketRecord],
    workers: usize,
) -> (
    Vec<superfe::nic::FeatureVector>,
    Vec<superfe::nic::FeatureVector>,
) {
    let s = spec(l.pool_index);
    let lo = l.attach_pct as usize * pkts.len() / 100;
    let hi = l
        .detach_pct
        .map_or(pkts.len(), |d| d as usize * pkts.len() / 100);
    let mut fe = StreamingPipeline::with_config(&s.policy, s.cfg, workers).expect("policy deploys");
    for p in &pkts[lo..hi] {
        fe.push(p).expect("workers alive");
    }
    let out = fe.finish().expect("workers alive");
    (out.group_vectors, out.packet_vectors)
}

/// Replays `tenants` against a fused control plane at every worker count
/// and checks each tenant's vectors bitwise against its solo run.
fn assert_bitwise_solo(
    tenants: &[Lifecycle],
    pkts: &[PacketRecord],
) -> Result<(), proptest::test_runner::TestCaseError> {
    for &workers in &WORKER_COUNTS {
        let mut plane = CtrlPlane::new(workers, AnalyzeConfig::default());
        let mut ids = vec![None; tenants.len()];
        let mut outputs: Vec<Option<superfe::nic::StreamOutput>> =
            (0..tenants.len()).map(|_| None).collect();
        for (i, p) in pkts.iter().enumerate() {
            for (ti, l) in tenants.iter().enumerate() {
                if l.attach_pct as usize * pkts.len() / 100 == i {
                    let id = plane
                        .attach(&spec(l.pool_index), None)
                        .expect("pool subsets are admissible");
                    ids[ti] = Some(id);
                }
                if l.detach_pct.map(|d| d as usize * pkts.len() / 100) == Some(i) {
                    let id = ids[ti].expect("detach window follows attach");
                    outputs[ti] = Some(plane.detach(id).expect("drain handshake"));
                }
            }
            plane.push(p).expect("workers alive");
        }
        for run in plane.finish().expect("workers alive") {
            let ti = ids
                .iter()
                .position(|id| *id == Some(run.id))
                .expect("run belongs to a scheduled tenant");
            outputs[ti] = Some(run.output);
        }
        for (ti, l) in tenants.iter().enumerate() {
            let out = outputs[ti].as_ref().expect("every tenant ran");
            let (solo_groups, solo_pkts) = solo_run(l, pkts, workers);
            prop_assert_eq!(
                &out.group_vectors,
                &solo_groups,
                "tenant {} group vectors diverged at {} workers",
                ti,
                workers
            );
            prop_assert_eq!(
                &out.packet_vectors,
                &solo_pkts,
                "tenant {} packet vectors diverged at {} workers",
                ti,
                workers
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The isolation differential: every tenant of every random subset,
    /// under random hot attach/detach schedules, produces vectors bitwise
    /// equal to its solo run — at every worker count.
    #[test]
    fn shared_plane_is_bitwise_identical_to_solo(
        tenants in subset(),
        pkts in trace(),
    ) {
        assert_bitwise_solo(&tenants, &pkts)?;
    }
}

mod fusion_isolation {
    use super::*;

    /// Duplicate-friendly lifecycles: pool indices may repeat and attach
    /// points are quantized to two sites, so equivalent tenants land on
    /// the same epoch and **fuse** into one execution unit; random
    /// detaches of fused members exercise the snapshot handshake.
    fn fused_subset() -> impl Strategy<Value = Vec<Lifecycle>> {
        proptest::collection::vec(
            (
                0usize..POOL.len(),
                prop_oneof![Just(0u8), Just(30u8)],
                proptest::bool::ANY,
                55u8..100,
            ),
            2..5,
        )
        .prop_map(|picks| {
            picks
                .into_iter()
                .map(|(pool_index, attach_pct, detaches, detach_pct)| Lifecycle {
                    pool_index,
                    attach_pct,
                    detach_pct: detaches.then_some(detach_pct),
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The same bitwise differential with SF07xx fusion actively
        /// engaged: duplicate policies share one plan through the demux
        /// fan-out and leave it mid-stream through snapshot detaches —
        /// every member must still match its solo run exactly, at every
        /// worker count.
        #[test]
        fn fused_plane_is_bitwise_identical_to_solo(
            tenants in fused_subset(),
            pkts in trace(),
        ) {
            assert_bitwise_solo(&tenants, &pkts)?;
        }
    }
}

mod prefix_isolation {
    use super::*;

    /// A pool whose members all share the parse → filter(tcp.exist) →
    /// groupby(flow) switch prefix but keep distinct reduce tails: none
    /// are SF07xx-equivalent, so co-attached members engage SF08xx prefix
    /// sharing (one switch partition, one execution unit each).
    const PREFIX_POOL: [&str; 4] = [
        "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_sum])\n.collect(flow)",
        "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_mean])\n.collect(flow)",
        "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_max])\n.collect(flow)",
        "pktstream\n.filter(tcp.exist)\n.groupby(flow)\n.reduce(size, [f_min, f_max])\n\
         .collect(flow)",
    ];

    fn prefix_spec(pool_index: usize) -> TenantSpec {
        TenantSpec {
            name: format!("prefix{pool_index}"),
            policy: dsl::parse(PREFIX_POOL[pool_index]).expect("pool policy is valid"),
            cfg: SuperFeConfig::default(),
        }
    }

    fn prefix_solo_run(
        l: &Lifecycle,
        pkts: &[PacketRecord],
        workers: usize,
    ) -> (
        Vec<superfe::nic::FeatureVector>,
        Vec<superfe::nic::FeatureVector>,
    ) {
        let s = prefix_spec(l.pool_index);
        let lo = l.attach_pct as usize * pkts.len() / 100;
        let hi = l
            .detach_pct
            .map_or(pkts.len(), |d| d as usize * pkts.len() / 100);
        let mut fe =
            StreamingPipeline::with_config(&s.policy, s.cfg, workers).expect("policy deploys");
        for p in &pkts[lo..hi] {
            fe.push(p).expect("workers alive");
        }
        let out = fe.finish().expect("workers alive");
        (out.group_vectors, out.packet_vectors)
    }

    /// Like [`assert_bitwise_solo`] but over the prefix pool, so
    /// co-attached tenants land on one shared partition and mid-stream
    /// detaches of shared-prefix members exercise the prefix-detach
    /// handshake.
    fn assert_prefix_bitwise_solo(
        tenants: &[Lifecycle],
        pkts: &[PacketRecord],
    ) -> Result<(), proptest::test_runner::TestCaseError> {
        for &workers in &WORKER_COUNTS {
            let mut plane = CtrlPlane::new(workers, AnalyzeConfig::default());
            let mut ids = vec![None; tenants.len()];
            let mut outputs: Vec<Option<superfe::nic::StreamOutput>> =
                (0..tenants.len()).map(|_| None).collect();
            for (i, p) in pkts.iter().enumerate() {
                for (ti, l) in tenants.iter().enumerate() {
                    if l.attach_pct as usize * pkts.len() / 100 == i {
                        let id = plane
                            .attach(&prefix_spec(l.pool_index), None)
                            .expect("pool subsets are admissible");
                        ids[ti] = Some(id);
                    }
                    if l.detach_pct.map(|d| d as usize * pkts.len() / 100) == Some(i) {
                        let id = ids[ti].expect("detach window follows attach");
                        outputs[ti] = Some(plane.detach(id).expect("drain handshake"));
                    }
                }
                plane.push(p).expect("workers alive");
            }
            // Co-attached distinct tails must actually share partitions.
            prop_assert!(
                plane.groups().len() <= plane.units().len(),
                "groups cannot outnumber units"
            );
            for run in plane.finish().expect("workers alive") {
                let ti = ids
                    .iter()
                    .position(|id| *id == Some(run.id))
                    .expect("run belongs to a scheduled tenant");
                outputs[ti] = Some(run.output);
            }
            for (ti, l) in tenants.iter().enumerate() {
                let out = outputs[ti].as_ref().expect("every tenant ran");
                let (solo_groups, solo_pkts) = prefix_solo_run(l, pkts, workers);
                prop_assert_eq!(
                    &out.group_vectors,
                    &solo_groups,
                    "tenant {} group vectors diverged at {} workers",
                    ti,
                    workers
                );
                prop_assert_eq!(
                    &out.packet_vectors,
                    &solo_pkts,
                    "tenant {} packet vectors diverged at {} workers",
                    ti,
                    workers
                );
            }
        }
        Ok(())
    }

    /// Shared-prefix lifecycles: distinct tails from the prefix pool with
    /// attach points quantized to two sites, so co-attached tenants hash
    /// to one partition; random detaches of shared-prefix members
    /// exercise the partition-sparing prefix detach.
    fn prefix_subset() -> impl Strategy<Value = Vec<Lifecycle>> {
        proptest::collection::vec(
            (
                0usize..PREFIX_POOL.len(),
                prop_oneof![Just(0u8), Just(30u8)],
                proptest::bool::ANY,
                55u8..100,
            ),
            2..5,
        )
        .prop_map(|picks| {
            let mut out: Vec<Lifecycle> = Vec::new();
            for (pool_index, attach_pct, detaches, detach_pct) in picks {
                if out.iter().any(|l| l.pool_index == pool_index) {
                    continue;
                }
                out.push(Lifecycle {
                    pool_index,
                    attach_pct,
                    detach_pct: detaches.then_some(detach_pct),
                });
            }
            out
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The same bitwise differential with SF08xx prefix sharing
        /// actively engaged: distinct reduce tails ride one switch
        /// partition and leave it mid-stream through prefix detaches —
        /// every tenant must still match its solo run exactly, at every
        /// worker count.
        #[test]
        fn prefix_shared_plane_is_bitwise_identical_to_solo(
            tenants in prefix_subset(),
            pkts in trace(),
        ) {
            assert_prefix_bitwise_solo(&tenants, &pkts)?;
        }
    }
}

mod alert_isolation {
    use superfe::ctrl::{CtrlPlane, TenantSpec};
    use superfe::detect::{MultiServing, ServeConfig, ServeReport};
    use superfe::ml::{train_and_calibrate, CalibrationConfig, CentroidDetector, FrozenDetector};
    use superfe::net::PacketRecord;
    use superfe::policy::dsl;
    use superfe::switch::TenantId;
    use superfe::{AnalyzeConfig, SuperFeConfig};

    /// Per-packet flow statistics for the monitored tenant (dim 2).
    const MONITORED: &str =
        "pktstream\n.groupby(flow)\n.reduce(size, [f_mean, f_var])\n.collect(pkt)";
    /// The noisy neighbor: different granularity, heavy eviction churn.
    const NEIGHBOR: &str =
        "pktstream\n.groupby(host)\n.reduce(size, [f_sum, f_min, f_max])\n.collect(host)";

    fn detector() -> FrozenDetector {
        // Benign profile: flows of ~400 B packets, near-zero variance.
        let data: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![395.0 + f64::from(i % 11), f64::from(i % 7)])
            .collect();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        train_and_calibrate(
            Box::new(CentroidDetector::new(2).expect("dim 2")),
            &refs,
            0.2,
            CalibrationConfig::default(),
        )
        .expect("calibrates")
    }

    fn traffic() -> Vec<PacketRecord> {
        let mut pkts = Vec::new();
        for i in 0..800u64 {
            // Benign flows: steady 400-ish byte packets.
            pkts.push(PacketRecord::tcp(
                i * 900,
                398 + (i % 9) as u16,
                (i % 6 + 1) as u32,
                1000 + (i % 3) as u16,
                7,
                443,
            ));
            // The anomaly: one flow alternating tiny/huge packets — large
            // mean shift and variance, far from the benign profile.
            if i % 8 == 0 {
                pkts.push(PacketRecord::tcp(
                    i * 900 + 450,
                    if i % 16 == 0 { 40 } else { 1500 },
                    66,
                    6666,
                    7,
                    443,
                ));
            }
        }
        pkts
    }

    /// Serves the monitored tenant, optionally alongside the neighbor, and
    /// returns its report.
    fn serve(with_neighbor: bool, workers: usize) -> ServeReport {
        let det = detector();
        let mut plane = CtrlPlane::new(workers, AnalyzeConfig::default());
        let mut serving = MultiServing::new();
        let cfg = ServeConfig {
            record_scores: true,
            ..ServeConfig::default()
        };
        // Tenant ids are assigned in attach order, starting at t0.
        let sinks = serving
            .spawn(TenantId(0), &det, &cfg, workers)
            .expect("fresh registry");
        let monitored = TenantSpec {
            name: "monitored".into(),
            policy: dsl::parse(MONITORED).expect("valid"),
            cfg: SuperFeConfig::default(),
        };
        let id = plane.attach(&monitored, Some(sinks)).expect("admitted");
        assert_eq!(id, TenantId(0));
        if with_neighbor {
            let neighbor = TenantSpec {
                name: "neighbor".into(),
                policy: dsl::parse(NEIGHBOR).expect("valid"),
                cfg: SuperFeConfig::default(),
            };
            plane.attach(&neighbor, None).expect("admitted");
        }
        for p in traffic() {
            plane.push(&p).expect("workers alive");
        }
        plane.finish().expect("workers alive");
        serving.finish_tenant(TenantId(0)).expect("report")
    }

    /// Tenant A's alert stream alongside a noisy neighbor must be bitwise
    /// identical to A's alert stream running alone — scored counts, scores,
    /// and every alert's key/score/position.
    #[test]
    fn alerts_unchanged_by_noisy_neighbor() {
        for workers in [1, 2, 4] {
            let alone = serve(false, workers);
            let shared = serve(true, workers);
            assert!(
                !alone.alerts.is_empty(),
                "the anomalous flow must trip the detector at {workers} workers"
            );
            assert_eq!(
                alone.totals.scored, shared.totals.scored,
                "scored count changed under tenancy at {workers} workers"
            );
            assert_eq!(
                format!("{:?}", alone.alerts),
                format!("{:?}", shared.alerts),
                "alert stream changed under tenancy at {workers} workers"
            );
            assert_eq!(
                format!("{:?}", alone.scores),
                format!("{:?}", shared.scores),
                "score stream changed under tenancy at {workers} workers"
            );
        }
    }
}
