//! Failure injection: the NIC engine must degrade gracefully — never panic,
//! never fabricate features — when the switch event stream is damaged, and
//! the switch must shrug off malformed frames.

use superfe::net::{Direction, PacketRecord};
use superfe::nic::FeNic;
use superfe::policy::{compile, dsl, CompiledPolicy};
use superfe::switch::{FeSwitch, MgpvRecord, NicLoadBalancer, SwitchEvent};
use superfe::trafficgen::Workload;

fn multi_level_policy() -> CompiledPolicy {
    compile(
        &dsl::parse(
            "pktstream\n.groupby(socket)\n.reduce(size, [f_sum])\n.collect(socket)\n\
             .groupby(host)\n.reduce(size, [f_sum])\n.collect(host)",
        )
        .expect("parses"),
    )
    .expect("compiles")
}

fn events_for(c: &CompiledPolicy, n: u32) -> Vec<SwitchEvent> {
    let mut sw = FeSwitch::new(c.switch.clone()).expect("deploys");
    let mut events = Vec::new();
    for i in 0..n {
        let p = PacketRecord::tcp(
            u64::from(i) * 1_000,
            100,
            i % 23 + 1,
            1000 + (i % 5) as u16,
            2,
            80,
        );
        events.extend(sw.process(&p));
    }
    events.extend(sw.flush());
    events
}

/// Dropping every FG update leaves all records unresolved at finer levels,
/// counted (not panicking), while the CG level still works.
#[test]
fn dropped_fg_updates_are_counted_not_fatal() {
    let c = multi_level_policy();
    let events = events_for(&c, 1_000);
    let mut nic = FeNic::new(&c, 16_384).expect("engine");
    for e in &events {
        if matches!(e, SwitchEvent::FgUpdate(_)) {
            continue; // inject: control channel loss
        }
        nic.handle(e);
    }
    assert_eq!(nic.stats().records, 1_000);
    assert_eq!(nic.stats().unresolved_fg, 1_000, "every record unresolved");
    let groups = nic.finish();
    // Host (CG) groups still exist; socket groups could not be recovered.
    assert!(groups
        .iter()
        .all(|v| matches!(v.key, superfe::net::GroupKey::Host(_))));
    // Host sums still conserve all bytes.
    let total: f64 = groups.iter().map(|g| g.values[0]).sum();
    assert_eq!(total, 1_000.0 * 100.0);
}

/// Reordering an FG update after its data message loses only the affected
/// records' fine-level placement.
#[test]
fn reordered_fg_update_degrades_gracefully() {
    let c = multi_level_policy();
    let events = events_for(&c, 200);
    // Move all FG updates to the end.
    let (fg, data): (Vec<_>, Vec<_>) = events
        .into_iter()
        .partition(|e| matches!(e, SwitchEvent::FgUpdate(_)));
    let mut nic = FeNic::new(&c, 16_384).expect("engine");
    for e in data.iter().chain(fg.iter()) {
        nic.handle(e);
    }
    assert_eq!(nic.stats().records, 200);
    assert!(nic.stats().unresolved_fg > 0);
    let _ = nic.finish(); // no panic
}

/// Corrupted FG indices (beyond the mirror) are counted as unresolved.
#[test]
fn corrupted_fg_index_is_unresolved() {
    let c = multi_level_policy();
    let events = events_for(&c, 100);
    let mut nic = FeNic::new(&c, 16_384).expect("engine");
    for e in &events {
        match e {
            SwitchEvent::Mgpv(m) => {
                let mut m = m.clone();
                for r in &mut m.records {
                    r.fg_idx = u16::MAX; // inject: bit flip / overflow
                }
                nic.handle(&SwitchEvent::Mgpv(m));
            }
            other => nic.handle(other),
        }
    }
    assert_eq!(nic.stats().unresolved_fg, 100);
}

/// An empty or nonsense MGPV message must not panic the engine.
#[test]
fn degenerate_messages_are_harmless() {
    let c = multi_level_policy();
    let mut nic = FeNic::new(&c, 16).expect("engine");
    let msg = superfe::switch::MgpvMessage {
        cg_key: superfe::net::GroupKey::Host(42),
        hash: 7,
        records: vec![MgpvRecord {
            size: 0,
            tstamp_us: u32::MAX,
            dir_flags: 0xFF,
            fg_idx: 3,
        }],
        cause: superfe::switch::EvictionCause::Flush,
    };
    nic.handle(&SwitchEvent::Mgpv(msg));
    let _ = nic.finish();
    assert_eq!(nic.stats().records, 1);
}

/// Malformed frames are rejected by the switch parser without corrupting
/// the cache (well-formed traffic before/after is unaffected).
#[test]
fn malformed_frames_do_not_corrupt_switch_state() {
    let c = compile(
        &dsl::parse("pktstream\n.groupby(flow)\n.reduce(size, [f_sum])\n.collect(flow)")
            .expect("parses"),
    )
    .expect("compiles");
    let mut sw = FeSwitch::new(c.switch).expect("deploys");
    let good = PacketRecord::tcp(1, 300, 1, 1, 2, 2);
    let frame = superfe::net::wire::build_frame(&good);

    sw.process_frame(&frame, 1, Direction::Ingress)
        .expect("good frame");
    for garbage in [&[][..], &[0u8; 10][..], &frame[..20]] {
        assert!(sw.process_frame(garbage, 2, Direction::Ingress).is_err());
    }
    // Truncate mid-IP header.
    let mut bad_version = frame.clone();
    bad_version[14] = 0x05;
    assert!(sw
        .process_frame(&bad_version, 3, Direction::Ingress)
        .is_err());

    sw.process_frame(&frame, 4, Direction::Ingress)
        .expect("still healthy");
    assert_eq!(sw.stats().pkts_in, 2, "only parsed frames are counted");
    assert_eq!(sw.cache_stats().resident_records, 2);
}

/// Splitting the stream across NICs with the load balancer and merging the
/// outputs gives exactly the monolithic result.
#[test]
fn load_balanced_nics_match_single_nic() {
    let c = multi_level_policy();
    let trace = Workload::campus().packets(10_000).seed(31).generate();
    let mut sw = FeSwitch::new(c.switch.clone()).expect("deploys");
    let mut events = Vec::new();
    for p in &trace.records {
        events.extend(sw.process(p));
    }
    events.extend(sw.flush());

    // Monolithic.
    let mut single = FeNic::new(&c, 16_384).expect("engine");
    for e in &events {
        single.handle(e);
    }
    let mut expected = single.finish();

    // Balanced across 3 NICs.
    let mut lb = NicLoadBalancer::new(3);
    let streams = lb.demux(&events);
    let mut merged = Vec::new();
    for stream in streams {
        let mut nic = FeNic::new(&c, 16_384).expect("engine");
        for e in stream {
            nic.handle(e);
        }
        merged.extend(nic.finish());
    }

    let key = |v: &superfe::nic::FeatureVector| format!("{:?}", v.key);
    expected.sort_by_key(key);
    merged.sort_by_key(key);
    assert_eq!(expected, merged);
}
