//! Test-execution plumbing: configuration, case outcomes, and the RNG.

use std::fmt;

/// Per-test configuration (only the fields the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator driving strategy sampling (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test's name, so every test owns a stable,
    /// reproducible stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name picks the seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seeds from a raw 64-bit value via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("u");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::from_seed(5);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
