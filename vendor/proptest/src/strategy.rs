//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// sampler. `generate` takes `&self` so strategies compose freely and remain
/// object-safe (see [`Union`]).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying up to a bound.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates", self.reason);
    }
}

/// Boxes a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice among boxed strategies of one value type
/// (the expansion of `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// The strategy behind `proptest::bool::ANY`.
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Length bounds for [`VecStrategy`] (`lo..hi`, inclusive of `lo` only).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Vectors of values from an element strategy (`proptest::collection::vec`).
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    /// Builds the strategy.
    pub fn new(elem: S, size: SizeRange) -> Self {
        VecStrategy { elem, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// String literals act as mini-regex strategies: one character class with
/// ranges plus an optional `{m,n}` repetition, e.g. `"[a-z.,]{0,200}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_char_class(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let len = lo + rng.below(((hi - lo) as u64).max(1)) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]` or `[class]{m,n}` into (alphabet, min_len, max_len + 1).
fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = find_unescaped_close(rest)?;
    let class: Vec<char> = rest[..close].chars().collect();
    let suffix = &rest[close + 1..];

    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = if class[i] == '\\' && i + 1 < class.len() {
            i += 1;
            match class[i] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            class[i]
        };
        // A dash between two literals denotes a range.
        if i + 2 < class.len() && class[i + 1] == '-' && class[i + 2] != ']' {
            let hi = class[i + 2];
            for code in (c as u32)..=(hi as u32) {
                chars.push(char::from_u32(code)?);
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }

    if suffix.is_empty() {
        return Some((chars, 1, 2));
    }
    let counts = suffix.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse::<usize>().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    (lo <= hi).then_some((chars, lo, hi + 1))
}

/// Index of the first `]` in `s` not preceded by a backslash.
fn find_unescaped_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let (a, b, f) = (0u8..12, 64u16..1500, -1e3f64..1e3).generate(&mut r);
            assert!(a < 12);
            assert!((64..1500).contains(&b));
            assert!((-1e3..1e3).contains(&f));
        }
    }

    #[test]
    fn map_filter_and_union_compose() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|x| x * 2);
        let even = s.prop_filter("even", |x| x % 2 == 0);
        let u = Union::new(vec![
            Box::new(Just(1u32)) as Box<dyn Strategy<Value = u32>>,
            Box::new(Just(7u32)),
        ]);
        let mut saw = [false, false];
        for _ in 0..100 {
            assert_eq!(even.generate(&mut r) % 2, 0);
            match u.generate(&mut r) {
                1 => saw[0] = true,
                7 => saw[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut r = rng();
        let s = VecStrategy::new(0u8..5, SizeRange::from(1usize..400));
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((1..400).contains(&v.len()));
        }
    }

    #[test]
    fn char_class_regexes_generate_members() {
        let mut r = rng();
        let printable = "[ -~\n]{0,200}";
        for _ in 0..100 {
            let s = printable.generate(&mut r);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let single = "[a-z{}().,\\[\\]]";
        for _ in 0..100 {
            let s = single.generate(&mut r);
            assert_eq!(s.chars().count(), 1);
            let c = s.chars().next().unwrap();
            assert!(
                c.is_ascii_lowercase() || "{}().,[]".contains(c),
                "unexpected {c:?}"
            );
        }
    }

    #[test]
    fn exact_count_and_inclusive_sizes() {
        let mut r = rng();
        let s = "[ab]{3}";
        for _ in 0..20 {
            assert_eq!(s.generate(&mut r).chars().count(), 3);
        }
        let v = VecStrategy::new(0u8..2, SizeRange::from(2usize..=2));
        assert_eq!(v.generate(&mut r).len(), 2);
    }
}
