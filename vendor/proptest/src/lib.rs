//! Offline stand-in for the `proptest` crate.
//!
//! The build image cannot reach a crates.io registry, so the real `proptest`
//! is unavailable. This crate re-implements the subset of its API that the
//! workspace's property tests use: the [`Strategy`] trait (ranges, tuples,
//! `Just`, mapped strategies, vectors, booleans, and a mini character-class
//! regex for strings), the [`proptest!`] test macro with
//! `#![proptest_config(...)]` support, and the `prop_assert!` family.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the generated inputs
//!   rendered via `Debug`, un-minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from its own
//!   name, so failures reproduce exactly across runs and machines.
//! - **Regex strategies** support only character classes with ranges and a
//!   `{m,n}` repetition suffix — the forms the workspace uses.

pub mod strategy;
pub mod test_runner;

/// Vector-of-strategy combinators (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `elem` values with lengths drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(elem, size.into())
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::BoolAny;

    /// Strategy yielding `true` or `false` with equal probability.
    pub const ANY: BoolAny = BoolAny;
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let strategies = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let case_desc = {
                    let mut d = ::std::string::String::new();
                    $(d.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    d
                };
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(16).max(256),
                            "{}: too many prop_assume rejections", stringify!($name)
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{} failed on case {}: {}\ninputs:\n{}",
                            stringify!($name), accepted, msg, case_desc
                        );
                    }
                }
            }
        }
    )*};
}

/// Chooses uniformly among the listed strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($(|)? $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Like `assert!`, but fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Like `assert_ne!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discards the current case (it counts as rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
