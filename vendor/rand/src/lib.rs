//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins its dependency list to crates already present in the
//! build image; the real `rand` is not among them. This crate implements the
//! small slice of the 0.9 API the workspace actually uses — [`Rng`],
//! [`SeedableRng`], and [`rngs::StdRng`] — on top of xoshiro256++ seeded via
//! SplitMix64. It is deterministic, dependency-free, and statistically more
//! than adequate for synthetic-trace generation and tests; it makes no
//! cryptographic claims whatsoever.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their whole domain (`Rng::random`).
pub trait Random: Sized {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly (`Rng::random_range`).
pub trait SampleRange<T> {
    /// Draws a uniform value in the range from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty, matching the real `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method;
/// the ~2⁻⁶⁴ bias is irrelevant for simulation purposes).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // the full 64-bit domain
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Random>::random(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling interface (the subset of `rand::Rng` in use).
pub trait Rng: RngCore {
    /// Draws a uniform value over `T`'s whole domain.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = rng.random_range(90..120);
            assert!((90..120).contains(&v));
            let w: u16 = rng.random_range(1024..=65535);
            assert!((1024..=65535).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&g));
            let i: i32 = rng.random_range(-10..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn unsized_rng_receivers_work() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let got = draw(&mut rng);
        assert!((0.0..1.0).contains(&got));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "{buckets:?}");
        }
    }
}
