//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of the 0.5 API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a plain wall-clock
//! harness. Each benchmark runs a short warm-up, then `sample_size` timed
//! samples, and prints the median time per iteration (plus throughput when
//! configured). No statistics beyond that, no HTML reports, no plotting.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in times every routine
/// invocation individually, so the hint only exists for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in the real crate.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Work performed per iteration, used to report a rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to every benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: aim for samples of roughly 5 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        // One warm-up invocation.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Median nanoseconds per single iteration.
    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ns[ns.len() / 2]
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, median_ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{id:<48} {:>12}/iter", human_time(median_ns));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if median_ns > 0.0 {
            let rate = count as f64 / (median_ns / 1e9);
            line.push_str(&format!("  {rate:>14.0} {unit}/s"));
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let full = format!("{}/{}", self.name, id.into());
        report(&full, b.median_ns(), self.throughput);
        self
    }

    /// Ends the group (a no-op in the stand-in; consumes the group like the
    /// real API).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.effective_sample_size(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.effective_sample_size());
        f(&mut b);
        report(&id.into(), b.median_ns(), None);
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main`, running each group unless invoked with `--list` or
/// `--test` (the flags cargo's harness protocol may pass).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            // `cargo test` invokes bench binaries with `--test`; compile-check
            // only, to keep the test cycle fast.
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_samples() {
        let mut b = Bencher::new(5);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(17));
            acc
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.median_ns() >= 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| {
            b.iter_batched(|| 1u32, |x| black_box(x + 1), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn human_time_scales() {
        assert!(human_time(1.0).contains("ns"));
        assert!(human_time(2e3).contains("µs"));
        assert!(human_time(2e6).contains("ms"));
        assert!(human_time(2e9).contains("s"));
    }
}
