//! SuperFE — a scalable and flexible feature extractor for ML-based traffic
//! analysis applications (EuroSys '25 reproduction).
//!
//! This is the top-level facade: it re-exports [`superfe_core`] (the
//! pipeline) and the component crates. Start with [`SuperFe`] and the
//! `examples/` directory:
//!
//! ```no_run
//! use superfe::SuperFe;
//! # let packets: Vec<superfe::net::PacketRecord> = vec![];
//!
//! let mut fe = SuperFe::from_dsl(
//!     "pktstream
//!      .groupby(flow)
//!      .reduce(size, [f_mean, f_var, f_min, f_max])
//!      .collect(flow)",
//! )
//! .unwrap();
//! for p in &packets {
//!     fe.push(p);
//! }
//! let features = fe.finish().group_vectors;
//! # drop(features);
//! ```

pub use superfe_core::*;

/// The ten Table 3 application policies and the §8.3 application study.
pub use superfe_apps as apps;
/// Multi-tenant control plane (admission control, epoch reconfiguration).
pub use superfe_ctrl as ctrl;
/// Online inference serving (stream feature vectors into detectors).
pub use superfe_detect as detect;
/// Behavior detectors (KitNET, k-NN, decision trees, …).
pub use superfe_ml as ml;
